"""Extended property-based tests: serialisation, colouring, waveforms,
annealing and the fidelity model."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, partition_into_blocks
from repro.core.stage_scheduler import partition_stages
from repro.fidelity import FidelityModel
from repro.fidelity.timeline import ExecutionTimeline
from repro.hardware import (
    DEFAULT_PARAMS,
    HardwareParams,
    Move,
    ZonedArchitecture,
    group_moves,
)
from repro.hardware.kinematics import BangBangProfile, PaperProfile

ARCH = ZonedArchitecture(4, 4, 4, 8)
ALL_SITES = list(ARCH.all_sites)

sites = st.sampled_from(ALL_SITES)


@st.composite
def moves(draw, qubit=None):
    src = draw(sites)
    dst = draw(sites.filter(lambda s: s != src))
    q = qubit if qubit is not None else draw(st.integers(0, 63))
    return Move(q, src, dst)


@st.composite
def random_cz_blocks(draw):
    """A commuting block as a list of random CZ pairs."""
    n = draw(st.integers(2, 10))
    qc = Circuit(n)
    for _ in range(draw(st.integers(1, 25))):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1).filter(lambda x, a=a: x != a))
        qc.cz(a, b)
    return partition_into_blocks(qc).blocks[0]


class TestColoringProperties:
    @given(random_cz_blocks(), st.sampled_from(["saturation", "degree"]))
    @settings(max_examples=60)
    def test_coloring_is_proper(self, block, ordering):
        """No two gates of one stage share a qubit, either ordering."""
        stages = partition_stages(block, ordering=ordering)
        for stage in stages:
            stage.validate()
        total = sum(s.num_gates for s in stages)
        assert total == block.num_gates

    @given(random_cz_blocks())
    @settings(max_examples=60)
    def test_stage_count_at_least_max_multiplicity(self, block):
        """Lower bound: a qubit in k gates forces >= k stages."""
        counts: dict[int, int] = {}
        for gate in block.gates:
            for q in gate.qubits:
                counts[q] = counts.get(q, 0) + 1
        stages = partition_stages(block)
        assert len(stages) >= max(counts.values())

    @given(random_cz_blocks())
    @settings(max_examples=60)
    def test_saturation_never_beaten_by_degree(self, block):
        sat = len(partition_stages(block, ordering="saturation"))
        deg = len(partition_stages(block, ordering="degree"))
        assert sat <= deg + 1  # DSATUR can rarely tie+1 on adversarial
        # graphs; on these block graphs it should essentially never lose.


class TestSerializationProperty:
    # Unique sources too: the initial layout places every qubit at its
    # move's source, and a site holds at most two qubits -- three moves
    # sharing a source would build an invalid Layout, not a program.
    @given(
        st.lists(
            moves(),
            min_size=1,
            max_size=8,
            unique_by=(lambda m: m.qubit, lambda m: m.source),
        )
    )
    @settings(max_examples=40)
    def test_program_round_trip(self, move_list):
        from repro.hardware import Layout
        from repro.schedule import MoveBatch, NAProgram
        from repro.schedule.serialize import (
            program_from_dict,
            program_to_dict,
        )

        layout = Layout(
            ARCH, {m.qubit: m.source for m in move_list}
        )
        groups = group_moves(move_list)
        program = NAProgram(
            architecture=ARCH,
            initial_layout=layout,
            instructions=[
                MoveBatch(coll_moves=[group]) for group in groups
            ],
        )
        rebuilt = program_from_dict(program_to_dict(program))
        assert rebuilt.num_single_moves == program.num_single_moves
        assert rebuilt.initial_layout == program.initial_layout
        assert (
            rebuilt.total_move_distance()
            == program.total_move_distance()
        )


class TestKinematicsProperties:
    @given(
        st.floats(min_value=1e-6, max_value=1e-3),
        st.floats(min_value=100.0, max_value=10000.0),
    )
    @settings(max_examples=60)
    def test_profiles_reach_target(self, distance, acceleration):
        for profile_cls in (BangBangProfile, PaperProfile):
            profile = profile_cls(distance, acceleration)
            assert profile.position_at(profile.duration) == (
                __import__("pytest").approx(distance, rel=1e-9)
            )
            assert profile.position_at(0.0) == 0.0

    @given(
        st.floats(min_value=1e-6, max_value=1e-3),
        st.floats(min_value=100.0, max_value=10000.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_position_monotone_nondecreasing(
        self, distance, acceleration, frac
    ):
        for profile_cls in (BangBangProfile, PaperProfile):
            profile = profile_cls(distance, acceleration)
            t = frac * profile.duration
            later = min(t + profile.duration * 0.05, profile.duration)
            assert profile.position_at(later) >= profile.position_at(t) - 1e-15

    @given(
        st.floats(min_value=1e-6, max_value=1e-3),
        st.floats(min_value=100.0, max_value=10000.0),
    )
    @settings(max_examples=60)
    def test_paper_profile_matches_params_law(self, distance, acceleration):
        import pytest

        profile = PaperProfile(distance, acceleration)
        params = HardwareParams(acceleration=acceleration)
        assert profile.duration == pytest.approx(
            params.move_duration(distance)
        )


class TestFidelityModelProperties:
    @given(
        st.integers(0, 200),
        st.integers(0, 200),
        st.integers(0, 400),
        st.lists(
            st.floats(min_value=0.0, max_value=0.1), min_size=1, max_size=20
        ),
    )
    @settings(max_examples=60)
    def test_total_in_unit_interval(self, g2, exc, trans, exposures):
        timeline = ExecutionTimeline(
            num_two_qubit_gates=g2,
            idle_excitations=exc,
            num_transfers=trans,
            exposure={i: e for i, e in enumerate(exposures)},
        )
        report = FidelityModel(DEFAULT_PARAMS).from_timeline(timeline)
        assert 0.0 <= report.total <= 1.0
        assert report.total <= report.two_qubit

    @given(st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=40)
    def test_monotone_in_gate_count(self, g2a, g2b):
        lo, hi = sorted((g2a, g2b))
        model = FidelityModel(DEFAULT_PARAMS)
        fa = model.from_timeline(
            ExecutionTimeline(num_two_qubit_gates=lo)
        ).total
        fb = model.from_timeline(
            ExecutionTimeline(num_two_qubit_gates=hi)
        ).total
        assert fb <= fa


class TestAnnealingProperty:
    @given(st.integers(0, 2**16), st.integers(4, 10))
    @settings(max_examples=20, deadline=None)
    def test_annealed_layout_always_valid(self, seed, n):
        from repro.baselines.placement import annealed_layout
        from repro.circuits.generators import qaoa_random

        qc = qaoa_random(n, seed=seed % 100)
        layout = annealed_layout(
            ARCH, qc, rng=random.Random(seed), iterations_per_qubit=15
        )
        layout.validate()
        assert layout.num_qubits == n
        sites = {layout.site_of(q) for q in range(n)}
        assert len(sites) == n
