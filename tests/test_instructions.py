"""Unit tests for the compiled-program instruction set."""

import pytest

from repro.circuits.gates import Gate
from repro.hardware import (
    DEFAULT_PARAMS,
    UM,
    CollMove,
    Move,
    Zone,
    ZonedArchitecture,
)
from repro.schedule import MoveBatch, OneQubitLayer, RydbergStage


@pytest.fixture
def arch():
    return ZonedArchitecture(4, 4, 4, 8)


class TestOneQubitLayer:
    def test_depth_parallel(self):
        layer = OneQubitLayer(gates=[Gate("h", (q,)) for q in range(5)])
        assert layer.depth == 1
        assert layer.duration(DEFAULT_PARAMS) == pytest.approx(1e-6)

    def test_depth_sequential_chain(self):
        layer = OneQubitLayer(
            gates=[Gate("h", (0,)), Gate("x", (0,)), Gate("h", (1,))]
        )
        assert layer.depth == 2
        assert layer.duration(DEFAULT_PARAMS) == pytest.approx(2e-6)

    def test_empty_layer(self):
        layer = OneQubitLayer()
        assert layer.depth == 0
        assert layer.duration(DEFAULT_PARAMS) == 0.0

    def test_pulse_counts(self):
        layer = OneQubitLayer(
            gates=[Gate("h", (0,)), Gate("rz", (0,), (0.1,)), Gate("x", (2,))]
        )
        assert layer.pulse_counts() == {0: 2, 2: 1}


class TestMoveBatch:
    def _move(self, arch, qubit, c0, c1):
        return Move(
            qubit,
            arch.site(Zone.COMPUTE, *c0),
            arch.site(Zone.COMPUTE, *c1),
        )

    def test_duration_includes_two_transfers(self, arch):
        move = self._move(arch, 0, (0, 0), (1, 0))
        batch = MoveBatch(coll_moves=[CollMove(moves=[move])])
        expected = 2 * 15e-6 + DEFAULT_PARAMS.move_duration(15 * UM)
        assert batch.duration(DEFAULT_PARAMS) == pytest.approx(expected)

    def test_duration_is_max_over_collmoves(self, arch):
        short = CollMove(moves=[self._move(arch, 0, (0, 0), (1, 0))])
        long = CollMove(
            moves=[self._move(arch, 1, (0, 1), (3, 1))], aod_index=1
        )
        batch = MoveBatch(coll_moves=[short, long])
        expected = 2 * 15e-6 + DEFAULT_PARAMS.move_duration(45 * UM)
        assert batch.duration(DEFAULT_PARAMS) == pytest.approx(expected)

    def test_empty_batch_duration_zero(self):
        assert MoveBatch().duration(DEFAULT_PARAMS) == 0.0

    def test_transfer_count(self, arch):
        batch = MoveBatch(
            coll_moves=[
                CollMove(
                    moves=[
                        self._move(arch, 0, (0, 0), (1, 0)),
                        self._move(arch, 1, (2, 0), (3, 0)),
                    ]
                )
            ]
        )
        assert batch.num_transfers == 4

    def test_moved_qubits_sorted(self, arch):
        batch = MoveBatch(
            coll_moves=[
                CollMove(moves=[self._move(arch, 5, (0, 0), (1, 0))]),
                CollMove(
                    moves=[self._move(arch, 2, (2, 2), (3, 2))], aod_index=1
                ),
            ]
        )
        assert batch.moved_qubits == (2, 5)


class TestRydbergStage:
    def test_interacting_qubits(self):
        stage = RydbergStage(
            gates=[Gate("cz", (0, 1)), Gate("rzz", (2, 3), (0.5,))]
        )
        assert stage.interacting_qubits() == {0, 1, 2, 3}
        assert stage.num_gates == 2

    def test_duration_is_cz_time(self):
        stage = RydbergStage(gates=[Gate("cz", (0, 1))])
        assert stage.duration(DEFAULT_PARAMS) == pytest.approx(270e-9)
