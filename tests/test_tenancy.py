"""Multi-tenancy: token auth, namespaces, quotas, rate limits, v2.

Registry parsing, the token bucket and hot reload are unit-tested
directly; enforcement runs real in-process daemons (and a coordinator
in test_fleet.py) so the auth front door, namespace isolation and
throttle metrics are exercised over the real wire protocol.  Raw
sockets cover the v1-compat matrix, which :class:`ServiceClient`
(always v2) cannot express.
"""

import json
import socket
import time

import pytest

import repro.engine.engine as engine_module
from repro.engine.jobs import execute_job_on_circuit
from repro.service import (
    AuthError,
    JobQueue,
    QuotaExceeded,
    RateLimited,
    ServiceClient,
    ServiceError,
    ServiceServer,
    TenancyError,
    TenantRegistry,
    TokenBucket,
    hash_token,
    quota_table,
)
from repro.service.protocol import read_message, write_message
from repro.service.tenancy import (
    OPEN_CONTEXT,
    AuthContext,
    authorize_request,
    parse_tenants_doc,
)

ONE_JOB = {"jobs": [{"benchmark": "BV-14", "backend": "powermove"}]}
TWO_JOBS = {
    "jobs": [
        {"benchmark": "BV-14", "backend": "powermove", "seed": 0},
        {"benchmark": "BV-14", "backend": "powermove", "seed": 1},
    ]
}


def tenants_doc(**overrides):
    doc = {
        "format": "repro-tenants",
        "version": 1,
        "fleet_token": "fleet-secret",
        "tenants": {
            "alice": {"token": "alice-secret"},
            "bob": {"token": "bob-secret"},
            "ops": {"token": "ops-secret", "admin": True},
        },
    }
    doc.update(overrides)
    return doc


def write_tenants(tmp_path, doc, name="tenants.json"):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def start_server(tmp_path, **kwargs):
    kwargs.setdefault("workers", 1)
    server = ServiceServer(
        str(tmp_path / "queue"), "127.0.0.1:0", **kwargs
    )
    return server.start()


def raw_request(address, payload):
    """One request/response round trip without the v2 client."""
    host, port = address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10.0) as sock:
        stream = sock.makefile("rwb")
        try:
            write_message(stream, payload)
            return read_message(stream)
        finally:
            stream.close()


class TestTenantsFile:
    def test_parse_clear_and_hashed_tokens(self):
        doc = tenants_doc()
        doc["tenants"]["carol"] = {
            "token_sha256": hash_token("carol-secret"),
            "max_queued_jobs": 4,
            "max_running_jobs": 2,
            "max_jobs_per_submission": 3,
            "rate": {"burst": 2, "per_second": 1.5},
        }
        tenants, fleet_sha, fleet_clear = parse_tenants_doc(doc)
        assert set(tenants) == {"alice", "bob", "carol", "ops"}
        assert tenants["alice"].token_sha256 == hash_token("alice-secret")
        assert fleet_sha == hash_token("fleet-secret")
        assert fleet_clear == "fleet-secret"
        carol = tenants["carol"]
        assert carol.max_queued_jobs == 4
        assert carol.max_running_jobs == 2
        assert carol.max_jobs_per_submission == 3
        assert carol.rate_burst == 2
        assert carol.rate_per_second == 1.5
        assert tenants["ops"].admin and not carol.admin
        # Clear tokens are hashed on load, never stored.
        assert "alice-secret" not in repr(tenants["alice"])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d["tenants"].__setitem__(
                "eve", {"token": "alice-secret"}
            ),  # duplicate token
            lambda d: d["tenants"].__setitem__(
                "eve", {"token": "fleet-secret"}
            ),  # fleet-token reuse
            lambda d: d["tenants"].__setitem__("eve", {}),  # no token
            lambda d: d["tenants"].__setitem__(
                "eve",
                {"token": "x", "token_sha256": hash_token("x")},
            ),  # both token forms
            lambda d: d["tenants"].__setitem__(
                "-bad-name", {"token": "x"}
            ),
            lambda d: d["tenants"].__setitem__(
                "eve", {"token": "x", "surprise": 1}
            ),  # unknown key
            lambda d: d["tenants"].__setitem__(
                "eve", {"token": "x", "max_queued_jobs": 0}
            ),
            lambda d: d["tenants"].__setitem__(
                "eve",
                {"token": "x", "rate": {"burst": 1, "per_second": 0}},
            ),
            lambda d: d.__setitem__("format", "something-else"),
            lambda d: d.__setitem__("version", 99),
            lambda d: d.__setitem__("tenants", {}),
        ],
    )
    def test_invalid_documents_rejected(self, mutate):
        doc = tenants_doc()
        mutate(doc)
        with pytest.raises(TenancyError):
            parse_tenants_doc(doc)

    def test_registry_loads_json_file(self, tmp_path):
        registry = TenantRegistry.load(
            write_tenants(tmp_path, tenants_doc())
        )
        assert set(registry.tenants()) == {"alice", "bob", "ops"}
        assert registry.has_fleet_token()
        assert registry.fleet_token == "fleet-secret"

    def test_registry_loads_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "tenants.toml"
        path.write_text(
            'format = "repro-tenants"\n'
            "version = 1\n"
            '[tenants.alice]\ntoken = "alice-secret"\n'
            '[tenants.bob]\ntoken = "bob-secret"\n'
            "max_queued_jobs = 8\n"
        )
        registry = TenantRegistry.load(str(path))
        assert registry.get("bob").max_queued_jobs == 8
        assert not registry.has_fleet_token()

    def test_quota_table_lists_every_tenant(self):
        tenants, _, _ = parse_tenants_doc(tenants_doc())
        table = quota_table(tenants.values())
        lines = table.splitlines()
        assert lines[0].split() == [
            "tenant", "queued", "running", "per-sub", "rate", "admin",
        ]
        assert [line.split()[0] for line in lines[2:]] == [
            "alice", "bob", "ops",
        ]


class TestTokenBucket:
    def test_burst_then_precise_retry_after(self):
        bucket = TokenBucket(burst=2, per_second=4.0)
        now = 100.0
        assert bucket.acquire(now) == 0.0
        assert bucket.acquire(now) == 0.0
        # Empty: one token is 1/4 s away.
        assert bucket.acquire(now) == pytest.approx(0.25)
        # Refill at 4 tokens/s restores service.
        assert bucket.acquire(now + 0.25) == 0.0
        # Capacity never exceeds the burst.
        assert bucket.acquire(now + 100.0) == 0.0
        assert bucket.acquire(now + 100.0) == 0.0
        assert bucket.acquire(now + 100.0) > 0.0

    def test_bad_config_rejected(self):
        with pytest.raises(TenancyError):
            TokenBucket(burst=0, per_second=1.0)
        with pytest.raises(TenancyError):
            TokenBucket(burst=1, per_second=0.0)


class TestAuthentication:
    def test_token_maps_to_tenant_and_fleet(self, tmp_path):
        registry = TenantRegistry.load(
            write_tenants(tmp_path, tenants_doc())
        )
        ctx = registry.authenticate("alice-secret")
        assert ctx.name == "alice" and not ctx.fleet and not ctx.admin
        assert registry.authenticate("ops-secret").admin
        fleet = registry.authenticate("fleet-secret")
        assert fleet.fleet and fleet.admin and fleet.name is None
        assert registry.authenticate("wrong") is None
        assert registry.authenticate("") is None
        assert registry.authenticate(None) is None

    def test_namespace_visibility(self):
        alice = AuthContext(
            tenant=parse_tenants_doc(tenants_doc())[0]["alice"]
        )
        assert alice.can_see("alice")
        assert not alice.can_see("bob")
        assert not alice.can_see(None)
        assert OPEN_CONTEXT.can_see("alice")
        assert OPEN_CONTEXT.can_see(None)

    def test_authorize_request_matrix(self, tmp_path):
        registry = TenantRegistry.load(
            write_tenants(tmp_path, tenants_doc())
        )
        # Open service: v1 and v2 both pass with the open context.
        assert authorize_request(None, {"op": "status"})[0] is OPEN_CONTEXT
        assert (
            authorize_request(None, {"v": 2, "op": "status"})[0]
            is OPEN_CONTEXT
        )
        # Tenanted service: v1 is told to upgrade, v2 needs a token.
        _, err = authorize_request(registry, {"op": "status"})
        assert err["code"] == "upgrade_required"
        _, err = authorize_request(registry, {"v": 2, "op": "status"})
        assert err["code"] == "auth_required"
        _, err = authorize_request(
            registry, {"v": 2, "op": "status", "auth": "wrong"}
        )
        assert err["code"] == "auth_failed"
        _, err = authorize_request(
            registry, {"v": 3, "op": "status", "auth": "alice-secret"}
        )
        assert err["code"] == "bad_request"
        ctx, err = authorize_request(
            registry, {"v": 2, "op": "status", "auth": "alice-secret"}
        )
        assert err is None and ctx.name == "alice"
        # The fleet token may act for a tenant; plain tenants may not.
        ctx, _ = authorize_request(
            registry,
            {"v": 2, "op": "submit", "auth": "fleet-secret",
             "tenant": "bob"},
        )
        assert ctx.name == "bob" and ctx.fleet
        _, err = authorize_request(
            registry,
            {"v": 2, "op": "submit", "auth": "fleet-secret",
             "tenant": "nobody"},
        )
        assert err["code"] == "bad_request"
        ctx, _ = authorize_request(
            registry,
            {"v": 2, "op": "submit", "auth": "alice-secret",
             "tenant": "bob"},
        )
        assert ctx.name == "alice" and not ctx.fleet


class TestHotReload:
    def test_reload_swaps_table_and_rotates_tokens(self, tmp_path):
        path = write_tenants(tmp_path, tenants_doc())
        registry = TenantRegistry.load(path)
        doc = tenants_doc()
        doc["tenants"]["alice"]["token"] = "alice-rotated"
        write_tenants(tmp_path, doc)
        assert registry.reload()
        assert registry.authenticate("alice-secret") is None
        assert registry.authenticate("alice-rotated").name == "alice"
        assert registry.reloads == 1

    def test_broken_file_keeps_previous_table(self, tmp_path):
        path = write_tenants(tmp_path, tenants_doc())
        registry = TenantRegistry.load(path)
        (tmp_path / "tenants.json").write_text("{not json")
        assert not registry.reload()
        assert registry.authenticate("alice-secret").name == "alice"
        assert registry.reload_errors == 1

    def test_token_rotation_preserves_bucket_state(self, tmp_path):
        doc = tenants_doc()
        doc["tenants"]["alice"]["rate"] = {
            "burst": 1, "per_second": 0.001,
        }
        path = write_tenants(tmp_path, doc)
        registry = TenantRegistry.load(path)
        alice = registry.get("alice")
        assert registry.acquire_submit(alice) == 0.0
        assert registry.acquire_submit(alice) > 0.0  # bucket drained
        # Rotating the token must not refill the bucket...
        doc["tenants"]["alice"]["token"] = "alice-rotated"
        write_tenants(tmp_path, doc)
        assert registry.reload()
        assert registry.acquire_submit(registry.get("alice")) > 0.0
        # ...but changing the rate config starts a fresh bucket.
        doc["tenants"]["alice"]["rate"] = {
            "burst": 2, "per_second": 0.001,
        }
        write_tenants(tmp_path, doc)
        assert registry.reload()
        assert registry.acquire_submit(registry.get("alice")) == 0.0

    def test_maybe_reload_tracks_mtime(self, tmp_path):
        import os

        path = write_tenants(tmp_path, tenants_doc())
        registry = TenantRegistry.load(path)
        assert not registry.maybe_reload()  # unchanged
        doc = tenants_doc()
        doc["tenants"]["dora"] = {"token": "dora-secret"}
        write_tenants(tmp_path, doc)
        os.utime(path, (time.time() + 5, time.time() + 5))
        assert registry.maybe_reload()
        assert registry.get("dora") is not None


class TestQueueTenancy:
    def test_tenant_namespaced_ids_and_counts(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue"))
        a = queue.submit(ONE_JOB, tenant="alice")
        b = queue.submit(TWO_JOBS, tenant="bob")
        free = queue.submit(ONE_JOB)
        assert a["id"].startswith("alice-s")
        assert b["id"].startswith("bob-s")
        assert not free["id"].startswith(("alice", "bob"))
        assert queue.counts(tenant="alice")["queued"] == 1
        assert queue.counts(tenant="bob")["queued"] == 2
        assert queue.counts(tenant=None)["queued"] == 1
        assert queue.counts()["queued"] == 4
        assert queue.tenants_seen() == {"alice", "bob"}

    def test_restart_recovery_preserves_tenant_fields(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue"))
        sub = queue.submit(TWO_JOBS, tenant="alice")
        leased = queue.lease("w1")
        queue.complete(
            leased["id"],
            {"index": leased["index"], "status": "ok"},
        )
        del queue
        revived = JobQueue(str(tmp_path / "queue"))
        assert revived.submission(sub["id"])["tenant"] == "alice"
        counts = revived.counts(tenant="alice")
        assert counts["done"] == 1 and counts["queued"] == 1
        assert all(
            record["tenant"] == "alice"
            for record in revived.records_for(sub["id"])
        )

    def test_fair_share_lease_ordering_under_flood(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue"))
        # alice floods first; bob arrives later with the same priority.
        for seed in range(4):
            queue.submit(
                {"jobs": [{"benchmark": "BV-14", "seed": seed}]},
                tenant="alice",
            )
        for seed in range(4):
            queue.submit(
                {"jobs": [{"benchmark": "BV-14", "seed": 10 + seed}]},
                tenant="bob",
            )
        order = []
        for worker in range(8):
            leased = queue.lease(f"w{worker}")
            order.append(leased["tenant"])
        # Grant counters alternate the tenants instead of draining
        # alice's backlog before bob gets a single slot.
        assert order[:2] == ["alice", "bob"] or order[:2] == [
            "bob", "alice",
        ]
        assert order.count("alice") == order.count("bob") == 4
        assert all(
            order[i] != order[i + 1] for i in range(0, 8, 2)
        )

    def test_running_caps_hold_back_capped_tenant(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue"))
        for seed in range(3):
            queue.submit(
                {"jobs": [{"benchmark": "BV-14", "seed": seed}]},
                tenant="alice",
            )
        queue.submit(ONE_JOB, tenant="bob")
        caps = {"alice": 1}
        first = queue.lease("w1", running_caps=caps)
        assert first["tenant"] == "alice"
        second = queue.lease("w2", running_caps=caps)
        assert second["tenant"] == "bob"  # alice is at her cap
        assert queue.lease("w3", running_caps=caps) is None
        queue.complete(
            first["id"], {"index": first["index"], "status": "ok"}
        )
        third = queue.lease("w3", running_caps=caps)
        assert third["tenant"] == "alice"


class TestTenantedService:
    def test_auth_isolation_and_admin_gate(self, tmp_path):
        server = start_server(
            tmp_path, tenants=write_tenants(tmp_path, tenants_doc())
        )
        try:
            anon = ServiceClient(server.address)
            ping = anon.wait_ready()
            assert ping.auth_required
            with pytest.raises(AuthError) as rejected:
                anon.submit(ONE_JOB)
            assert rejected.value.code == "auth_required"
            with pytest.raises(AuthError) as rejected:
                ServiceClient(server.address, token="wrong").status()
            assert rejected.value.code == "auth_failed"

            alice = ServiceClient(server.address, token="alice-secret")
            bob = ServiceClient(server.address, token="bob-secret")
            receipt = alice.submit(ONE_JOB)
            assert receipt.submission.startswith("alice-")
            assert receipt.raw["tenant"] == "alice"

            # Foreign submissions answer exactly like missing ones.
            with pytest.raises(ServiceError) as missing:
                bob.status(receipt.submission)
            assert missing.value.code == "not_found"
            with pytest.raises(ServiceError) as missing:
                bob.status("alice-s999999")
            assert missing.value.code == "not_found"
            with pytest.raises(ServiceError):
                bob.results_document(receipt.submission)
            with pytest.raises(ServiceError) as missing:
                bob.trace(receipt.job_ids[0])
            assert missing.value.code == "not_found"
            assert bob.status().submissions == []

            doc = alice.results_document(receipt.submission)
            assert doc["num_failed"] == 0
            assert alice.status(receipt.submission).counts["done"] == 1
            trace = alice.trace(receipt.job_ids[0])
            assert trace["trace"]["spans"]

            # The fleet token reads every namespace.
            fleet = ServiceClient(server.address, token="fleet-secret")
            assert [
                s["id"] for s in fleet.status().submissions
            ] == [receipt.submission]

            # shutdown is an admin capability.
            with pytest.raises(AuthError) as denied:
                alice.shutdown()
            assert denied.value.code == "forbidden"
            ops = ServiceClient(server.address, token="ops-secret")
            ops.shutdown(drain=True)
            assert server.wait_stopped(timeout=30.0)
        finally:
            if not server.wait_stopped(timeout=0.0):
                server.stop(drain=False)

    def test_quota_boundaries_and_metrics(self, tmp_path, monkeypatch):
        real = execute_job_on_circuit

        def slow(job, circuit):
            time.sleep(0.3)
            return real(job, circuit)

        monkeypatch.setattr(
            engine_module, "execute_job_on_circuit", slow
        )
        doc = tenants_doc()
        doc["tenants"]["alice"].update(
            {"max_queued_jobs": 2, "max_jobs_per_submission": 2}
        )
        server = start_server(
            tmp_path, tenants=write_tenants(tmp_path, doc)
        )
        try:
            alice = ServiceClient(server.address, token="alice-secret")
            alice.wait_ready()
            with pytest.raises(QuotaExceeded) as oversized:
                alice.submit(
                    {
                        "jobs": [
                            {"benchmark": "BV-14", "seed": s}
                            for s in range(3)
                        ]
                    }
                )
            assert oversized.value.code == "quota_exceeded"
            first = alice.submit(TWO_JOBS)  # exactly at the cap
            with pytest.raises(QuotaExceeded):
                alice.submit(ONE_JOB)  # 2 outstanding + 1 > 2
            # bob has no quotas and is untouched by alice's limits.
            bob = ServiceClient(server.address, token="bob-secret")
            bob.submit(ONE_JOB)
            alice.results_document(first.submission)
            alice.submit(ONE_JOB)  # quota freed by completion

            metrics = ServiceClient(
                server.address, token="ops-secret"
            ).metrics()["metrics"]
            throttles = {
                tuple(sorted(sample["labels"].items())): sample["value"]
                for family in metrics["families"]
                if family["name"] == "repro_tenant_throttles_total"
                for sample in family["samples"]
            }
            assert throttles[
                (("reason", "submission_quota"), ("tenant", "alice"))
            ] == 1
            assert throttles[
                (("reason", "queued_quota"), ("tenant", "alice"))
            ] == 1
        finally:
            server.stop(drain=False)

    def test_rate_limit_retry_after_honored(self, tmp_path):
        doc = tenants_doc()
        doc["tenants"]["alice"]["rate"] = {
            "burst": 1, "per_second": 20.0,
        }
        server = start_server(
            tmp_path, tenants=write_tenants(tmp_path, doc)
        )
        try:
            alice = ServiceClient(server.address, token="alice-secret")
            alice.wait_ready()
            alice.submit(ONE_JOB)
            with pytest.raises(RateLimited) as throttled:
                alice.submit(ONE_JOB)
            assert 0.0 < throttled.value.retry_after_s <= 0.1
            # The client-side retry budget rides the throttle out.
            receipt = alice.submit(ONE_JOB, rate_limit_retry_s=5.0)
            assert receipt.total_jobs == 1
        finally:
            server.stop(drain=False)

    def test_v1_compat_matrix_on_the_wire(self, tmp_path):
        open_server = start_server(tmp_path)
        try:
            # v1 requests (no "v" key) stay byte-compatible against an
            # open daemon, and replies carry no tenancy artifacts.
            pong = raw_request(open_server.address, {"op": "ping"})
            assert pong["ok"] and pong["auth_required"] is False
            reply = raw_request(
                open_server.address,
                {"op": "submit", "manifest": ONE_JOB},
            )
            assert reply["ok"] and reply["submission"].startswith("s")
            status = raw_request(open_server.address, {"op": "status"})
            assert status["ok"]
        finally:
            open_server.stop(drain=False)

        tenanted = ServiceServer(
            str(tmp_path / "queue2"),
            "127.0.0.1:0",
            workers=1,
            tenants=write_tenants(tmp_path, tenants_doc()),
        ).start()
        try:
            # ping answers (liveness must precede token handout)...
            pong = raw_request(tenanted.address, {"op": "ping"})
            assert pong["ok"] and pong["auth_required"] is True
            # ...every other v1 op is told to upgrade.
            for op in ("submit", "status", "results", "shutdown"):
                reply = raw_request(tenanted.address, {"op": op})
                assert reply["ok"] is False
                assert reply["code"] == "upgrade_required"
            # Explicit v:1 is the same as no v key.
            reply = raw_request(
                tenanted.address, {"v": 1, "op": "status"}
            )
            assert reply["code"] == "upgrade_required"
        finally:
            tenanted.stop(drain=False)


class TestTenantsCli:
    def test_check_prints_quota_table(self, tmp_path, capsys):
        from repro.cli import main

        path = write_tenants(tmp_path, tenants_doc())
        assert main(["tenants", path, "--check"]) == 0
        out = capsys.readouterr().out
        assert "3 tenant(s)" in out
        assert "alice" in out and "bob" in out and "ops" in out

    def test_broken_file_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "tenants.json"
        bad.write_text('{"format": "repro-tenants", "tenants": {}}')
        assert main(["tenants", str(bad), "--check"]) == 2
        assert "error" in capsys.readouterr().err
