"""Unit tests for the zoned-architecture geometry."""

import pytest

from repro.hardware import UM, Zone, ZonedArchitecture


class TestConstruction:
    def test_site_counts(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        assert len(arch.compute_sites) == 9
        assert len(arch.storage_sites) == 18
        assert arch.num_sites == 27

    def test_no_storage(self):
        arch = ZonedArchitecture(4, 4)
        assert not arch.has_storage
        assert arch.storage_sites == ()

    def test_half_storage_rejected(self):
        with pytest.raises(ValueError):
            ZonedArchitecture(3, 3, 3, 0)
        with pytest.raises(ValueError):
            ZonedArchitecture(3, 3, 0, 5)

    def test_nonpositive_compute_rejected(self):
        with pytest.raises(ValueError):
            ZonedArchitecture(0, 3)

    def test_aod_count_validated(self):
        with pytest.raises(ValueError):
            ZonedArchitecture(2, 2, num_aods=0)


class TestCoordinates:
    def test_compute_zone_above_gap(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        for site in arch.compute_sites:
            assert site.y >= arch.params.zone_gap - 1e-12

    def test_storage_zone_at_or_below_zero(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        for site in arch.storage_sites:
            assert site.y <= 1e-12

    def test_zone_separation_is_gap(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        lowest_compute = min(s.y for s in arch.compute_sites)
        highest_storage = max(s.y for s in arch.storage_sites)
        assert lowest_compute - highest_storage == pytest.approx(30 * UM)

    def test_pitch_spacing(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        a = arch.site(Zone.COMPUTE, 0, 0)
        b = arch.site(Zone.COMPUTE, 1, 0)
        c = arch.site(Zone.COMPUTE, 0, 1)
        assert b.x - a.x == pytest.approx(15 * UM)
        assert c.y - a.y == pytest.approx(15 * UM)

    def test_storage_row_zero_nearest_compute(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        row0 = arch.site(Zone.STORAGE, 0, 0)
        row1 = arch.site(Zone.STORAGE, 0, 1)
        assert row0.y > row1.y

    def test_distance(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        a = arch.site(Zone.COMPUTE, 0, 0)
        b = arch.site(Zone.COMPUTE, 2, 0)
        assert a.distance_to(b) == pytest.approx(30 * UM)


class TestLookup:
    def test_site_lookup(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        site = arch.site(Zone.STORAGE, 2, 5)
        assert (site.col, site.row) == (2, 5)

    def test_missing_site_raises(self):
        arch = ZonedArchitecture(3, 3, 3, 6)
        with pytest.raises(KeyError):
            arch.site(Zone.COMPUTE, 5, 5)

    def test_contains(self):
        a = ZonedArchitecture(3, 3, 3, 6)
        b = ZonedArchitecture(4, 4, 4, 8)
        site = a.site(Zone.COMPUTE, 0, 0)
        assert a.contains(site)
        # The same indices exist on b with identical coordinates, so the
        # frozen dataclass compares equal: containment is value-based.
        assert b.contains(site)
        far = b.site(Zone.COMPUTE, 3, 3)
        assert not a.contains(far)

    def test_sites_in(self):
        arch = ZonedArchitecture(2, 2, 2, 4)
        assert arch.sites_in(Zone.COMPUTE) == arch.compute_sites
        assert arch.sites_in(Zone.STORAGE) == arch.storage_sites


class TestPaperFloorPlan:
    """Sec. 7.1 default configuration checks against Table 2."""

    @pytest.mark.parametrize(
        "n,side",
        [(30, 6), (40, 7), (50, 8), (60, 8), (80, 9), (100, 10), (18, 5),
         (29, 6), (14, 4), (20, 5), (10, 4)],
    )
    def test_grid_side(self, n, side):
        arch = ZonedArchitecture.for_qubits(n)
        assert arch.compute_shape == (side, side)
        assert arch.storage_shape == (side, 2 * side)

    def test_zone_extents_match_table2(self):
        arch = ZonedArchitecture.for_qubits(30)
        assert arch.zone_extent_um(Zone.COMPUTE) == (90.0, 90.0)
        assert arch.inter_zone_extent_um() == (90.0, 30.0)
        assert arch.zone_extent_um(Zone.STORAGE) == (90.0, 180.0)

    def test_capacity_sufficient(self):
        for n in (10, 30, 70, 100):
            arch = ZonedArchitecture.for_qubits(n)
            assert len(arch.compute_sites) >= n
            assert len(arch.storage_sites) >= n

    def test_without_storage(self):
        arch = ZonedArchitecture.for_qubits(30, with_storage=False)
        assert not arch.has_storage
