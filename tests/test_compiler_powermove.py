"""Integration tests for the PowerMove compiler driver."""

import pytest

from repro.circuits import Circuit, transpile_to_native
from repro.circuits.generators import (
    bernstein_vazirani,
    qaoa_regular,
    qft,
    qsim_random,
    vqe_full_entanglement,
)
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import evaluate_program
from repro.hardware import Zone, ZonedArchitecture
from repro.schedule import validate_program


def compile_and_validate(circuit, config):
    compiler = PowerMoveCompiler(config)
    result = compiler.compile(circuit)
    validate_program(result.program, source_circuit=result.native_circuit)
    return result


class TestBasicCompilation:
    @pytest.mark.parametrize("use_storage", [True, False])
    def test_single_cz(self, use_storage):
        qc = Circuit(2)
        qc.cz(0, 1)
        result = compile_and_validate(
            qc, PowerMoveConfig(use_storage=use_storage)
        )
        assert result.program.num_stages == 1
        assert result.program.num_two_qubit_gates == 1

    @pytest.mark.parametrize("use_storage", [True, False])
    def test_qaoa(self, use_storage):
        qc = qaoa_regular(10, degree=3, seed=1)
        result = compile_and_validate(
            qc, PowerMoveConfig(use_storage=use_storage)
        )
        assert result.program.num_two_qubit_gates == 15

    def test_initial_layout_in_storage(self):
        qc = qaoa_regular(8, degree=3, seed=0)
        result = compile_and_validate(qc, PowerMoveConfig(use_storage=True))
        layout = result.program.initial_layout
        assert all(
            layout.zone_of(q) is Zone.STORAGE for q in layout.qubits
        )

    def test_initial_layout_in_compute_without_storage(self):
        qc = qaoa_regular(8, degree=3, seed=0)
        result = compile_and_validate(qc, PowerMoveConfig(use_storage=False))
        layout = result.program.initial_layout
        assert all(
            layout.zone_of(q) is Zone.COMPUTE for q in layout.qubits
        )

    def test_compile_time_measured(self):
        qc = qaoa_regular(8, degree=3, seed=0)
        result = PowerMoveCompiler().compile(qc)
        assert result.compile_time > 0

    def test_one_qubit_gates_preserved(self):
        qc = bernstein_vazirani(6, seed=0)
        result = compile_and_validate(qc, PowerMoveConfig())
        native = transpile_to_native(qc)
        assert (
            result.program.num_one_qubit_gates
            == native.num_one_qubit_gates
        )

    def test_pure_1q_circuit(self):
        qc = Circuit(3)
        qc.h(0)
        qc.h(1)
        result = compile_and_validate(qc, PowerMoveConfig())
        assert result.program.num_stages == 0
        assert result.program.num_one_qubit_gates == 2

    def test_metadata_populated(self):
        qc = qaoa_regular(8, degree=3, seed=0)
        result = PowerMoveCompiler(PowerMoveConfig(num_aods=2)).compile(qc)
        meta = result.program.metadata
        assert meta["use_storage"] is True
        assert meta["num_aods"] == 2
        assert meta["num_stages"] == result.program.num_stages


class TestStorageSemantics:
    def test_with_storage_zero_excitation_error(self):
        """The headline claim: storage eliminates excitation errors."""
        for circuit in (
            qaoa_regular(10, degree=3, seed=1),
            bernstein_vazirani(8, seed=0),
            qsim_random(8, num_strings=4, seed=0),
        ):
            result = compile_and_validate(
                circuit, PowerMoveConfig(use_storage=True)
            )
            report = evaluate_program(result.program)
            assert report.timeline.idle_excitations == 0
            assert report.excitation == 1.0

    def test_non_storage_has_excitation_error(self):
        qc = bernstein_vazirani(8, seed=0)
        result = compile_and_validate(qc, PowerMoveConfig(use_storage=False))
        report = evaluate_program(result.program)
        assert report.timeline.idle_excitations > 0

    def test_storage_requires_storage_zone(self):
        arch = ZonedArchitecture(3, 3)
        qc = Circuit(4)
        qc.cz(0, 1)
        with pytest.raises(ValueError):
            PowerMoveCompiler(PowerMoveConfig(use_storage=True)).compile(
                qc, architecture=arch
            )


class TestMultiAod:
    @pytest.mark.parametrize("num_aods", [1, 2, 3, 4])
    def test_valid_under_aod_counts(self, num_aods):
        qc = qaoa_regular(10, degree=3, seed=2)
        result = compile_and_validate(
            qc, PowerMoveConfig(num_aods=num_aods)
        )
        for batch in result.program.move_batches:
            assert batch.num_coll_moves <= num_aods

    def test_more_aods_not_slower(self):
        qc = qaoa_regular(12, degree=3, seed=2)
        times = []
        for num_aods in (1, 2, 4):
            result = compile_and_validate(
                qc, PowerMoveConfig(num_aods=num_aods, seed=0)
            )
            times.append(evaluate_program(result.program).execution_time)
        assert times[1] <= times[0] + 1e-12
        assert times[2] <= times[1] + 1e-12

    def test_transfers_invariant_under_aods(self):
        qc = qaoa_regular(12, degree=3, seed=2)
        counts = set()
        for num_aods in (1, 2, 4):
            result = compile_and_validate(
                qc, PowerMoveConfig(num_aods=num_aods, seed=0)
            )
            counts.add(result.program.num_transfers)
        assert len(counts) == 1


class TestDeterminism:
    def test_same_seed_same_program(self):
        qc = qaoa_regular(10, degree=3, seed=3)
        r1 = PowerMoveCompiler(PowerMoveConfig(seed=11)).compile(qc)
        r2 = PowerMoveCompiler(PowerMoveConfig(seed=11)).compile(qc)
        assert len(r1.program.instructions) == len(r2.program.instructions)
        assert (
            r1.program.total_move_distance()
            == r2.program.total_move_distance()
        )


class TestAllFamiliesCompile:
    @pytest.mark.parametrize(
        "circuit_factory",
        [
            lambda: qaoa_regular(9, degree=4, seed=0),
            lambda: qft(6),
            lambda: bernstein_vazirani(7, seed=1),
            lambda: vqe_full_entanglement(6, seed=0),
            lambda: qsim_random(7, num_strings=3, seed=1),
        ],
        ids=["qaoa4", "qft", "bv", "vqe", "qsim"],
    )
    @pytest.mark.parametrize("use_storage", [True, False])
    def test_family(self, circuit_factory, use_storage):
        qc = circuit_factory()
        result = compile_and_validate(
            qc, PowerMoveConfig(use_storage=use_storage)
        )
        report = evaluate_program(result.program)
        assert 0.0 <= report.total <= 1.0
        assert report.execution_time > 0


class TestConvenienceApi:
    def test_compile_circuit_function(self):
        from repro.core import compile_circuit

        qc = qaoa_regular(8, degree=3, seed=0)
        result = compile_circuit(qc, use_storage=True, seed=1)
        validate_program(result.program)
        assert result.program.compiler_name == "powermove[with-storage]"

    def test_variant_names(self):
        assert (
            PowerMoveCompiler(PowerMoveConfig(use_storage=False)).variant_name
            == "powermove[non-storage]"
        )
