"""The observability layer: metrics registry, exposition, traces.

Pure-unit coverage of :mod:`repro.obs` -- the service tests exercise
the same machinery end to end through a live daemon.
"""

import json
import math
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_DOC_FORMAT,
    PROMETHEUS_CONTENT_TYPE,
    MetricError,
    MetricsRegistry,
    MetricsServer,
    render_prometheus_doc,
)
from repro.obs.trace import (
    TRACE_FORMAT,
    Trace,
    TraceError,
    pass_spans_from_timings,
    rebase_spans,
    render_trace_tree,
    span_seconds,
    trace_duration_s,
    validate_trace_doc,
)


class TestMetricsRegistry:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        jobs = registry.counter("jobs_total", "jobs", ("backend",))
        jobs.inc(backend="powermove")
        jobs.inc(2, backend="powermove")
        jobs.inc(backend="enola")
        assert jobs.value(backend="powermove") == 3
        assert jobs.value(backend="enola") == 1
        assert jobs.value(backend="unseen") == 0

    def test_counter_rejects_negative_and_wrong_labels(self):
        registry = MetricsRegistry()
        jobs = registry.counter("jobs_total", labelnames=("backend",))
        with pytest.raises(MetricError):
            jobs.inc(-1, backend="x")
        with pytest.raises(MetricError):
            jobs.inc(1, wrong="x")
        with pytest.raises(MetricError):
            jobs.inc(1)

    def test_gauge_set_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        depth.set(7)
        depth.dec(2)
        assert depth.value() == 5

    def test_redeclaration_idempotent_but_conflicts_raise(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", labelnames=("tier",))
        again = registry.counter("hits_total", labelnames=("tier",))
        assert first is again
        with pytest.raises(MetricError):
            registry.gauge("hits_total", labelnames=("tier",))
        with pytest.raises(MetricError):
            registry.counter("hits_total", labelnames=("other",))

    def test_histogram_rejects_set_and_counter_observe(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds")
        with pytest.raises(MetricError):
            hist.set(1.0)
        with pytest.raises(MetricError):
            hist.value()
        with pytest.raises(MetricError):
            registry.counter("c_total").observe(1.0)

    @given(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=120.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_histogram_bucket_math(self, values):
        """Bucket invariants over arbitrary samples.

        Each sample lands in exactly the first bucket whose edge is
        >= the value (or the +Inf overflow bucket); the rendered
        ``_bucket`` series are cumulative and end at ``count``; the
        sum tracks the arithmetic sum.
        """
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=DEFAULT_BUCKETS)
        for value in values:
            hist.observe(value)
        (sample,) = hist.sample_doc() if values else [
            {"counts": [0] * (len(DEFAULT_BUCKETS) + 1),
             "sum": 0.0, "count": 0}
        ]
        counts = sample["counts"]
        assert len(counts) == len(DEFAULT_BUCKETS) + 1
        assert sum(counts) == sample["count"] == len(values)
        assert sample["sum"] == pytest.approx(sum(values))
        # Per-bucket occupancy computed independently.
        edges = list(DEFAULT_BUCKETS)
        expected = [0] * (len(edges) + 1)
        for value in values:
            for index, edge in enumerate(edges):
                if value <= edge:
                    expected[index] += 1
                    break
            else:
                expected[-1] += 1
        assert counts == expected
        # Rendered cumulative series are non-decreasing and end at count.
        text = registry.render_prometheus()
        cumulative = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_seconds_bucket")
        ]
        assert cumulative == sorted(cumulative)
        if values:
            assert cumulative[-1] == len(values)

    def test_prometheus_rendering_shape(self):
        registry = MetricsRegistry()
        jobs = registry.counter(
            "repro_jobs_total", "Completed jobs.", ("backend", "status")
        )
        jobs.inc(3, backend="powermove", status="ok")
        depth = registry.gauge("repro_depth", "Queue depth.")
        depth.set(2)
        text = registry.render_prometheus()
        assert "# HELP repro_jobs_total Completed jobs." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert (
            'repro_jobs_total{backend="powermove",status="ok"} 3' in text
        )
        assert "repro_depth 2" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labelnames=("path",))
        family.inc(**{"path": 'a"b\\c\nd'})
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_doc_round_trips_through_render(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(5)
        doc = registry.to_doc()
        assert doc["format"] == METRICS_DOC_FORMAT
        assert json.loads(json.dumps(doc)) == doc
        assert render_prometheus_doc(doc) == registry.render_prometheus()

    def test_from_docs_sums_fleet_wide(self):
        docs = []
        for daemon in range(3):
            registry = MetricsRegistry()
            jobs = registry.counter("jobs_total", labelnames=("backend",))
            jobs.inc(daemon + 1, backend="powermove")
            registry.gauge("depth").set(daemon)
            hist = registry.histogram("wait_seconds", buckets=(1.0, 5.0))
            hist.observe(0.5)
            hist.observe(daemon * 2.0)
            docs.append(registry.to_doc())
        merged = MetricsRegistry.from_docs(docs)
        assert merged.counter(
            "jobs_total", labelnames=("backend",)
        ).value(backend="powermove") == 6
        assert merged.gauge("depth").value() == 3
        (sample,) = merged.histogram(
            "wait_seconds", buckets=(1.0, 5.0)
        ).sample_doc()
        assert sample["count"] == 6
        assert sample["sum"] == pytest.approx(0.5 * 3 + 2.0 + 4.0)

    def test_from_docs_rejects_foreign_and_mismatched(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        doc = registry.to_doc()
        with pytest.raises(MetricError):
            MetricsRegistry.from_docs([{"format": "nope"}])
        other = MetricsRegistry()
        other.histogram("h_seconds", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(MetricError):
            MetricsRegistry.from_docs([doc, other.to_doc()])


class TestMetricsServer:
    def test_serves_metrics_and_404s_elsewhere(self):
        registry = MetricsRegistry()
        registry.counter("up_total").inc()
        server = MetricsServer(registry.render_prometheus).start()
        try:
            with urllib.request.urlopen(server.url, timeout=5.0) as reply:
                assert reply.status == 200
                assert reply.headers["Content-Type"] == (
                    PROMETHEUS_CONTENT_TYPE
                )
                assert b"up_total 1" in reply.read()
            bad = server.url.replace("/metrics", "/other")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=5.0)
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_render_failure_is_a_500_not_a_crash(self):
        def explode() -> str:
            raise RuntimeError("boom")

        server = MetricsServer(explode).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url, timeout=5.0)
            assert excinfo.value.code == 500
        finally:
            server.stop()

    def test_concurrent_scrapes(self):
        registry = MetricsRegistry()
        registry.counter("up_total").inc()
        server = MetricsServer(registry.render_prometheus).start()
        failures = []

        def scrape() -> None:
            try:
                with urllib.request.urlopen(
                    server.url, timeout=5.0
                ) as reply:
                    assert b"up_total" in reply.read()
            except Exception as exc:  # noqa: BLE001 - collected below
                failures.append(exc)

        try:
            threads = [
                threading.Thread(target=scrape) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert not failures
        finally:
            server.stop()


class FakeClock:
    def __init__(self, start=100.0):
        self.t = start

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTrace:
    def test_live_spans_form_a_valid_tree(self):
        clock = FakeClock()
        trace = Trace("job", attrs={"benchmark": "BV-14"}, clock=clock)
        with trace.span("attempt", attrs={"attempt": 1}) as attempt:
            clock.advance(0.5)
            with trace.span("pass", parent=attempt):
                clock.advance(0.25)
        clock.advance(0.1)
        doc = trace.to_doc(job="s000001-00000")
        validate_trace_doc(doc)
        assert doc["format"] == TRACE_FORMAT
        assert doc["job"] == "s000001-00000"
        assert doc["duration_s"] == pytest.approx(0.85)
        names = [span["name"] for span in doc["spans"]]
        assert names == ["job", "attempt", "pass"]
        assert span_seconds(doc, "attempt") == pytest.approx(0.75)
        assert trace_duration_s(doc) == pytest.approx(0.85)

    def test_span_context_manager_records_error_type(self):
        clock = FakeClock()
        trace = Trace("job", clock=clock)
        with pytest.raises(RuntimeError):
            with trace.span("attempt"):
                clock.advance(0.1)
                raise RuntimeError("boom")
        doc = trace.to_doc()
        (attempt,) = [
            s for s in doc["spans"] if s["name"] == "attempt"
        ]
        assert attempt["attrs"]["error"] == "RuntimeError"

    def test_backdated_origin_puts_queue_wait_on_the_timeline(self):
        clock = FakeClock(start=50.0)
        # Job enqueued 2 s before the worker leased it.
        trace = Trace("job", origin=clock() - 2.0, clock=clock)
        trace.add_span("queue.wait", 0.0, trace.now_s())
        clock.advance(1.0)
        doc = trace.to_doc()
        validate_trace_doc(doc)
        assert span_seconds(doc, "queue.wait") == pytest.approx(2.0)
        assert doc["duration_s"] == pytest.approx(3.0)

    def test_rebase_spans_maps_engine_clock_and_clamps_children(self):
        clock = FakeClock(start=10.0)
        trace = Trace("job", origin=clock() - 1.0, clock=clock)
        engine_spans = [
            {
                "name": "compile",
                "start": 10.0,
                "end": 10.6,
                "attrs": {"attempt": 1},
                # Last child overruns the parent: must be clamped.
                "children": [
                    ("layout", 0.0, 0.2),
                    ("route", 0.2, 0.9),
                ],
            }
        ]
        clock.advance(0.6)
        rebase_spans(
            engine_spans, trace, trace.root, trace.offset_of(0.0)
        )
        doc = trace.to_doc()
        validate_trace_doc(doc)
        (compile_span,) = [
            s for s in doc["spans"] if s["name"] == "compile"
        ]
        assert compile_span["start_s"] == pytest.approx(1.0)
        assert compile_span["end_s"] == pytest.approx(1.6)
        (route,) = [s for s in doc["spans"] if s["name"] == "route"]
        assert route["end_s"] <= compile_span["end_s"]

    def test_validate_rejects_malformed_documents(self):
        with pytest.raises(TraceError):
            validate_trace_doc({"format": "nope"})
        base = {"format": TRACE_FORMAT, "version": 1}
        with pytest.raises(TraceError):
            validate_trace_doc({**base, "spans": []})
        with pytest.raises(TraceError):  # end before start
            validate_trace_doc(
                {
                    **base,
                    "spans": [
                        {"id": 1, "parent": None, "name": "job",
                         "start_s": 1.0, "end_s": 0.5},
                    ],
                }
            )
        with pytest.raises(TraceError):  # child escapes parent
            validate_trace_doc(
                {
                    **base,
                    "spans": [
                        {"id": 1, "parent": None, "name": "job",
                         "start_s": 0.0, "end_s": 1.0},
                        {"id": 2, "parent": 1, "name": "late",
                         "start_s": 0.5, "end_s": 2.0},
                    ],
                }
            )
        with pytest.raises(TraceError):  # two roots
            validate_trace_doc(
                {
                    **base,
                    "spans": [
                        {"id": 1, "parent": None, "name": "a",
                         "start_s": 0.0, "end_s": 1.0},
                        {"id": 2, "parent": None, "name": "b",
                         "start_s": 0.0, "end_s": 1.0},
                    ],
                }
            )

    def test_pass_spans_from_timings_lays_durations_end_to_end(self):
        spans = pass_spans_from_timings(
            {"layout": 0.5, "route": 0.25, "emit": 0.0}, start_s=1.0
        )
        assert spans == [
            ("layout", 1.0, 1.5),
            ("route", 1.5, 1.75),
            ("emit", 1.75, 1.75),
        ]

    def test_render_trace_tree(self):
        clock = FakeClock()
        trace = Trace("job", clock=clock)
        with trace.span("attempt") as attempt:
            clock.advance(0.5)
            trace.add_span(
                "cache.disk", 0.1, 0.2, parent=attempt
            )
        doc = trace.to_doc(job="s000001-00002")
        text = render_trace_tree(doc)
        lines = text.splitlines()
        assert lines[0].startswith("trace s000001-00002")
        assert any("job" in line for line in lines[1:])
        assert any(
            "cache.disk" in line and "└─" in line for line in lines
        )
        # Tree depth shows as indentation: the grandchild line is
        # indented past the child line.
        (attempt_line,) = [l for l in lines if "attempt" in l]
        (disk_line,) = [l for l in lines if "cache.disk" in l]
        indent = lambda s: len(s) - len(s.lstrip(" │"))  # noqa: E731
        assert indent(disk_line) > indent(attempt_line)


def test_default_buckets_are_sorted_and_positive():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert all(edge > 0 for edge in DEFAULT_BUCKETS)
    assert math.inf not in DEFAULT_BUCKETS
