"""Unit tests for qubit layouts."""

import pytest

from repro.hardware import Layout, LayoutError, Zone, ZonedArchitecture
from repro.hardware.moves import Move


@pytest.fixture
def arch():
    return ZonedArchitecture(3, 3, 3, 6)


class TestConstruction:
    def test_row_major_compute(self, arch):
        layout = Layout.row_major(arch, 4, Zone.COMPUTE)
        assert layout.num_qubits == 4
        assert layout.site_of(0) == arch.site(Zone.COMPUTE, 0, 0)
        assert layout.site_of(3) == arch.site(Zone.COMPUTE, 0, 1)

    def test_row_major_storage(self, arch):
        layout = Layout.row_major(arch, 5, Zone.STORAGE)
        assert all(layout.zone_of(q) is Zone.STORAGE for q in range(5))

    def test_row_major_overflow(self, arch):
        with pytest.raises(LayoutError):
            Layout.row_major(arch, 10, Zone.COMPUTE)

    def test_from_permutation(self, arch):
        layout = Layout.from_permutation(arch, [2, 0, 1], Zone.COMPUTE)
        assert layout.site_of(2) == arch.site(Zone.COMPUTE, 0, 0)
        assert layout.site_of(0) == arch.site(Zone.COMPUTE, 1, 0)

    def test_from_permutation_duplicates_rejected(self, arch):
        with pytest.raises(LayoutError):
            Layout.from_permutation(arch, [0, 0, 1])

    def test_explicit_mapping_capacity(self, arch):
        site = arch.site(Zone.COMPUTE, 0, 0)
        Layout(arch, {0: site, 1: site})  # two qubits: fine
        with pytest.raises(LayoutError):
            Layout(arch, {0: site, 1: site, 2: site})

    def test_off_machine_site_rejected(self, arch):
        other = ZonedArchitecture(5, 5)
        far = other.site(Zone.COMPUTE, 4, 4)
        with pytest.raises(LayoutError):
            Layout(arch, {0: far})


class TestAccessors:
    def test_unplaced_qubit_raises(self, arch):
        layout = Layout.row_major(arch, 2)
        with pytest.raises(LayoutError):
            layout.site_of(7)

    def test_occupants_and_cotenants(self, arch):
        site = arch.site(Zone.COMPUTE, 1, 1)
        layout = Layout(arch, {0: site, 1: site})
        assert layout.occupants(site) == {0, 1}
        assert layout.co_tenants(0) == {1}

    def test_is_empty(self, arch):
        layout = Layout.row_major(arch, 1)
        assert layout.is_empty(arch.site(Zone.COMPUTE, 2, 2))
        assert not layout.is_empty(arch.site(Zone.COMPUTE, 0, 0))

    def test_qubits_in_zone(self, arch):
        mapping = {
            0: arch.site(Zone.COMPUTE, 0, 0),
            1: arch.site(Zone.STORAGE, 0, 0),
            2: arch.site(Zone.STORAGE, 1, 0),
        }
        layout = Layout(arch, mapping)
        assert layout.qubits_in_zone(Zone.COMPUTE) == (0,)
        assert layout.qubits_in_zone(Zone.STORAGE) == (1, 2)


class TestMove:
    def test_simple_move(self, arch):
        layout = Layout.row_major(arch, 2)
        dest = arch.site(Zone.COMPUTE, 2, 2)
        layout.move(0, dest)
        assert layout.site_of(0) == dest
        assert layout.is_empty(arch.site(Zone.COMPUTE, 0, 0))

    def test_move_to_full_site_rejected(self, arch):
        site = arch.site(Zone.COMPUTE, 0, 0)
        layout = Layout(arch, {0: site, 1: site, 2: arch.site(Zone.COMPUTE, 1, 0)})
        with pytest.raises(LayoutError):
            layout.move(2, site)

    def test_noop_move(self, arch):
        layout = Layout.row_major(arch, 1)
        layout.move(0, layout.site_of(0))
        assert layout.num_qubits == 1

    def test_apply_moves_handles_chains(self, arch):
        """A->B while B->C must not overflow B."""
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        s1 = arch.site(Zone.COMPUTE, 1, 0)
        s2 = arch.site(Zone.COMPUTE, 2, 0)
        extra = arch.site(Zone.COMPUTE, 1, 1)
        layout = Layout(arch, {0: s0, 1: s1, 2: s1, 3: extra})
        layout.apply_moves(
            [Move(0, s0, s1), Move(1, s1, s2), Move(2, s1, s2)]
        )
        assert layout.occupants(s1) == {0}
        assert layout.occupants(s2) == {1, 2}

    def test_apply_moves_duplicate_mover_rejected(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        s1 = arch.site(Zone.COMPUTE, 1, 0)
        s2 = arch.site(Zone.COMPUTE, 2, 0)
        layout = Layout(arch, {0: s0})
        with pytest.raises(LayoutError):
            layout.apply_moves([Move(0, s0, s1), Move(0, s1, s2)])

    def test_apply_moves_source_mismatch_rejected(self, arch):
        s1 = arch.site(Zone.COMPUTE, 1, 0)
        s2 = arch.site(Zone.COMPUTE, 2, 0)
        layout = Layout.row_major(arch, 1)
        with pytest.raises(LayoutError):
            layout.apply_moves([Move(0, s1, s2)])


class TestNearestEmpty:
    def test_prefers_same_column(self, arch):
        layout = Layout.row_major(arch, 0) if False else Layout(arch, {})
        origin = arch.site(Zone.COMPUTE, 1, 2)
        found = layout.nearest_empty_site(origin.position, Zone.STORAGE)
        assert found is not None
        assert found.col == 1
        assert found.row == 0  # nearest storage row

    def test_skips_occupied(self, arch):
        nearest = arch.site(Zone.STORAGE, 1, 0)
        layout = Layout(arch, {0: nearest})
        origin = arch.site(Zone.COMPUTE, 1, 0)
        found = layout.nearest_empty_site(origin.position, Zone.STORAGE)
        assert found is not None and found != nearest

    def test_exclude(self, arch):
        layout = Layout(arch, {})
        origin = arch.site(Zone.COMPUTE, 1, 0)
        first = layout.nearest_empty_site(origin.position, Zone.STORAGE)
        second = layout.nearest_empty_site(
            origin.position, Zone.STORAGE, exclude=[first]
        )
        assert second != first

    def test_none_when_zone_full(self):
        arch = ZonedArchitecture(1, 1, 1, 1)
        layout = Layout(arch, {0: arch.site(Zone.STORAGE, 0, 0)})
        found = layout.nearest_empty_site((0.0, 0.0), Zone.STORAGE)
        assert found is None

    def test_predicate_filter(self, arch):
        layout = Layout(arch, {})
        found = layout.nearest_empty_site(
            (0.0, 0.0), Zone.STORAGE, predicate=lambda s: s.row >= 3
        )
        assert found is not None and found.row >= 3


class TestCopyValidate:
    def test_copy_independent(self, arch):
        layout = Layout.row_major(arch, 2)
        dup = layout.copy()
        dup.move(0, arch.site(Zone.COMPUTE, 2, 2))
        assert layout.site_of(0) != dup.site_of(0)

    def test_validate_passes(self, arch):
        layout = Layout.row_major(arch, 5)
        layout.validate()

    def test_equality(self, arch):
        assert Layout.row_major(arch, 3) == Layout.row_major(arch, 3)
        assert Layout.row_major(arch, 3) != Layout.row_major(arch, 2)
