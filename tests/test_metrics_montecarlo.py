"""Tests for program metrics and the Monte-Carlo fidelity cross-check."""

import pytest

from repro.baselines import EnolaCompiler, EnolaConfig
from repro.circuits.generators import bernstein_vazirani, qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.core.metrics import compare_metrics, compute_metrics
from repro.fidelity.montecarlo import (
    crosscheck_fidelity,
    sample_program_fidelity,
)

FAST = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


@pytest.fixture(scope="module")
def programs():
    circuit = qaoa_regular(10, degree=3, seed=1)
    pm = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(circuit).program
    enola = EnolaCompiler(FAST).compile(circuit).program
    return pm, enola


class TestMetrics:
    def test_basic_fields(self, programs):
        pm, _ = programs
        metrics = compute_metrics(pm)
        assert metrics.num_stages == pm.num_stages
        assert metrics.num_single_moves == pm.num_single_moves
        assert 0.0 <= metrics.storage_dwell_fraction <= 1.0
        assert 0.0 <= metrics.mean_stage_utilization <= 1.0
        assert 0.0 <= metrics.movement_time_fraction <= 1.0
        assert metrics.execution_time > 0

    def test_storage_dwell_positive_with_storage(self, programs):
        pm, enola = programs
        assert compute_metrics(pm).storage_dwell_fraction > 0.0
        assert compute_metrics(enola).storage_dwell_fraction == 0.0

    def test_powermove_parallelism_beats_enola(self, programs):
        """Enola schedules one move per CollMove; PowerMove groups."""
        pm, enola = programs
        m_pm = compute_metrics(pm)
        m_enola = compute_metrics(enola)
        assert m_enola.moves_per_coll_move == pytest.approx(1.0)
        assert m_pm.moves_per_coll_move >= 1.0

    def test_idle_excitations_zero_with_storage(self, programs):
        pm, enola = programs
        assert compute_metrics(pm).idle_excitations_per_stage == 0.0
        assert compute_metrics(enola).idle_excitations_per_stage >= 0.0

    def test_compare_metrics_ratios(self, programs):
        pm, enola = programs
        ratios = compare_metrics(compute_metrics(pm), compute_metrics(enola))
        assert ratios["execution_speedup"] > 1.0
        assert ratios["move_count_reduction"] > 1.0
        assert set(ratios) == {
            "execution_speedup",
            "move_count_reduction",
            "distance_reduction",
            "parallelism_gain",
        }

    def test_empty_program_metrics(self):
        from repro.hardware import Layout, ZonedArchitecture
        from repro.schedule import NAProgram

        arch = ZonedArchitecture(2, 2, 2, 4)
        program = NAProgram(
            architecture=arch,
            initial_layout=Layout.row_major(arch, 2),
            instructions=[],
        )
        metrics = compute_metrics(program)
        assert metrics.num_stages == 0
        assert metrics.moves_per_coll_move == 0.0
        assert metrics.execution_time == 0.0


class TestMonteCarlo:
    def test_estimate_matches_analytic_powermove(self, programs):
        pm, _ = programs
        result = crosscheck_fidelity(pm, shots=8000, seed=1)
        assert result.shots == 8000
        assert 0.0 <= result.estimate <= 1.0

    def test_estimate_matches_analytic_enola(self, programs):
        _, enola = programs
        result = crosscheck_fidelity(enola, shots=8000, seed=2)
        assert result.within(4.0)

    def test_estimate_matches_on_bv(self):
        circuit = bernstein_vazirani(10, seed=0)
        program = (
            PowerMoveCompiler(PowerMoveConfig(use_storage=False))
            .compile(circuit)
            .program
        )
        result = crosscheck_fidelity(program, shots=8000, seed=3)
        assert result.within(4.0)

    def test_include_1q_lowers_estimate_target(self, programs):
        pm, _ = programs
        with_1q = sample_program_fidelity(
            pm, shots=2000, seed=4, include_1q=True
        )
        without = sample_program_fidelity(
            pm, shots=2000, seed=4, include_1q=False
        )
        assert with_1q.analytic <= without.analytic

    def test_std_error_shrinks_with_shots(self, programs):
        pm, _ = programs
        small = sample_program_fidelity(pm, shots=500, seed=5)
        large = sample_program_fidelity(pm, shots=8000, seed=5)
        assert large.std_error < small.std_error

    def test_invalid_shots(self, programs):
        pm, _ = programs
        with pytest.raises(ValueError):
            sample_program_fidelity(pm, shots=0)
