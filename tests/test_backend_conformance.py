"""Conformance suite: every registered backend honours the contract.

For each backend in the default registry, compiling a small circuit
must produce (1) a validator-clean program, (2) a bit-identical digest
across two independent runs, and (3) populated per-pass timing stats.
New backends get all three checks for free by registering.

The architecture/strategy matrix class crosses the architecture
catalog with the strategy-variant backends (the CI ``strategy-matrix``
job runs this module): every feasible (architecture, backend) cell
compiles validator-clean and digest-deterministically, and every
infeasible cell (a storage-requiring backend on a storage-less floor
plan) is rejected loudly, matching the cost model's feasibility
verdict.
"""

import pytest

from repro.circuits.generators import qaoa_regular
from repro.hardware.catalog import ARCHITECTURES
from repro.hardware.params import DEFAULT_PARAMS
from repro.pipeline import REGISTRY, create_compiler, get_backend
from repro.pipeline.costmodel import estimate_cost
from repro.schedule import validate_program
from repro.schedule.serialize import program_digest

#: Small-but-nontrivial workload: parallel structure, 1Q gaps, 2Q blocks.
WORKLOAD = qaoa_regular(8, degree=3, seed=1)

#: Cheap per-backend knobs so the whole suite stays fast.
FAST_OVERRIDES = {
    "enola": {"mis_restarts": 1, "sa_iterations_per_qubit": 5},
    "enola-naive-storage": {"mis_restarts": 1, "sa_iterations_per_qubit": 5},
    "enola-windowed": {
        "mis_restarts": 1,
        "sa_iterations_per_qubit": 5,
        "window_size": 4,
    },
    "atomique": {"sa_iterations_per_qubit": 5},
}

ALL_BACKENDS = REGISTRY.names()


def _compiler(name: str):
    spec = get_backend(name)
    overrides = FAST_OVERRIDES.get(name)
    config = (
        spec.config_cls(**overrides)
        if overrides
        else spec.default_config()
    )
    return create_compiler(name, spec.effective_config(config, 0, 1))


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestBackendConformance:
    def test_program_is_validator_clean(self, name):
        spec = get_backend(name)
        result = _compiler(name).compile(WORKLOAD)
        source = (
            result.native_circuit if spec.preserves_gate_stream else None
        )
        report = validate_program(result.program, source_circuit=source)
        assert report.ok

    def test_digest_deterministic_across_runs(self, name):
        first = _compiler(name).compile(WORKLOAD)
        second = _compiler(name).compile(WORKLOAD)
        assert program_digest(first.program) == program_digest(
            second.program
        )

    def test_per_pass_stats_populated(self, name):
        spec = get_backend(name)
        result = _compiler(name).compile(WORKLOAD)
        timings = result.stats["pass_timings"]
        assert tuple(timings) == spec.pipeline.pass_names
        assert all(seconds >= 0.0 for seconds in timings.values())
        # The pass timings live alongside the historical metadata keys.
        assert "num_stages" in result.stats

    def test_compiler_name_stamped(self, name):
        compiler = _compiler(name)
        result = compiler.compile(WORKLOAD)
        assert result.program.compiler_name == compiler.variant_name
        assert result.compile_time > 0.0


#: One backend per pipeline family plus every strategy-variant backend.
MATRIX_BACKENDS = (
    "powermove",
    "powermove-spiral",
    "powermove-reuse",
    "powermove-sorted-route",
    "enola",
    "enola-windowed",
    "atomique",
)

ARCH_MATRIX = [
    (arch, name)
    for arch in ARCHITECTURES.names()
    for name in MATRIX_BACKENDS
]


def _cell_feasible(arch: str, name: str) -> bool:
    machine = ARCHITECTURES.get(arch).build(
        WORKLOAD.num_qubits, 1, DEFAULT_PARAMS
    )
    return estimate_cost(name, WORKLOAD, machine).feasible


@pytest.mark.parametrize(("arch", "name"), ARCH_MATRIX)
class TestArchitectureStrategyMatrix:
    def test_feasible_cells_validator_clean(self, arch, name):
        if not _cell_feasible(arch, name):
            pytest.skip(f"{name} infeasible on {arch} (covered below)")
        spec = get_backend(name)
        result = _compiler(name).compile(WORKLOAD, arch=arch)
        source = (
            result.native_circuit if spec.preserves_gate_stream else None
        )
        report = validate_program(result.program, source_circuit=source)
        assert report.ok

    def test_feasible_cells_digest_deterministic(self, arch, name):
        if not _cell_feasible(arch, name):
            pytest.skip(f"{name} infeasible on {arch} (covered below)")
        first = _compiler(name).compile(WORKLOAD, arch=arch)
        second = _compiler(name).compile(WORKLOAD, arch=arch)
        assert program_digest(first.program) == program_digest(
            second.program
        )

    def test_infeasible_cells_rejected(self, arch, name):
        if _cell_feasible(arch, name):
            pytest.skip(f"{name} feasible on {arch} (covered above)")
        with pytest.raises(ValueError, match="storage"):
            _compiler(name).compile(WORKLOAD, arch=arch)
