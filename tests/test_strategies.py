"""Strategy registries, the architecture catalog and the auto backend.

Covers the registry mechanics (lookup, registration, validation, the
routing family check), the new strategy entries' determinism and
actual effect on compiled programs, the cost model's ranking and
feasibility rules, and the ``auto`` pseudo-backend end to end: on a
mixed batch it must choose at least two distinct backends, surface the
choice in result stats, and share cache keys with the equivalent
explicitly-named jobs.
"""

import pytest

from repro.circuits.generators import qaoa_regular, qft
from repro.engine import CompilationEngine, CompileJob, MemoryCache
from repro.engine.cache import job_cache_key
from repro.engine.jobs import resolve_backend
from repro.engine.manifest import ManifestError, parse_manifest
from repro.hardware.catalog import (
    ARCHITECTURES,
    ArchitectureError,
    build_architecture,
)
from repro.pipeline import create_compiler
from repro.pipeline.costmodel import (
    AUTO_CANDIDATES,
    choose_backend,
    estimate_cost,
    rank_backends,
)
from repro.pipeline.strategies import (
    PLACEMENT_STRATEGIES,
    ROUTING_STRATEGIES,
    STAGE_SELECTION_STRATEGIES,
    STRATEGY_AXES,
    PlacementStrategy,
    StrategyError,
    validate_strategies,
)
from repro.schedule.serialize import program_digest

WORKLOAD = qaoa_regular(8, degree=3, seed=1)


class TestStrategyRegistries:
    def test_axes_expose_default_entries(self):
        assert set(STRATEGY_AXES) == {
            "placement",
            "stage-selection",
            "routing",
        }
        assert "row-major" in PLACEMENT_STRATEGIES
        assert "spiral" in PLACEMENT_STRATEGIES
        assert "greedy-color" in STAGE_SELECTION_STRATEGIES
        assert "reuse-aware" in STAGE_SELECTION_STRATEGIES
        assert "continuous-sorted" in ROUTING_STRATEGIES

    def test_unknown_entry_names_known_ones(self):
        with pytest.raises(StrategyError, match="row-major"):
            PLACEMENT_STRATEGIES.get("nope")

    def test_duplicate_registration_rejected(self):
        entry = PLACEMENT_STRATEGIES.get("row-major")
        with pytest.raises(StrategyError, match="already registered"):
            PLACEMENT_STRATEGIES.register(entry)
        # replace=True is the explicit override path.
        PLACEMENT_STRATEGIES.register(entry, replace=True)

    def test_validate_strategies(self):
        validate_strategies({})
        validate_strategies({"placement": "spiral"})
        with pytest.raises(StrategyError, match="axis"):
            validate_strategies({"teleportation": "yes"})
        with pytest.raises(StrategyError, match="unknown placement"):
            validate_strategies({"placement": "nope"})

    def test_registration_requires_protocol_name(self):
        custom = PlacementStrategy(
            name="test-only", description="x", place=lambda *a: None
        )
        PLACEMENT_STRATEGIES.register(custom)
        try:
            assert PLACEMENT_STRATEGIES.get("test-only") is custom
        finally:
            PLACEMENT_STRATEGIES._entries.pop("test-only")


class TestStrategySelection:
    def test_override_changes_program(self):
        base = create_compiler("powermove").compile(WORKLOAD)
        spiral = create_compiler("powermove").compile(
            WORKLOAD, strategies={"placement": "spiral"}
        )
        assert program_digest(base.program) != program_digest(
            spiral.program
        )

    def test_variant_backend_equals_override(self):
        variant = create_compiler("powermove-spiral").compile(WORKLOAD)
        override = create_compiler("powermove").compile(
            WORKLOAD, strategies={"placement": "spiral"}
        )
        assert program_digest(variant.program) == program_digest(
            override.program
        )

    def test_routing_family_mismatch_rejected(self):
        with pytest.raises(StrategyError, match="family"):
            create_compiler("powermove").compile(
                WORKLOAD, strategies={"routing": "revert"}
            )

    def test_unknown_strategy_rejected_before_compiling(self):
        with pytest.raises(StrategyError):
            create_compiler("powermove").compile(
                WORKLOAD, strategies={"placement": "nope"}
            )

    def test_new_entries_deterministic(self):
        for backend in (
            "powermove-spiral",
            "powermove-reuse",
            "powermove-sorted-route",
        ):
            first = create_compiler(backend).compile(WORKLOAD)
            second = create_compiler(backend).compile(WORKLOAD)
            assert program_digest(first.program) == program_digest(
                second.program
            ), backend


class TestArchitectureCatalog:
    def test_catalog_entries(self):
        assert set(ARCHITECTURES.names()) >= {
            "paper",
            "no-storage",
            "wide-storage",
            "multi-aod",
        }

    def test_unknown_architecture(self):
        with pytest.raises(ArchitectureError, match="paper"):
            ARCHITECTURES.get("nope")

    def test_build_shapes(self):
        paper = build_architecture("paper", 16)
        assert paper.compute_shape == (4, 4)
        assert paper.storage_shape == (4, 8)
        assert not build_architecture("no-storage", 16).has_storage
        wide = build_architecture("wide-storage", 16)
        assert wide.storage_shape == (8, 8)
        assert build_architecture("multi-aod", 16).num_aods == 4

    def test_paper_arch_matches_default_floor_plan(self):
        # The catalog's default entry is the historical path: same
        # program digest with and without naming it.
        default = create_compiler("powermove").compile(WORKLOAD)
        named = create_compiler("powermove").compile(WORKLOAD, arch="paper")
        assert program_digest(default.program) == program_digest(
            named.program
        )

    def test_arch_changes_program(self):
        paper = create_compiler("powermove").compile(WORKLOAD, arch="paper")
        wide = create_compiler("powermove").compile(
            WORKLOAD, arch="wide-storage"
        )
        assert program_digest(paper.program) != program_digest(
            wide.program
        )

    def test_unknown_arch_rejected_eagerly(self):
        with pytest.raises(ArchitectureError):
            create_compiler("powermove").compile(WORKLOAD, arch="nope")


class TestCostModel:
    def test_powermove_ranks_cheapest_on_paper_arch(self):
        ranking = rank_backends(WORKLOAD)
        assert ranking[0].backend == "powermove"
        assert all(e.feasible for e in ranking)

    def test_storage_backends_infeasible_without_storage(self):
        machine = build_architecture("no-storage", WORKLOAD.num_qubits)
        estimate = estimate_cost("powermove", WORKLOAD, machine)
        assert not estimate.feasible
        assert estimate.cost == float("inf")

    def test_choose_backend_diverges_by_arch(self):
        assert choose_backend(WORKLOAD) == "powermove"
        assert (
            choose_backend(WORKLOAD, arch="no-storage")
            == "powermove-nonstorage"
        )

    def test_no_feasible_candidate_raises(self):
        with pytest.raises(ValueError, match="no feasible backend"):
            choose_backend(
                WORKLOAD, arch="no-storage", candidates=("powermove",)
            )

    def test_ranking_is_deterministic(self):
        first = [e.backend for e in rank_backends(WORKLOAD)]
        second = [e.backend for e in rank_backends(WORKLOAD)]
        assert first == second
        assert set(first) == set(AUTO_CANDIDATES)


class TestAutoBackend:
    def test_resolve_backend_is_identity_for_named_jobs(self):
        job = CompileJob(circuit=WORKLOAD, backend="powermove")
        assert resolve_backend(job) is job

    def test_auto_job_resolves_and_shares_cache_key(self):
        auto = CompileJob(circuit=WORKLOAD, backend="auto")
        explicit = CompileJob(circuit=WORKLOAD, backend="powermove")
        assert resolve_backend(auto).backend == "powermove"
        assert job_cache_key(auto) == job_cache_key(explicit)

    def test_mixed_batch_chooses_two_distinct_backends(self):
        # The acceptance scenario: one manifest, two architectures,
        # auto everywhere -- the engine must pick >= 2 distinct
        # backends and surface each choice in result stats.
        jobs = [
            CompileJob(circuit=WORKLOAD, backend="auto"),
            CompileJob(
                circuit=WORKLOAD, backend="auto", arch="no-storage"
            ),
        ]
        results = CompilationEngine().run(jobs)
        choices = [r.stats["auto_backend"] for r in results]
        assert choices == ["powermove", "powermove-nonstorage"]
        assert all(r.ok for r in results)

    def test_auto_choice_survives_cache_hits(self):
        engine = CompilationEngine(cache=MemoryCache())
        jobs = [CompileJob(circuit=WORKLOAD, backend="auto")]
        cold = engine.run(jobs)[0]
        warm = engine.run(jobs)[0]
        assert not cold.cache_hit and warm.cache_hit
        assert warm.stats["auto_backend"] == cold.stats["auto_backend"]

    def test_auto_on_qft(self):
        # A second workload shape through the same path; the model must
        # return some feasible candidate and the compile must succeed.
        circuit = qft(6)
        job = CompileJob(circuit=circuit, backend="auto")
        result = CompilationEngine().run([job])[0]
        assert result.ok
        assert result.stats["auto_backend"] in AUTO_CANDIDATES


class TestManifestStrategies:
    def test_manifest_arch_and_strategies_parse(self):
        doc = {
            "defaults": {"arch": "wide-storage"},
            "jobs": [
                {"benchmark": "BV-14", "backend": "powermove"},
                {
                    "benchmark": "BV-14",
                    "backend": "powermove",
                    "arch": "paper",
                    "strategies": {"placement": "spiral"},
                },
                {"benchmark": "BV-14", "backend": "auto"},
            ],
        }
        jobs = parse_manifest(doc)
        assert jobs[0].arch == "wide-storage"
        assert jobs[1].arch == "paper"
        assert jobs[1].strategies_map == {"placement": "spiral"}
        assert jobs[2].backend == "auto"

    def test_manifest_rejects_unknown_arch(self):
        doc = {"jobs": [{"benchmark": "BV-14", "arch": "nope"}]}
        with pytest.raises(ManifestError, match="arch"):
            parse_manifest(doc)

    def test_manifest_rejects_unknown_strategy(self):
        doc = {
            "jobs": [
                {
                    "benchmark": "BV-14",
                    "strategies": {"placement": "nope"},
                }
            ]
        }
        with pytest.raises(ManifestError, match="placement strategy"):
            parse_manifest(doc)

    def test_strategies_enter_cache_key(self):
        plain = CompileJob(benchmark="BV-14", backend="powermove")
        spiral = CompileJob(
            benchmark="BV-14",
            backend="powermove",
            strategies={"placement": "spiral"},
        )
        arched = CompileJob(
            benchmark="BV-14", backend="powermove", arch="wide-storage"
        )
        keys = {
            job_cache_key(plain),
            job_cache_key(spiral),
            job_cache_key(arched),
        }
        assert len(keys) == 3
