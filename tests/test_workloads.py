"""Tests for workload characterisation (the Sec. 7.3 atlas)."""

import pytest

from repro.analysis.workloads import (
    WorkloadProfile,
    profile_circuit,
    render_profiles,
)
from repro.circuits import Circuit
from repro.circuits.generators import (
    bernstein_vazirani,
    qaoa_regular,
    qsim_random,
    vqe_linear_entanglement,
)


class TestProfileNumbers:
    def test_qaoa_structure(self):
        profile = profile_circuit(qaoa_regular(12, degree=3, seed=0))
        assert profile.num_qubits == 12
        assert profile.num_two_qubit_gates == 18
        assert profile.num_blocks == 1
        assert profile.interaction_degree_max == 3
        assert profile.interaction_degree_mean == pytest.approx(3.0)

    def test_bv_structure(self):
        profile = profile_circuit(bernstein_vazirani(12, seed=0))
        # One block per oracle CZ, one gate per block and per stage.
        assert profile.num_blocks == profile.num_two_qubit_gates
        assert profile.gates_per_block == 1.0
        assert profile.gates_per_stage == 1.0
        # All but two qubits idle at every shot.
        assert profile.idle_exposure_per_stage == 10.0

    def test_pure_1q_circuit(self):
        qc = Circuit(3)
        qc.h(0)
        profile = profile_circuit(qc)
        assert profile.num_stages == 0
        assert profile.stage_utilization == 0.0
        assert profile.interaction_degree_max == 0


class TestRegimes:
    """The classification must recover the paper's Sec. 7.3 grouping."""

    def test_bv_is_excitation_dominated(self):
        assert (
            profile_circuit(bernstein_vazirani(20, seed=0)).regime
            == "excitation-dominated"
        )

    def test_qsim_is_excitation_dominated(self):
        profile = profile_circuit(qsim_random(20, num_strings=10, seed=0))
        assert profile.regime == "excitation-dominated"

    def test_qaoa_is_decoherence_dominated(self):
        profile = profile_circuit(qaoa_regular(20, degree=3, seed=0))
        assert profile.regime == "decoherence-dominated"

    def test_vqe_is_decoherence_dominated(self):
        profile = profile_circuit(vqe_linear_entanglement(20, seed=0))
        assert profile.regime == "decoherence-dominated"

    def test_regime_matches_storage_benefit(self):
        """Excitation-dominated workloads gain more from storage."""
        from repro.analysis import run_scenarios
        from repro.baselines import EnolaConfig

        fast = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)
        bv = bernstein_vazirani(14, seed=0)
        qaoa = qaoa_regular(14, degree=3, seed=0)
        assert profile_circuit(bv).regime == "excitation-dominated"
        assert profile_circuit(qaoa).regime == "decoherence-dominated"
        bv_result = run_scenarios(bv, enola_config=fast)
        qaoa_result = run_scenarios(qaoa, enola_config=fast)
        bv_gain = (
            bv_result["pm_with_storage"].fidelity.total
            / bv_result["pm_non_storage"].fidelity.total
        )
        qaoa_gain = (
            qaoa_result["pm_with_storage"].fidelity.total
            / qaoa_result["pm_non_storage"].fidelity.total
        )
        assert bv_gain > qaoa_gain


class TestRender:
    def test_atlas_table(self):
        profiles = [
            profile_circuit(bernstein_vazirani(10, seed=0)),
            profile_circuit(qaoa_regular(10, degree=3, seed=0)),
        ]
        text = render_profiles(profiles)
        assert "Workload atlas" in text
        assert "excitation-dominated" in text
        assert "BV-10" in text

    def test_profile_is_frozen(self):
        profile = profile_circuit(qaoa_regular(8, degree=3, seed=0))
        with pytest.raises(Exception):
            profile.num_qubits = 5
        assert isinstance(profile, WorkloadProfile)
