"""Unit tests for the benchmark circuit generators."""

import pytest

from repro.circuits import transpile_to_native
from repro.circuits.generators import (
    bernstein_vazirani,
    bv_secret,
    qaoa_random,
    qaoa_regular,
    qft,
    qsim_random,
    random_pauli_strings,
    vqe_full_entanglement,
)


class TestQaoa:
    def test_regular3_edge_count(self):
        qc = qaoa_regular(10, degree=3, seed=0)
        assert qc.num_two_qubit_gates == 10 * 3 // 2

    def test_regular4_edge_count(self):
        qc = qaoa_regular(10, degree=4, seed=0)
        assert qc.num_two_qubit_gates == 10 * 4 // 2

    def test_layers_multiply_gates(self):
        one = qaoa_regular(10, degree=3, seed=0, layers=1)
        two = qaoa_regular(10, degree=3, seed=0, layers=2)
        assert two.num_two_qubit_gates == 2 * one.num_two_qubit_gates

    def test_deterministic_by_seed(self):
        a = qaoa_regular(12, seed=5)
        b = qaoa_regular(12, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = qaoa_regular(12, seed=5)
        b = qaoa_regular(12, seed=6)
        assert a.interaction_pairs() != b.interaction_pairs()

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            qaoa_regular(7, degree=3)

    def test_n_not_greater_than_degree_rejected(self):
        with pytest.raises(ValueError):
            qaoa_regular(3, degree=3)

    def test_random_probability_bounds(self):
        with pytest.raises(ValueError):
            qaoa_random(8, edge_probability=1.5)

    def test_random_half_density(self):
        qc = qaoa_random(20, edge_probability=0.5, seed=0)
        max_edges = 20 * 19 // 2
        # Loose 3-sigma band around the expected half density.
        assert 0.3 * max_edges < qc.num_two_qubit_gates < 0.7 * max_edges

    def test_all_two_qubit_gates_are_rzz(self):
        qc = qaoa_regular(10, seed=1)
        assert all(g.name == "rzz" for g in qc.two_qubit_gates)

    def test_starts_with_hadamard_wall(self):
        qc = qaoa_regular(10, seed=1)
        assert all(g.name == "h" for g in qc.gates[:10])


class TestQft:
    def test_gate_count_exact(self):
        n = 6
        qc = qft(n, with_swaps=False)
        assert qc.num_one_qubit_gates == n
        assert qc.num_two_qubit_gates == n * (n - 1) // 2

    def test_swap_count(self):
        qc = qft(6, with_swaps=True)
        assert sum(1 for g in qc.gates if g.name == "swap") == 3

    def test_approximation_drops_small_angles(self):
        exact = qft(8, with_swaps=False)
        approx = qft(8, with_swaps=False, approximation_degree=3)
        assert approx.num_two_qubit_gates < exact.num_two_qubit_gates

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            qft(0)
        with pytest.raises(ValueError):
            qft(4, approximation_degree=-1)

    def test_transpiles_to_native(self):
        assert transpile_to_native(qft(5)).is_native()


class TestBv:
    def test_secret_even_split(self):
        secret = bv_secret(10, seed=3)
        assert sum(secret) == 5

    def test_cx_count_matches_secret(self):
        secret = (1, 0, 1, 1, 0)
        qc = bernstein_vazirani(6, secret=secret)
        assert sum(1 for g in qc.gates if g.name == "cx") == 3

    def test_wrong_secret_length_rejected(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret=(1, 0, 1, 1))

    def test_non_binary_secret_rejected(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(3, secret=(1, 2))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(1)

    def test_deterministic_by_seed(self):
        assert bernstein_vazirani(10, seed=1) == bernstein_vazirani(
            10, seed=1
        )


class TestVqe:
    def test_full_entanglement_gate_count(self):
        n, layers = 6, 2
        qc = vqe_full_entanglement(n, layers=layers, seed=0)
        assert qc.num_two_qubit_gates == layers * n * (n - 1) // 2
        assert qc.num_one_qubit_gates == (layers + 1) * n

    def test_linear_entanglement_gate_count(self):
        from repro.circuits.generators import vqe_linear_entanglement

        n, layers = 6, 2
        qc = vqe_linear_entanglement(n, layers=layers, seed=0)
        assert qc.num_two_qubit_gates == layers * (n - 1)
        assert qc.num_one_qubit_gates == (layers + 1) * n

    def test_linear_is_a_chain(self):
        from repro.circuits.generators import vqe_linear_entanglement

        qc = vqe_linear_entanglement(5, seed=0)
        assert qc.interaction_pairs() == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_all_cz(self):
        qc = vqe_full_entanglement(5, seed=0)
        assert all(g.name == "cz" for g in qc.two_qubit_gates)

    def test_invalid_args(self):
        from repro.circuits.generators import vqe_ansatz

        with pytest.raises(ValueError):
            vqe_full_entanglement(1)
        with pytest.raises(ValueError):
            vqe_full_entanglement(4, layers=0)
        with pytest.raises(ValueError):
            vqe_ansatz(4, entanglement="ring")


class TestQsim:
    def test_string_count(self):
        strings = random_pauli_strings(10, 7, 0.3, seed=0)
        assert len(strings) == 7
        assert all(strings)

    def test_support_probability_plausible(self):
        strings = random_pauli_strings(50, 40, 0.3, seed=0)
        mean_support = sum(len(s) for s in strings) / len(strings)
        assert 10 < mean_support < 20  # expect ~15

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_pauli_strings(5, 3, 0.0, seed=0)

    def test_circuit_is_transpilable(self):
        qc = qsim_random(8, num_strings=4, seed=0)
        assert transpile_to_native(qc).is_native()

    def test_deterministic_by_seed(self):
        assert qsim_random(8, seed=2) == qsim_random(8, seed=2)

    def test_single_qubit_string_has_no_ladder(self):
        from repro.circuits import Circuit
        from repro.circuits.generators import append_pauli_rotation

        qc = Circuit(4)
        append_pauli_rotation(qc, {2: "Z"}, 0.5)
        assert qc.num_two_qubit_gates == 0
        assert qc.num_one_qubit_gates == 1

    def test_y_basis_change_is_inverted_correctly(self):
        from repro.circuits import Circuit
        from repro.circuits.generators import append_pauli_rotation

        qc = Circuit(2)
        append_pauli_rotation(qc, {0: "Y", 1: "Y"}, 0.3)
        names = [g.name for g in qc.gates]
        # forward: sdg,h on each; backward: h,s on each
        assert names.count("sdg") == 2
        assert names.count("s") == 2
