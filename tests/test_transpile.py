"""Unit tests for native-gate-set transpilation."""

import pytest

from repro.circuits import (
    Circuit,
    count_added_gates,
    decompose_gate,
    transpile_to_native,
)
from repro.circuits.gates import Gate
from repro.circuits.transpile import TranspileError


class TestDecompositions:
    def test_cx_decomposition(self):
        gates = decompose_gate(Gate("cx", (0, 1)))
        assert [g.name for g in gates] == ["h", "cz", "h"]
        assert gates[0].qubits == (1,)
        assert gates[1].qubits == (0, 1)
        assert gates[2].qubits == (1,)

    def test_swap_decomposition_three_cz(self):
        gates = decompose_gate(Gate("swap", (0, 1)))
        assert sum(1 for g in gates if g.name == "cz") == 3
        assert all(g.is_cz_class or not g.is_two_qubit for g in gates)

    def test_crz_decomposition(self):
        gates = decompose_gate(Gate("crz", (0, 1), (0.8,)))
        cz_count = sum(1 for g in gates if g.name == "cz")
        rz_angles = [g.params[0] for g in gates if g.name == "rz"]
        assert cz_count == 2
        assert rz_angles == pytest.approx([0.4, -0.4])

    def test_native_gates_pass_through(self):
        gate = Gate("cz", (0, 1))
        assert decompose_gate(gate) == [gate]
        one_q = Gate("h", (0,))
        assert decompose_gate(one_q) == [one_q]


class TestTranspileCircuit:
    def test_output_is_native(self):
        qc = Circuit(3)
        qc.cx(0, 1)
        qc.swap(1, 2)
        native = transpile_to_native(qc)
        assert native.is_native()

    def test_barriers_and_measures_preserved(self):
        qc = Circuit(2)
        qc.barrier()
        qc.cx(0, 1)
        qc.measure_all()
        native = transpile_to_native(qc)
        from repro.circuits import Barrier, Measure

        assert any(isinstance(op, Barrier) for op in native)
        assert sum(1 for op in native if isinstance(op, Measure)) == 2

    def test_no_extra_two_qubit_gates_for_cx(self):
        """PowerMove adds no 2Q gates beyond the input program (Sec. 3.1)."""
        qc = Circuit(4)
        qc.cx(0, 1)
        qc.cx(2, 3)
        qc.cz(0, 2)
        assert count_added_gates(qc)["two_qubit_delta"] == 0

    def test_swap_costs_three(self):
        qc = Circuit(2)
        qc.swap(0, 1)
        assert count_added_gates(qc)["two_qubit_delta"] == 2

    def test_unsupported_gate_raises(self):
        from repro.circuits.gates import GATE_SPECS, GateSpec

        # Register a non-native 2Q gate with no rewrite rule; transpile
        # must reject it rather than silently pass it through.
        GATE_SPECS["cy"] = GateSpec("cy", 2, 0, diagonal=False)
        try:
            with pytest.raises(TranspileError):
                decompose_gate(Gate("cy", (0, 1)))
        finally:
            del GATE_SPECS["cy"]

    def test_width_preserved(self):
        qc = Circuit(5)
        qc.cx(0, 4)
        assert transpile_to_native(qc).num_qubits == 5
