"""Unit tests for the MIS scheduler and the Enola baseline compiler."""

import random

import pytest

from repro.baselines import EnolaCompiler, EnolaConfig
from repro.baselines.mis import best_mis, greedy_mis, mis_stage_partition
from repro.circuits import Circuit, partition_into_blocks
from repro.circuits.generators import (
    bernstein_vazirani,
    qaoa_regular,
    vqe_full_entanglement,
)
from repro.fidelity import evaluate_program
from repro.hardware import Zone
from repro.schedule import validate_program

FAST = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


def block_of(circuit):
    return partition_into_blocks(circuit).blocks[0]


class TestGreedyMis:
    def test_is_independent(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1], 3: []}
        chosen = greedy_mis(adjacency, {0, 1, 2, 3}, random.Random(0))
        for v in chosen:
            assert not set(adjacency[v]) & chosen

    def test_is_maximal(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1], 3: []}
        chosen = greedy_mis(adjacency, {0, 1, 2, 3}, random.Random(0))
        for v in {0, 1, 2, 3} - chosen:
            assert set(adjacency[v]) & chosen, f"{v} could be added"

    def test_best_of_restarts_at_least_single(self):
        adjacency = {
            v: [u for u in range(8) if u != v and (u + v) % 3 == 0]
            for v in range(8)
        }
        single = greedy_mis(adjacency, set(range(8)), random.Random(0))
        best = best_mis(adjacency, set(range(8)), random.Random(0), 10)
        assert len(best) >= len(single) - 1  # randomised, but best-of wins

    def test_restart_validation(self):
        with pytest.raises(ValueError):
            best_mis({}, set(), random.Random(0), 0)


class TestMisStagePartition:
    def test_partitions_all_gates(self):
        qc = vqe_full_entanglement(6, seed=0)
        block = block_of(qc)
        stages = mis_stage_partition(block, random.Random(0), restarts=3)
        total = sum(s.num_gates for s in stages)
        assert total == block.num_gates

    def test_stages_disjoint(self):
        qc = vqe_full_entanglement(6, seed=0)
        stages = mis_stage_partition(block_of(qc), random.Random(0), 3)
        for stage in stages:
            stage.validate()

    def test_stage_count_reasonable(self):
        """Iterated MIS on K_n's line graph needs around n-1 stages."""
        n = 8
        qc = vqe_full_entanglement(n, seed=0)
        stages = mis_stage_partition(block_of(qc), random.Random(0), 5)
        assert n - 1 <= len(stages) <= 2 * n

    def test_empty_block(self):
        from repro.circuits.blocks import CZBlock

        assert mis_stage_partition(CZBlock(index=0), random.Random(0)) == []


class TestWindowedMis:
    def test_windowed_covers_all_gates_and_validates(self):
        qc = vqe_full_entanglement(8, seed=0)
        block = block_of(qc)
        stages = mis_stage_partition(
            block, random.Random(0), restarts=2, window_size=4
        )
        assert sum(s.num_gates for s in stages) == block.num_gates
        for stage in stages:
            stage.validate()

    def test_small_block_ignores_window(self):
        # At or below the window size the exact path runs unchanged
        # (same stages, same RNG consumption).
        block = block_of(vqe_full_entanglement(6, seed=0))
        exact = mis_stage_partition(block, random.Random(0), 3)
        windowed = mis_stage_partition(
            block, random.Random(0), 3, window_size=1000
        )
        assert [s.gates for s in exact] == [s.gates for s in windowed]

    def test_window_size_validated(self):
        with pytest.raises(ValueError):
            EnolaConfig(seed=0, use_window=True, window_size=0)

    def test_digest_identical_below_threshold(self):
        # Property: turning use_window on changes *nothing* -- program
        # digest included -- while every block fits under the window.
        from repro.schedule.serialize import program_digest

        for seed in range(3):
            qc = qaoa_regular(12, degree=3, seed=seed)
            base_cfg = EnolaConfig(
                seed=seed, mis_restarts=2, sa_iterations_per_qubit=5
            )
            windowed_cfg = EnolaConfig(
                seed=seed,
                mis_restarts=2,
                sa_iterations_per_qubit=5,
                use_window=True,
                window_size=10_000,
            )
            base = EnolaCompiler(base_cfg).compile(qc)
            windowed = EnolaCompiler(windowed_cfg).compile(qc)
            assert program_digest(windowed.program) == program_digest(
                base.program
            )
            assert "use_window" not in windowed.program.metadata

    def test_validator_clean_above_threshold(self):
        # A block bigger than the window takes the sliding-window
        # path: the schedule differs but must stay valid and record
        # the windowing in the program metadata.
        qc = vqe_full_entanglement(10, seed=1)
        cfg = EnolaConfig(
            seed=1,
            mis_restarts=1,
            sa_iterations_per_qubit=5,
            use_window=True,
            window_size=6,
        )
        result = EnolaCompiler(cfg).compile(qc)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )
        assert result.program.metadata["use_window"] is True
        assert result.program.metadata["window_size"] == 6
        assert result.program.metadata["windowed_blocks"] >= 1


class TestEnolaCompiler:
    def test_compiles_and_validates(self):
        qc = qaoa_regular(10, degree=3, seed=1)
        result = EnolaCompiler(FAST).compile(qc)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )

    def test_no_storage_zone_used(self):
        qc = qaoa_regular(8, degree=3, seed=0)
        result = EnolaCompiler(FAST).compile(qc)
        assert not result.program.architecture.has_storage
        layout = result.program.initial_layout
        assert all(
            layout.zone_of(q) is Zone.COMPUTE for q in layout.qubits
        )

    def test_reverts_to_initial_layout(self):
        """Enola's defining property: the final layout is the initial one."""
        qc = qaoa_regular(10, degree=3, seed=1)
        result = EnolaCompiler(FAST).compile(qc)
        assert result.program.final_layout() == result.program.initial_layout

    def test_movement_is_doubled(self):
        """Each stage moves qubits out AND back: moves come in pairs."""
        qc = qaoa_regular(10, degree=3, seed=1)
        result = EnolaCompiler(FAST).compile(qc)
        assert result.program.num_single_moves % 2 == 0

    def test_excitation_error_nonzero_on_sparse_stages(self):
        qc = bernstein_vazirani(8, seed=0)
        result = EnolaCompiler(FAST).compile(qc)
        report = evaluate_program(result.program)
        assert report.timeline.idle_excitations > 0

    def test_row_major_fallback(self):
        cfg = EnolaConfig(seed=0, mis_restarts=1, sa_iterations_per_qubit=0)
        qc = qaoa_regular(8, degree=3, seed=0)
        result = EnolaCompiler(cfg).compile(qc)
        validate_program(result.program)

    def test_colocated_initial_pair_needs_no_move(self):
        """Gates whose partners anneal onto neighbouring... or the same
        site are executed without movement when already co-located."""
        qc = Circuit(2)
        qc.cz(0, 1)
        result = EnolaCompiler(FAST).compile(qc)
        validate_program(result.program)
        assert result.program.num_stages == 1

    def test_deterministic(self):
        qc = qaoa_regular(10, degree=3, seed=1)
        r1 = EnolaCompiler(FAST).compile(qc)
        r2 = EnolaCompiler(FAST).compile(qc)
        assert (
            r1.program.total_move_distance()
            == r2.program.total_move_distance()
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EnolaConfig(mis_restarts=0)
        with pytest.raises(ValueError):
            EnolaConfig(sa_iterations_per_qubit=-1)
        with pytest.raises(ValueError):
            EnolaConfig(num_aods=0)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: bernstein_vazirani(7, seed=1),
            lambda: vqe_full_entanglement(6, seed=0),
            lambda: qaoa_regular(9, degree=4, seed=0),
        ],
        ids=["bv", "vqe", "qaoa4"],
    )
    def test_all_families(self, factory):
        qc = factory()
        result = EnolaCompiler(FAST).compile(qc)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )
        report = evaluate_program(result.program)
        assert 0.0 <= report.total <= 1.0
