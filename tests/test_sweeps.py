"""Tests for seed sweeps and knob sweeps."""

import pytest

from repro.analysis.sweeps import (
    Statistic,
    best_point,
    knob_sweep,
    seed_sweep,
)
from repro.baselines import EnolaConfig
from repro.benchsuite import get_benchmark
from repro.circuits.generators import qaoa_regular
from repro.core import PowerMoveConfig

FAST = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


class TestStatistic:
    def test_single_value(self):
        stat = Statistic.of([2.0])
        assert stat.mean == 2.0
        assert stat.std == 0.0
        assert stat.count == 1

    def test_spread(self):
        stat = Statistic.of([1.0, 3.0])
        assert stat.mean == 2.0
        assert stat.std == pytest.approx(1.0)
        assert (stat.minimum, stat.maximum) == (1.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Statistic.of([])


class TestSeedSweep:
    def test_aggregates_all_scenarios(self):
        spec = get_benchmark("QSIM-rand-0.3-10")
        result = seed_sweep(spec, seeds=(0, 1), enola_config=FAST)
        assert result.seeds == [0, 1]
        for scenario in ("enola", "pm_non_storage", "pm_with_storage"):
            assert result.fidelity[scenario].count == 2
            assert 0.0 <= result.fidelity[scenario].mean <= 1.0
            assert result.execution_time_us[scenario].mean > 0
        assert result.fidelity_improvement.mean > 0
        assert result.texe_improvement.mean > 0

    def test_improvement_stable_across_seeds(self):
        """The with-storage win is not a single-seed artefact."""
        spec = get_benchmark("BV-14")
        result = seed_sweep(spec, seeds=(0, 1, 2), enola_config=FAST)
        assert result.fidelity_improvement.minimum > 1.0

    def test_empty_seeds_rejected(self):
        spec = get_benchmark("BV-14")
        with pytest.raises(ValueError):
            seed_sweep(spec, seeds=())


class TestKnobSweep:
    def test_alpha_sweep_points(self):
        circuit = qaoa_regular(10, degree=3, seed=0)
        points = knob_sweep(circuit, "alpha", [0.25, 0.5, 0.75])
        assert [p.value for p in points] == [0.25, 0.5, 0.75]
        for point in points:
            assert 0.0 <= point.fidelity <= 1.0
            assert point.execution_time_us > 0

    def test_aod_sweep_monotone_time(self):
        circuit = qaoa_regular(10, degree=3, seed=0)
        points = knob_sweep(circuit, "num_aods", [1, 2, 4])
        times = [p.execution_time_us for p in points]
        assert times[0] >= times[1] >= times[2]
        transfers = {p.num_transfers for p in points}
        assert len(transfers) == 1  # Sec. 6.2 invariant

    def test_unknown_knob_rejected(self):
        circuit = qaoa_regular(8, degree=3, seed=0)
        with pytest.raises(ValueError):
            knob_sweep(circuit, "warp_factor", [9])

    def test_base_config_respected(self):
        circuit = qaoa_regular(8, degree=3, seed=0)
        base = PowerMoveConfig(use_storage=False)
        points = knob_sweep(circuit, "alpha", [0.5], base_config=base)
        # Non-storage: excitation error shows up (the base config was
        # honoured), while with storage it would be absent.
        assert points[0].fidelity < 1.0

    def test_best_point(self):
        circuit = qaoa_regular(10, degree=3, seed=0)
        points = knob_sweep(circuit, "num_aods", [1, 4])
        best = best_point(points)
        assert best.fidelity == max(p.fidelity for p in points)
        with pytest.raises(ValueError):
            best_point([])
