"""Tests for the tiered/remote cache subsystem (engine/cachestore.py).

Covers the ProgramCache conformance contract across every backend
(Null/Memory/Disk/Remote/Tiered), the content-addressed HTTP protocol
round trip (digest validation both directions, corrupted-entry
rejection), tiered read-through fill and write policies, the cache-spec
factory grammar, fail-soft behaviour when the remote tier dies
mid-batch, and the spec-driven CLI surface (``--cache``,
``repro cache info/prune/serve``).
"""

import hashlib
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.engine import (
    CacheSpecError,
    CompilationEngine,
    CompileJob,
    DiskCache,
    MemoryCache,
    NullCache,
    RemoteCache,
    RemoteCacheError,
    RemoteCacheServer,
    TieredCache,
    describe_cache,
    docs_equal_modulo_timing,
    make_cache,
    manifest_cache_spec,
    manifest_digest,
    parse_cache_spec,
    results_doc,
)
from repro.engine.cachestore import (
    DIGEST_HEADER,
    artifact_digest,
    artifact_payload,
)


def _key(tag: str) -> str:
    """A deterministic 64-hex cache key (remote keys are validated)."""
    return hashlib.sha256(tag.encode()).hexdigest()


def _doc(tag: str = "x") -> dict:
    return {
        "program": {"payload": tag},
        "compile_time": 0.25,
        "validated": True,
        "pass_timings": {},
    }


@pytest.fixture
def server(tmp_path):
    """A running reference server backed by a disk store."""
    store = DiskCache(str(tmp_path / "server-store"))
    srv = RemoteCacheServer(store).start()
    yield srv
    srv.stop()


# ----------------------------------------------------------------------
# Conformance: every backend honours the same get/put/contains contract
# ----------------------------------------------------------------------


def _backends(tmp_path, server):
    return {
        "memory": MemoryCache(),
        "disk": DiskCache(str(tmp_path / "disk")),
        "remote": RemoteCache(server.url, timeout=5.0),
        "tiered": TieredCache(
            [MemoryCache(), DiskCache(str(tmp_path / "tier-disk"))]
        ),
    }


class TestConformance:
    def test_get_put_contains_roundtrip(self, tmp_path, server):
        for name, cache in _backends(tmp_path, server).items():
            key, doc = _key(name), _doc(name)
            assert cache.get(key) is None, name
            assert not cache.contains(key), name
            cache.put(key, doc)
            assert cache.contains(key), name
            assert cache.get(key) == doc, name
            assert cache.stats.hits == 1, name
            assert cache.stats.misses == 1, name
            assert cache.stats.stores == 1, name
            assert cache.last_hit_tier is not None, name

    def test_null_cache_never_hits(self):
        cache = NullCache()
        key = _key("null")
        cache.put(key, _doc())
        assert cache.get(key) is None
        assert not cache.contains(key)
        assert cache.stats.misses == 1

    def test_unknown_key_misses_everywhere(self, tmp_path, server):
        for name, cache in _backends(tmp_path, server).items():
            assert cache.get(_key("absent")) is None, name
            assert not cache.contains(_key("absent")), name

    def test_put_kind_selects_counter(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        cache.put(_key("a"), _doc(), kind="store")
        cache.put(_key("b"), _doc(), kind="fill")
        cache.put(_key("c"), _doc(), kind="revalidate")
        assert cache.stats.stores == 1
        assert cache.stats.fills == 1
        assert cache.stats.revalidations == 1
        assert cache.stats.writes == 3
        with pytest.raises(ValueError, match="put kind"):
            cache.put(_key("d"), _doc(), kind="evict")

    def test_info_is_json_safe(self, tmp_path, server):
        for name, cache in _backends(tmp_path, server).items():
            cache.put(_key(name), _doc())
            json.dumps(cache.info())
            json.dumps(cache.stats_doc())


# ----------------------------------------------------------------------
# Remote protocol
# ----------------------------------------------------------------------


class TestRemoteProtocol:
    def test_roundtrip_over_localhost(self, server):
        client = RemoteCache(server.url)
        key, doc = _key("rt"), _doc("rt")
        client.put(key, doc)
        # A second, independent client sees the entry (shared tier).
        other = RemoteCache(server.url)
        assert other.contains(key)
        assert other.get(key) == doc

    def test_get_carries_matching_digest_header(self, server):
        client = RemoteCache(server.url)
        key, doc = _key("dg"), _doc("dg")
        client.put(key, doc)
        with urllib.request.urlopen(
            f"{server.url}/v1/cache/{key}"
        ) as response:
            payload = response.read()
            claimed = response.headers[DIGEST_HEADER]
            etag = response.headers["ETag"]
        assert claimed == artifact_digest(payload)
        assert etag == f'"{claimed}"'

    def test_put_with_wrong_digest_rejected(self, server):
        key = _key("bad-digest")
        payload = artifact_payload(_doc())
        request = urllib.request.Request(
            f"{server.url}/v1/cache/{key}",
            data=payload,
            method="PUT",
            headers={DIGEST_HEADER: "0" * 64},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.status == 400
        assert not RemoteCache(server.url).contains(key)

    def test_bad_key_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{server.url}/v1/cache/nothex")
        assert err.value.status == 400

    def test_non_json_put_rejected(self, server):
        key = _key("not-json")
        request = urllib.request.Request(
            f"{server.url}/v1/cache/{key}",
            data=b"\x00\x01 definitely not json",
            method="PUT",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.status == 400

    def test_corrupted_server_entry_reads_as_miss(self, tmp_path):
        store = DiskCache(str(tmp_path / "store"))
        srv = RemoteCacheServer(store).start()
        try:
            client = RemoteCache(srv.url)
            key = _key("corrupt")
            client.put(key, _doc())
            # Corrupt the backing file: the store rejects it on read,
            # the server answers 404, the client misses -- recompile,
            # never a crash or a poisoned artifact.
            path = tmp_path / "store" / f"{key}.json"
            path.write_text("{ torn", encoding="utf-8")
            assert client.get(key) is None
        finally:
            srv.stop()

    def test_client_rejects_tampered_payload(self):
        # A server whose payload does not match its digest header
        # (bit-rot, truncating proxy) must read as a miss.
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class Tampering(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b'{"program": {}, "compile_time": 0.1}'
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.send_header(DIGEST_HEADER, "f" * 64)
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Tampering)
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        try:
            url = f"http://127.0.0.1:{httpd.server_address[1]}"
            client = RemoteCache(url)
            assert client.get(_key("tampered")) is None
            assert client.stats.errors == 1
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_put_error_with_unread_body_closes_connection(self, server):
        # The server answers bad-key PUTs before draining the body; on
        # a keep-alive connection it must then close, or the unread
        # body bytes would be parsed as the next request line.
        import http.client

        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=5.0)
        try:
            connection.request(
                "PUT", "/v1/cache/nothex", body=b'{"x": 1}'
            )
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_stats_and_server_side_prune(self, server):
        client = RemoteCache(server.url)
        for tag in ("p1", "p2"):
            client.put(_key(tag), _doc(tag))
        stats = client.server_stats()
        assert stats["entries"] == 2
        assert stats["protocol"] == 1
        report = client.prune(0)
        assert report.removed_entries == 2
        assert client.server_stats()["entries"] == 0

    def test_admin_ops_raise_when_unreachable(self):
        client = RemoteCache("http://127.0.0.1:9", timeout=0.2)
        with pytest.raises(RemoteCacheError):
            client.server_stats()
        with pytest.raises(RemoteCacheError):
            client.prune(0)
        info = client.info()
        assert info["reachable"] is False


class TestRemoteFailSoft:
    def test_down_server_degrades_to_miss(self):
        client = RemoteCache(
            "http://127.0.0.1:9", timeout=0.2, cooldown=30.0
        )
        key = _key("down")
        assert client.get(key) is None
        client.put(key, _doc())  # dropped, not raised
        assert not client.contains(key)
        assert client.stats.errors >= 1

    def test_cooldown_skips_requests_then_recovers(self, tmp_path):
        store = MemoryCache()
        srv = RemoteCacheServer(store).start()
        url = srv.url
        srv.stop()
        client = RemoteCache(url, timeout=0.5, cooldown=0.05)
        assert client.get(_key("cd")) is None  # transport error
        errors = client.stats.errors
        assert client.get(_key("cd")) is None  # inside cooldown: skip
        assert client.stats.errors == errors
        # Server comes back on the same port after the cooldown.
        import time as _time

        host, port = url.rsplit(":", 1)[0].split("//")[1], int(
            url.rsplit(":", 1)[1]
        )
        revived = RemoteCacheServer(store, host=host, port=port).start()
        try:
            _time.sleep(0.1)
            client.put(_key("cd"), _doc("cd"))
            assert client.get(_key("cd")) == _doc("cd")
        finally:
            revived.stop()


# ----------------------------------------------------------------------
# Tiered composition
# ----------------------------------------------------------------------


class TestTieredCache:
    def test_read_through_fill(self, tmp_path):
        memory = MemoryCache()
        disk = DiskCache(str(tmp_path))
        tiered = TieredCache([memory, disk])
        key, doc = _key("fill"), _doc("fill")
        disk.put(key, doc)  # seed the lower tier only
        assert tiered.get(key) == doc
        assert tiered.last_hit_tier == "disk"
        # The hit was copied up: memory now serves it directly.
        assert memory.stats.fills == 1
        assert tiered.get(key) == doc
        assert tiered.last_hit_tier == "memory"

    def test_write_through_lands_everywhere(self, tmp_path):
        memory = MemoryCache()
        disk = DiskCache(str(tmp_path))
        tiered = TieredCache([memory, disk])
        key = _key("wt")
        tiered.put(key, _doc())
        assert memory.contains(key)
        assert disk.contains(key)

    def test_write_back_defers_last_tier_until_flush(self, tmp_path):
        disk = DiskCache(str(tmp_path / "local"))
        backing = DiskCache(str(tmp_path / "backing"))
        tiered = TieredCache([disk, backing], write_policy="back")
        key = _key("wb")
        tiered.put(key, _doc())
        assert disk.contains(key)
        assert not backing.contains(key)
        assert tiered.flush() == 1
        assert backing.contains(key)
        assert tiered.flush() == 0  # nothing pending twice

    def test_write_back_flush_retries_after_remote_outage(
        self, tmp_path
    ):
        # A flush against a down remote must keep the deferred keys
        # pending (no silent loss) and push them once the server is
        # back.
        store = MemoryCache()
        srv = RemoteCacheServer(store).start()
        host, port = srv.address
        srv.stop()  # the uplink is down during the first flush
        remote = RemoteCache(srv.url, timeout=0.5, cooldown=0.05)
        disk = DiskCache(str(tmp_path))
        tiered = TieredCache([disk, remote], write_policy="back")
        keys = [_key(f"wbr{i}") for i in range(3)]
        for key in keys:
            tiered.put(key, _doc(key))
        assert tiered.flush() == 0
        import time as _time

        _time.sleep(0.1)  # let the cooldown lapse
        revived = RemoteCacheServer(store, host=host, port=port).start()
        try:
            _time.sleep(0.1)
            assert tiered.flush() == 3
            for key in keys:
                assert store.contains(key)
        finally:
            revived.stop()

    def test_miss_counts_once_on_the_composition(self, tmp_path):
        tiered = TieredCache(
            [MemoryCache(), DiskCache(str(tmp_path))]
        )
        assert tiered.get(_key("miss")) is None
        assert tiered.stats.misses == 1
        assert tiered.last_hit_tier is None

    def test_per_tier_stats_doc(self, tmp_path):
        tiered = TieredCache([MemoryCache(), DiskCache(str(tmp_path))])
        tiered.put(_key("s"), _doc())
        doc = tiered.stats_doc()
        assert [tier["name"] for tier in doc["tiers"]] == [
            "memory",
            "disk",
        ]
        assert doc["tiers"][1]["stats"]["stores"] == 1

    def test_duplicate_kinds_get_unique_names(self, tmp_path):
        tiered = TieredCache(
            [
                DiskCache(str(tmp_path / "a")),
                DiskCache(str(tmp_path / "b")),
            ]
        )
        assert tiered.tier_names == ["disk", "disk2"]

    def test_nested_tiered_rejected(self, tmp_path):
        inner = TieredCache([MemoryCache()])
        with pytest.raises(CacheSpecError, match="nest"):
            TieredCache([inner])

    def test_prune_covers_every_tier(self, tmp_path):
        memory = MemoryCache()
        disk = DiskCache(str(tmp_path))
        tiered = TieredCache([memory, disk])
        tiered.put(_key("p"), _doc())
        report = tiered.prune(0)
        assert report.removed_entries == 2  # one per tier
        assert len(memory) == 0 and len(disk) == 0

    def test_prune_skips_unreachable_remote(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        dead = RemoteCache("http://127.0.0.1:9", timeout=0.2)
        tiered = TieredCache([disk, dead])
        disk.put(_key("pr"), _doc())
        report = tiered.prune(0)  # must not raise
        assert report.removed_entries == 1

    def test_down_remote_tier_serves_from_disk(self, tmp_path):
        disk = DiskCache(str(tmp_path))
        dead = RemoteCache(
            "http://127.0.0.1:9", timeout=0.2, cooldown=30.0
        )
        tiered = TieredCache([disk, dead])
        key, doc = _key("fs"), _doc("fs")
        tiered.put(key, doc)  # remote write drops silently
        assert tiered.get(key) == doc
        assert tiered.last_hit_tier == "disk"
        assert dead.stats.errors >= 1


# ----------------------------------------------------------------------
# Spec factory
# ----------------------------------------------------------------------


class TestCacheSpecs:
    def test_grammar(self, tmp_path):
        assert isinstance(make_cache("null"), NullCache)
        assert isinstance(make_cache("none"), NullCache)
        assert isinstance(make_cache("memory"), MemoryCache)
        disk = make_cache(f"disk:{tmp_path}")
        assert isinstance(disk, DiskCache)
        assert disk.max_bytes is None
        bounded = make_cache(f"disk:{tmp_path}:1000")
        assert bounded.max_bytes == 1000
        remote = make_cache("remote:http://127.0.0.1:8123")
        assert isinstance(remote, RemoteCache)
        tiered = make_cache(
            f"tiered:memory,disk:{tmp_path},remote:http://127.0.0.1:8123"
        )
        assert isinstance(tiered, TieredCache)
        assert tiered.tier_names == ["memory", "disk", "remote"]
        assert tiered.write_policy == "through"
        back = make_cache(f"tiered+back:memory,disk:{tmp_path}")
        assert back.write_policy == "back"

    def test_none_and_passthrough(self):
        assert isinstance(make_cache(None), NullCache)
        ready = MemoryCache()
        assert make_cache(ready) is ready

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "bogus",
            "disk",
            "disk:",
            "remote:",
            "remote:ftp://x",
            "remote:127.0.0.1:8123",
            "memory:extra",
            "tiered:",
            "tiered:tiered:memory",
            "null:x",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(CacheSpecError):
            parse_cache_spec(bad)

    def test_disk_path_with_colon_but_no_budget(self):
        parsed = parse_cache_spec("disk:/tmp/a:b")
        assert parsed["path"] == "/tmp/a:b"
        assert parsed["max_bytes"] is None

    def test_describe_cache(self, tmp_path):
        cache = make_cache(
            f"tiered:memory,disk:{tmp_path}:500,"
            "remote:http://127.0.0.1:1"
        )
        text = describe_cache(cache)
        assert "memory" in text
        assert str(tmp_path) in text
        assert "remote(http://127.0.0.1:1)" in text

    def test_manifest_cache_spec_and_digest_exclusion(self):
        doc = {"jobs": [{"benchmark": "BV-14"}]}
        spec_doc = {**doc, "cache": "memory"}
        assert manifest_cache_spec(doc) is None
        assert manifest_cache_spec(spec_doc) == "memory"
        # The cache spec is run environment: it must not rotate the
        # manifest digest (shard merge / equivalence checks depend on
        # it).
        assert manifest_digest(doc) == manifest_digest(spec_doc)

    def test_engine_accepts_spec_strings(self, tmp_path):
        engine = CompilationEngine(cache=f"disk:{tmp_path}")
        assert isinstance(engine.cache, DiskCache)


# ----------------------------------------------------------------------
# Engine integration: equivalence and fail-soft mid-batch
# ----------------------------------------------------------------------


def _jobs():
    return [
        CompileJob(scenario="pm_with_storage", benchmark="BV-14"),
        CompileJob(scenario="pm_non_storage", benchmark="BV-14"),
    ]


def _doc_of(results):
    return results_doc(
        results,
        manifest_digest="d",
        total_jobs=len(results),
        wall_time_s=0.0,
        on_error="collect",
    )


class TestEngineIntegration:
    def test_tiered_remote_equivalence_and_hit_attribution(
        self, tmp_path, server
    ):
        cold = CompilationEngine().run(_jobs())
        warm_cache = TieredCache(
            [
                DiskCache(str(tmp_path / "d1")),
                RemoteCache(server.url),
            ]
        )
        first = CompilationEngine(cache=warm_cache).run(_jobs())
        # Fresh disk tier, same remote: hits must come from the remote.
        second_cache = TieredCache(
            [
                DiskCache(str(tmp_path / "d2")),
                RemoteCache(server.url),
            ]
        )
        second = CompilationEngine(cache=second_cache).run(_jobs())
        assert docs_equal_modulo_timing(_doc_of(cold), _doc_of(first))
        assert docs_equal_modulo_timing(_doc_of(cold), _doc_of(second))
        assert all(result.cache_hit for result in second)
        assert all(
            result.stats["cache_tier"] == "remote" for result in second
        )
        assert second_cache.tiers[0].stats.fills == len(second)

    def test_remote_killed_mid_batch_fails_soft(self, tmp_path):
        store = DiskCache(str(tmp_path / "srv"))
        srv = RemoteCacheServer(store).start()
        disk = DiskCache(str(tmp_path / "local"))
        cache = TieredCache(
            [disk, RemoteCache(srv.url, timeout=1.0, cooldown=0.1)]
        )
        engine = CompilationEngine(cache=cache)
        baseline = engine.run(_jobs())
        assert all(result.ok for result in baseline)
        # The server dies between batches (equivalently: mid-run for
        # every job still pending) -- jobs keep completing from disk.
        srv.stop()
        again = CompilationEngine(cache=cache).run(_jobs())
        assert all(result.ok for result in again)
        assert all(result.cache_hit for result in again)
        assert docs_equal_modulo_timing(
            _doc_of(baseline), _doc_of(again)
        )

    def test_daemon_shutdown_drops_no_write_backs(self, tmp_path):
        # A daemon on a write-back tiered cache defers every store to
        # the backing tier.  The shutdown path (workers flush on exit,
        # stop() flushes last) must push them all: after a drained
        # stop, nothing stays pending and every compiled artifact is
        # in the backing tier.
        from repro.service import ServiceClient, ServiceServer

        local = DiskCache(str(tmp_path / "local"))
        backing = DiskCache(str(tmp_path / "backing"))
        tiered = TieredCache([local, backing], write_policy="back")
        server = ServiceServer(
            str(tmp_path / "queue"),
            "127.0.0.1:0",
            cache=tiered,
            workers=2,
        ).start()
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            submitted = client.submit(
                {
                    "defaults": {
                        "enola": {
                            "mis_restarts": 1,
                            "sa_iterations_per_qubit": 0,
                        }
                    },
                    "jobs": [
                        {"benchmark": "BV-14", "backend": "powermove"},
                        {"benchmark": "BV-14", "backend": "enola"},
                    ],
                }
            )
            records = list(
                client.results(submitted["submission"], follow=True)
            )
            assert [r["status"] for r in records] == ["ok", "ok"]
        finally:
            server.stop(drain=True)
        assert server.wait_stopped(timeout=30.0)
        with tiered._pending_lock:
            assert tiered._pending == set()  # no dropped write-backs
        keys = {r["cache_key"] for r in records}
        assert len(keys) == 2
        for key in keys:
            assert backing.contains(key)
        assert local.stats.stores == backing.stats.stores

    def test_revalidation_writes_counted_apart(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        engine = CompilationEngine(cache=cache)
        [result] = engine.run(
            [CompileJob(scenario="pm_with_storage", benchmark="BV-14",
                        validate=False)]
        )
        assert cache.stats.stores == 1
        # Strip the validated flag so the next hit re-validates.
        stored = cache.get(result.key)
        cache.put(result.key, {**stored, "validated": False})
        hit_engine = CompilationEngine(cache=cache)
        [hit] = hit_engine.run(
            [CompileJob(scenario="pm_with_storage", benchmark="BV-14")]
        )
        assert hit.cache_hit
        assert cache.stats.revalidations == 1
        assert cache.stats.fills == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCacheCliSpecs:
    def test_info_against_spec(self, tmp_path, capsys):
        cache = DiskCache(str(tmp_path))
        cache.put(_key("i"), _doc())
        assert main(["cache", "info", "--cache",
                     f"disk:{tmp_path}"]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out

    def test_info_tiered_renders_every_tier(self, tmp_path, capsys):
        spec = (
            f"tiered:memory,disk:{tmp_path},"
            "remote:http://127.0.0.1:9"
        )
        assert main(["cache", "info", "--cache", spec]) == 0
        out = capsys.readouterr().out
        assert "tiered cache" in out
        assert "memory" in out
        assert "UNREACHABLE" in out

    def test_info_json(self, tmp_path, capsys):
        assert main(
            ["cache", "info", "--cache", f"disk:{tmp_path}", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "disk"

    def test_prune_against_spec(self, tmp_path, capsys):
        cache = DiskCache(str(tmp_path))
        cache.put(_key("p"), _doc())
        assert main(["cache", "prune", "--cache",
                     f"disk:{tmp_path}"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_prune_unreachable_remote_errors(self, capsys):
        code = main(
            ["cache", "prune", "--cache", "remote:http://127.0.0.1:9"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["cache", "info", "--cache", "bogus"])
        assert exit_info.value.code == 2

    def test_batch_uses_manifest_cache_spec(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps(
                {
                    "cache": f"disk:{tmp_path / 'mcache'}",
                    "jobs": [
                        {
                            "benchmark": "BV-14",
                            "scenario": "pm_with_storage",
                        }
                    ],
                }
            )
        )
        out_path = tmp_path / "out.json"
        assert main(
            ["batch", str(manifest), "--output", str(out_path)]
        ) == 0
        assert (tmp_path / "mcache").is_dir()
        doc = json.loads(out_path.read_text())
        assert doc["cache_stats"]["kind"] == "disk"
        assert doc["cache_stats"]["stats"]["stores"] == 1
        # Second run: warm via the manifest-named disk cache.
        capsys.readouterr()
        assert main(
            ["batch", str(manifest), "--output", str(out_path)]
        ) == 0
        assert json.loads(out_path.read_text())["cache_hits"] == 1


class TestCacheObservability:
    def test_lookup_profile_per_tier_hit(self, tmp_path):
        memory = MemoryCache()
        disk = DiskCache(str(tmp_path))
        tiered = TieredCache([memory, disk])
        key = _key("prof")
        disk.put(key, _doc("prof"))
        assert tiered.get(key) is not None
        profile = tiered.last_lookup_profile
        assert [entry["tier"] for entry in profile] == ["memory", "disk"]
        assert [entry["hit"] for entry in profile] == [False, True]
        assert all(entry["duration_s"] >= 0.0 for entry in profile)
        # A miss probes every tier without a hit.
        assert tiered.get(_key("profmiss")) is None
        profile = tiered.last_lookup_profile
        assert [entry["hit"] for entry in profile] == [False, False]

    def test_lookup_profile_is_per_thread(self):
        cache = MemoryCache()
        hit_key, miss_key = _key("tls-hit"), _key("tls-miss")
        cache.put(hit_key, _doc())
        cache.get(hit_key)
        seen = {}

        def other_thread():
            cache.get(miss_key)
            seen["profile"] = cache.last_lookup_profile

        thread = threading.Thread(target=other_thread)
        thread.start()
        thread.join()
        # The other thread's miss did not clobber this thread's hit.
        assert cache.last_lookup_profile[-1]["hit"] is True
        assert seen["profile"][-1]["hit"] is False

    def test_null_cache_still_profiles(self):
        cache = NullCache()
        assert cache.get(_key("null")) is None
        assert cache.last_lookup_profile[-1]["hit"] is False

    def test_stats_doc_is_consistent_under_concurrent_flush(
        self, tmp_path
    ):
        """Regression: the daemon's ping snapshots cache stats while a
        write-back flush mutates the tiers.  The snapshot must be
        internally consistent (taken under the stats lock), never a
        torn read or an exception."""
        disk = DiskCache(str(tmp_path / "local"))
        backing = DiskCache(str(tmp_path / "backing"))
        tiered = TieredCache([disk, backing], write_policy="back")
        stop = threading.Event()
        failures = []

        def hammer_stats():
            while not stop.is_set():
                try:
                    doc = tiered.stats_doc()
                    by_name = {
                        tier["name"]: tier["stats"]
                        for tier in doc["tiers"]
                    }
                    # Flush pushes batches under the stats lock, so a
                    # snapshot sees the backing tier's stores either
                    # before or after a whole batch -- monotonic, and
                    # never more than the local tier has accepted.
                    assert (
                        by_name["disk2"]["stores"]
                        <= by_name["disk"]["stores"]
                    )
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    failures.append(exc)
                    return

        reader = threading.Thread(target=hammer_stats)
        reader.start()
        try:
            for round_index in range(30):
                for entry in range(5):
                    tiered.put(
                        _key(f"race-{round_index}-{entry}"), _doc()
                    )
                assert tiered.flush() == 5
        finally:
            stop.set()
            reader.join(timeout=10.0)
        assert not failures

    def test_cache_stats_registry_mirrors_stats_doc(self, tmp_path):
        from repro.engine.cachestore import cache_stats_registry

        tiered = TieredCache([MemoryCache(), DiskCache(str(tmp_path))])
        key = _key("reg")
        tiered.put(key, _doc())
        assert tiered.get(key) is not None
        assert tiered.get(_key("reg-miss")) is None
        registry = cache_stats_registry(tiered)
        text = registry.render_prometheus()
        assert (
            'repro_cache_requests_total{tier="memory",result="hit"} 1'
            in text
        )
        assert (
            'repro_cache_writes_total{tier="disk",kind="store"} 1'
            in text
        )

    def test_cache_server_serves_metrics(self, tmp_path):
        store = DiskCache(str(tmp_path))
        store.put(_key("srvmetrics"), _doc())
        server = RemoteCacheServer(store).start()
        try:
            url = server.url.rstrip("/") + "/metrics"
            with urllib.request.urlopen(url, timeout=5.0) as reply:
                assert reply.status == 200
                text = reply.read().decode("utf-8")
            assert "repro_cache_writes_total" in text
            assert "repro_cache_entries 1" in text
        finally:
            server.stop()
