"""Unit tests for the Continuous Router (Sec. 5)."""

import random

import pytest

from repro.core.continuous_router import (
    MOBILE,
    STATIC,
    UNDECIDED,
    ContinuousRouter,
    RoutingError,
)
from repro.hardware import Layout, Zone, ZonedArchitecture


@pytest.fixture
def arch():
    return ZonedArchitecture(3, 3, 3, 6)


def apply_routed(layout, routed):
    out = layout.copy()
    out.apply_moves(routed.moves)
    return out


def assert_stage_realised(layout, pairs, use_storage):
    """Post-conditions every routed stage must satisfy."""
    interacting = {q for pair in pairs for q in pair}
    for a, b in pairs:
        assert layout.site_of(a) == layout.site_of(b)
        assert layout.zone_of(a) is Zone.COMPUTE
    for q in layout.qubits:
        if q in interacting:
            continue
        tenants = layout.occupants(layout.site_of(q))
        assert tenants == {q}, f"idle qubit {q} shares a site"
        if use_storage:
            assert layout.zone_of(q) is Zone.STORAGE


class TestWithStorage:
    def test_pair_from_storage(self, arch):
        layout = Layout.row_major(arch, 4, Zone.STORAGE)
        router = ContinuousRouter(arch, use_storage=True)
        routed = router.route_stage(layout, [(0, 1)])
        after = apply_routed(layout, routed)
        assert_stage_realised(after, [(0, 1)], use_storage=True)
        # Both partners started in storage: one undecided anchor + one
        # mobile follower (Fig. 4(b)).
        labels = sorted(routed.labels[q] for q in (0, 1))
        assert labels == sorted([UNDECIDED, MOBILE])

    def test_noninteracting_parked_in_storage(self, arch):
        layout = Layout.row_major(arch, 4, Zone.COMPUTE)
        router = ContinuousRouter(arch, use_storage=True)
        routed = router.route_stage(layout, [(0, 1)])
        after = apply_routed(layout, routed)
        assert after.zone_of(2) is Zone.STORAGE
        assert after.zone_of(3) is Zone.STORAGE

    def test_one_in_storage_one_in_compute_case1(self, arch):
        mapping = {
            0: arch.site(Zone.STORAGE, 0, 0),
            1: arch.site(Zone.COMPUTE, 1, 1),
        }
        layout = Layout(arch, mapping)
        router = ContinuousRouter(arch, use_storage=True)
        routed = router.route_stage(layout, [(0, 1)])
        # Unblocked compute partner stays static; storage partner joins it.
        assert routed.labels[1] == STATIC
        assert routed.labels[0] == MOBILE
        after = apply_routed(layout, routed)
        assert after.site_of(0) == mapping[1]

    def test_one_in_storage_blocked_partner_case2(self, arch):
        shared = arch.site(Zone.COMPUTE, 1, 1)
        mapping = {
            0: arch.site(Zone.STORAGE, 0, 0),   # partner of 1
            1: shared,
            2: shared,                           # co-tenant of 1
            3: arch.site(Zone.STORAGE, 2, 3),   # partner of 2
        }
        layout = Layout(arch, mapping)
        router = ContinuousRouter(arch, use_storage=True)
        # Pair (1,0) is processed before (2,3): 1 grabs static on the
        # shared site, so 2 must go undecided and relocate.
        routed = router.route_stage(layout, [(1, 0), (2, 3)])
        assert routed.labels[1] == STATIC
        assert routed.labels[2] == UNDECIDED
        after = apply_routed(layout, routed)
        assert_stage_realised(after, [(0, 1), (2, 3)], use_storage=True)
        assert after.site_of(2) != shared

    def test_both_compute_already_colocated_stay(self, arch):
        shared = arch.site(Zone.COMPUTE, 1, 1)
        layout = Layout(arch, {0: shared, 1: shared})
        router = ContinuousRouter(arch, use_storage=True)
        routed = router.route_stage(layout, [(0, 1)])
        assert routed.moves == []
        assert routed.labels[0] == STATIC
        assert routed.labels[1] == STATIC

    def test_descending_y_order_for_parking(self, arch):
        """Qubits farther from storage choose their sites first."""
        mapping = {
            0: arch.site(Zone.COMPUTE, 1, 2),  # far from storage
            1: arch.site(Zone.COMPUTE, 1, 0),  # close to storage
        }
        layout = Layout(arch, mapping)
        router = ContinuousRouter(arch, use_storage=True)
        routed = router.route_stage(layout, [])
        # The far qubit (0) picks first and claims the same-column top
        # slot; the near qubit then takes the adjacent-column top slot
        # (closer than dropping a full row in its own column).
        t0 = routed.targets[0]
        t1 = routed.targets[1]
        assert t0.zone is Zone.STORAGE and t1.zone is Zone.STORAGE
        assert (t0.col, t0.row) == (1, 0)
        assert t1.row == 0 and t1.col != 1

    def test_full_storage_raises(self):
        arch = ZonedArchitecture(2, 2, 1, 1)
        mapping = {
            0: arch.site(Zone.COMPUTE, 0, 0),
            1: arch.site(Zone.COMPUTE, 1, 0),
            2: arch.site(Zone.STORAGE, 0, 0),
        }
        layout = Layout(arch, mapping)
        router = ContinuousRouter(arch, use_storage=True)
        with pytest.raises(RoutingError, match="storage"):
            router.route_stage(layout, [])

    def test_storage_router_requires_storage_zone(self):
        arch = ZonedArchitecture(2, 2)
        with pytest.raises(ValueError):
            ContinuousRouter(arch, use_storage=True)


class TestNonStorage:
    def test_pair_formation(self, arch):
        layout = Layout.row_major(arch, 6, Zone.COMPUTE)
        router = ContinuousRouter(arch, use_storage=False)
        routed = router.route_stage(layout, [(0, 5), (1, 4)])
        after = apply_routed(layout, routed)
        assert_stage_realised(
            after, [(0, 5), (1, 4)], use_storage=False
        )

    def test_idle_qubits_stay_put(self, arch):
        layout = Layout.row_major(arch, 6, Zone.COMPUTE)
        router = ContinuousRouter(arch, use_storage=False)
        routed = router.route_stage(layout, [(0, 1)])
        for q in (2, 3, 4, 5):
            assert q not in routed.targets

    def test_leftover_pair_declustered(self, arch):
        shared = arch.site(Zone.COMPUTE, 0, 0)
        mapping = {
            0: shared,
            1: shared,
            2: arch.site(Zone.COMPUTE, 2, 2),
            3: arch.site(Zone.COMPUTE, 2, 0),
        }
        layout = Layout(arch, mapping)
        router = ContinuousRouter(arch, use_storage=False)
        routed = router.route_stage(layout, [(2, 3)])
        after = apply_routed(layout, routed)
        # The stale (0,1) co-location must be split.
        assert after.site_of(0) != after.site_of(1)
        assert_stage_realised(after, [(2, 3)], use_storage=False)

    def test_leftover_pair_with_one_interacting(self, arch):
        shared = arch.site(Zone.COMPUTE, 0, 0)
        mapping = {
            0: shared,
            1: shared,
            2: arch.site(Zone.COMPUTE, 2, 2),
        }
        layout = Layout(arch, mapping)
        router = ContinuousRouter(arch, use_storage=False)
        routed = router.route_stage(layout, [(1, 2)])
        after = apply_routed(layout, routed)
        assert_stage_realised(after, [(1, 2)], use_storage=False)
        # Qubit 0 stays alone at the shared site.
        assert after.occupants(shared) == {0}

    def test_rejects_storage_residents(self, arch):
        layout = Layout.row_major(arch, 2, Zone.STORAGE)
        router = ContinuousRouter(arch, use_storage=False)
        with pytest.raises(ValueError):
            router.route_stage(layout, [(0, 1)])


class TestInputValidation:
    def test_degenerate_pair(self, arch):
        layout = Layout.row_major(arch, 2)
        router = ContinuousRouter(arch, use_storage=False)
        with pytest.raises(ValueError):
            router.route_stage(layout, [(0, 0)])

    def test_overlapping_pairs(self, arch):
        layout = Layout.row_major(arch, 3)
        router = ContinuousRouter(arch, use_storage=False)
        with pytest.raises(ValueError):
            router.route_stage(layout, [(0, 1), (1, 2)])

    def test_unplaced_qubit(self, arch):
        layout = Layout.row_major(arch, 2)
        router = ContinuousRouter(arch, use_storage=False)
        with pytest.raises(ValueError):
            router.route_stage(layout, [(0, 7)])


class TestDeterminismAndSeeding:
    def test_same_seed_same_routing(self, arch):
        layout = Layout.row_major(arch, 6, Zone.COMPUTE)
        pairs = [(0, 5), (1, 4)]
        r1 = ContinuousRouter(arch, False, random.Random(7)).route_stage(
            layout, pairs
        )
        r2 = ContinuousRouter(arch, False, random.Random(7)).route_stage(
            layout, pairs
        )
        assert [(m.qubit, m.destination) for m in r1.moves] == [
            (m.qubit, m.destination) for m in r2.moves
        ]

    def test_layout_not_mutated(self, arch):
        layout = Layout.row_major(arch, 4, Zone.STORAGE)
        snapshot = layout.as_dict()
        ContinuousRouter(arch, True).route_stage(layout, [(0, 1)])
        assert layout.as_dict() == snapshot


class TestScalarVectorEquivalence:
    """The numpy fast path must be bit-identical to the scalar loops.

    When numpy is absent both runs take the scalar path and the test
    degenerates to determinism -- still a valid (weaker) check, and
    exactly what tier-1 CI without numpy exercises.
    """

    def test_program_digest_identical_without_numpy(self, monkeypatch):
        import repro.core.continuous_router as cr
        import repro.hardware.geometry as geo
        import repro.hardware.kinematics as kin
        from repro.circuits.generators import qaoa_regular
        from repro.pipeline.registry import create_compiler, get_backend
        from repro.schedule.serialize import program_digest

        # Large enough that compute-zone site counts clear the
        # router's vectorization threshold when numpy is present.
        circuit = qaoa_regular(150, degree=3, seed=0)
        digests = {}
        for mode in ("default", "scalar"):
            if mode == "scalar":
                monkeypatch.setattr(cr, "_np", None)
                monkeypatch.setattr(geo, "_np", None)
                monkeypatch.setattr(kin, "_np", None)
            spec = get_backend("powermove")
            compiler = create_compiler(
                "powermove", spec.effective_config(None, 0, 1)
            )
            digests[mode] = program_digest(
                compiler.compile(circuit).program
            )
        assert digests["default"] == digests["scalar"]


class TestMultiStageProgression:
    def test_consecutive_stages_consistent(self, arch):
        """Drive several stages and check invariants after each."""
        layout = Layout.row_major(arch, 6, Zone.STORAGE)
        router = ContinuousRouter(arch, use_storage=True)
        schedule = [
            [(0, 1), (2, 3)],
            [(1, 2), (4, 5)],
            [(0, 5)],
            [(3, 4), (0, 1)],
        ]
        for pairs in schedule:
            routed = router.route_stage(layout, pairs)
            layout.apply_moves(routed.moves)
            assert_stage_realised(layout, pairs, use_storage=True)

    def test_consecutive_stages_non_storage(self, arch):
        layout = Layout.row_major(arch, 6, Zone.COMPUTE)
        router = ContinuousRouter(arch, use_storage=False, rng=random.Random(3))
        schedule = [
            [(0, 1), (2, 3)],
            [(1, 2), (4, 5)],
            [(0, 5)],
            [(3, 4), (0, 1)],
        ]
        for pairs in schedule:
            routed = router.route_stage(layout, pairs)
            layout.apply_moves(routed.moves)
            assert_stage_realised(layout, pairs, use_storage=False)
