"""Unit tests for the OpenQASM 2.0 front end."""

import math

import pytest

from repro.circuits import Circuit, parse_qasm, to_qasm
from repro.circuits.gates import Gate
from repro.circuits.qasm import QasmError, evaluate_expression

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestExpressionEvaluation:
    def test_number(self):
        assert evaluate_expression("2.5") == pytest.approx(2.5)

    def test_pi(self):
        assert evaluate_expression("pi") == pytest.approx(math.pi)

    def test_arithmetic(self):
        assert evaluate_expression("pi/2 + 1") == pytest.approx(
            math.pi / 2 + 1
        )

    def test_nested_parentheses(self):
        assert evaluate_expression("-(2*(1+3))") == pytest.approx(-8)

    def test_power(self):
        assert evaluate_expression("2^3") == pytest.approx(8)
        assert evaluate_expression("2**3") == pytest.approx(8)

    def test_functions(self):
        assert evaluate_expression("cos(0)") == pytest.approx(1.0)
        assert evaluate_expression("sqrt(4)") == pytest.approx(2.0)

    def test_variables(self):
        assert evaluate_expression("theta/2", {"theta": 1.0}) == pytest.approx(
            0.5
        )

    def test_unknown_symbol_raises(self):
        with pytest.raises(QasmError):
            evaluate_expression("nope")

    def test_division_by_zero_raises(self):
        with pytest.raises(QasmError):
            evaluate_expression("1/0")

    def test_unbalanced_parens_raise(self):
        with pytest.raises(QasmError):
            evaluate_expression("(1+2")


class TestBasicParsing:
    def test_minimal_circuit(self):
        qc = parse_qasm(HEADER + "qreg q[2];\nh q[0];\ncz q[0],q[1];")
        assert qc.num_qubits == 2
        assert qc.num_gates == 2

    def test_no_qreg_raises(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "creg c[2];")

    def test_parameterised_gate(self):
        qc = parse_qasm(HEADER + "qreg q[1];\nrz(pi/4) q[0];")
        gate = qc.gates[0]
        assert gate.name == "rz"
        assert gate.params[0] == pytest.approx(math.pi / 4)

    def test_register_broadcast(self):
        qc = parse_qasm(HEADER + "qreg q[3];\nh q;")
        assert qc.num_one_qubit_gates == 3
        assert {g.qubits[0] for g in qc.gates} == {0, 1, 2}

    def test_two_qregs_flattened(self):
        qc = parse_qasm(
            HEADER + "qreg a[2];\nqreg b[2];\ncz a[1],b[0];"
        )
        assert qc.num_qubits == 4
        assert qc.gates[0].qubits == (1, 2)

    def test_measure_single_and_register(self):
        qc = parse_qasm(
            HEADER
            + "qreg q[2];\ncreg c[2];\nmeasure q[0] -> c[0];\nmeasure q -> c;"
        )
        from repro.circuits import Measure

        measures = [op for op in qc if isinstance(op, Measure)]
        assert len(measures) == 3

    def test_barrier(self):
        qc = parse_qasm(HEADER + "qreg q[2];\nbarrier q;")
        from repro.circuits import Barrier

        assert any(isinstance(op, Barrier) for op in qc)

    def test_comments_stripped(self):
        qc = parse_qasm(
            HEADER + "qreg q[1];\n// comment\nh q[0]; /* block */"
        )
        assert qc.num_gates == 1

    def test_unknown_gate_raises(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nzorp q[0];")

    def test_index_out_of_range_raises(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[2];\nh q[5];")

    def test_reset_unsupported(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nreset q[0];")


class TestLexerEdgeCases:
    """Comment stripping and keyword dispatch on adversarial input."""

    def test_comment_on_qreg_line(self):
        qc = parse_qasm(
            HEADER
            + "qreg q[2]; // main register\n"
            + "h q[0]; /* mid-line */ cz q[0],q[1];"
        )
        assert qc.num_qubits == 2
        assert [g.name for g in qc.gates] == ["h", "cz"]

    def test_url_inside_block_comment(self):
        # The '//' of the URL must not eat the block terminator.
        qc = parse_qasm(
            HEADER
            + "qreg q[1];\n"
            + "/* see https://example.com/spec */\n"
            + "h q[0];"
        )
        assert qc.num_gates == 1

    def test_block_comment_opener_inside_line_comment(self):
        qc = parse_qasm(
            HEADER + "qreg q[1];\n// dead code: /*\nh q[0];"
        )
        assert qc.num_gates == 1

    def test_block_comment_separates_tokens(self):
        qc = parse_qasm(HEADER + "qreg/*sep*/q[1];\nh q[0];")
        assert qc.num_qubits == 1

    def test_multiline_block_comment(self):
        qc = parse_qasm(
            HEADER
            + "qreg q[1];\n/* a comment\nspanning // lines\n*/\nh q[0];"
        )
        assert qc.num_gates == 1

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(QasmError, match="unterminated"):
            parse_qasm(HEADER + "qreg q[1];\n/* oops\nh q[0];")

    def test_tab_after_gate_keyword(self):
        qc = parse_qasm(
            HEADER
            + "qreg q[2];\n"
            + "gate\tbell a,b { h a; cz a,b; }\n"
            + "bell q[0],q[1];"
        )
        assert [g.name for g in qc.gates] == ["h", "cz"]

    def test_gate_named_like_keyword_prefix(self):
        # "measurement" / "ifoo" / "resetish" share a prefix with a
        # keyword; they must dispatch as (unknown) gates, not as
        # keyword statements.
        for name in ("measurement", "ifoo", "resetish", "barriers"):
            with pytest.raises(QasmError, match="unknown gate"):
                parse_qasm(HEADER + f"qreg q[1];\n{name} q[0];")

    def test_macro_named_like_keyword_prefix(self):
        src = (
            HEADER
            + "qreg q[1];\n"
            + "gate measurement a { h a; }\n"
            + "measurement q[0];"
        )
        assert [g.name for g in parse_qasm(src).gates] == ["h"]

    def test_keyword_statements_still_dispatch(self):
        with pytest.raises(QasmError, match="classical control"):
            parse_qasm(
                HEADER
                + "qreg q[1];\ncreg c[1];\nif (c == 1) h q[0];"
            )

    def test_malformed_measure_raises(self):
        with pytest.raises(QasmError, match="malformed measure"):
            parse_qasm(
                HEADER + "qreg q[1];\ncreg c[1];\nmeasure q[0];"
            )

    def test_malformed_register_raises(self):
        with pytest.raises(QasmError, match="malformed register"):
            parse_qasm(HEADER + "qreg q[];\nh q[0];")


class TestGateMacros:
    def test_simple_macro_expansion(self):
        src = (
            HEADER
            + "qreg q[2];\n"
            + "gate bell a,b { h a; cz a,b; h b; }\n"
            + "bell q[0],q[1];"
        )
        qc = parse_qasm(src)
        assert [g.name for g in qc.gates] == ["h", "cz", "h"]

    def test_parameterised_macro(self):
        src = (
            HEADER
            + "qreg q[2];\n"
            + "gate mixer(t) a { rx(2*t) a; }\n"
            + "mixer(0.25) q[1];"
        )
        qc = parse_qasm(src)
        assert qc.gates[0].params[0] == pytest.approx(0.5)

    def test_nested_macro(self):
        src = (
            HEADER
            + "qreg q[2];\n"
            + "gate inner a { h a; }\n"
            + "gate outer a,b { inner a; cz a,b; }\n"
            + "outer q[0],q[1];"
        )
        qc = parse_qasm(src)
        assert [g.name for g in qc.gates] == ["h", "cz"]

    def test_qelib_redefinition_ignored(self):
        src = HEADER + "gate h a { }\nqreg q[1];\nh q[0];"
        qc = parse_qasm(src)
        assert qc.gates[0].name == "h"

    def test_macro_wrong_operand_count(self):
        src = (
            HEADER
            + "qreg q[2];\n"
            + "gate gg a,b { cz a,b; }\n"
            + "gg q[0];"
        )
        with pytest.raises(QasmError):
            parse_qasm(src)


class TestRoundTrip:
    def test_round_trip_preserves_gates(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cz(0, 1)
        qc.rzz(0.375, 1, 2)
        qc.barrier()
        qc.measure_all()
        parsed = parse_qasm(to_qasm(qc))
        assert parsed.num_qubits == 3
        assert [g.name for g in parsed.gates] == [g.name for g in qc.gates]
        assert [g.qubits for g in parsed.gates] == [
            g.qubits for g in qc.gates
        ]
        for got, want in zip(parsed.gates, qc.gates):
            assert got.params == pytest.approx(want.params)

    def test_round_trip_generator(self):
        from repro.circuits.generators import qft

        qc = qft(5)
        parsed = parse_qasm(to_qasm(qc))
        assert parsed.num_two_qubit_gates == qc.num_two_qubit_gates

    def test_parse_gate_object_validity(self):
        qc = parse_qasm(HEADER + "qreg q[2];\ncp(pi/8) q[0],q[1];")
        gate = qc.gates[0]
        assert isinstance(gate, Gate)
        assert gate.is_cz_class
