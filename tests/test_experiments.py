"""Integration tests for the experiment harness (Table 3 / figures)."""

import pytest

from repro.analysis import (
    SCENARIOS,
    Table3Row,
    figure6_panel,
    figure7_series,
    render_table2,
    reproduce_table3,
    run_scenarios,
)
from repro.baselines import EnolaConfig
from repro.circuits.generators import bernstein_vazirani, qaoa_regular

FAST = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


class TestRunScenarios:
    def test_all_scenarios_present(self):
        result = run_scenarios(
            qaoa_regular(8, degree=3, seed=0), enola_config=FAST
        )
        assert set(result.scenarios) == set(SCENARIOS)

    def test_storage_eliminates_excitation(self):
        result = run_scenarios(
            bernstein_vazirani(8, seed=0), enola_config=FAST
        )
        ws = result["pm_with_storage"].fidelity
        assert ws.timeline.idle_excitations == 0
        enola = result["enola"].fidelity
        assert enola.timeline.idle_excitations > 0

    def test_improvement_ratios_defined(self):
        result = run_scenarios(
            qaoa_regular(8, degree=3, seed=0), enola_config=FAST
        )
        assert result.fidelity_improvement > 0
        assert result.texe_improvement > 0
        assert result.tcomp_improvement > 0

    def test_two_qubit_component_identical_across_scenarios(self):
        """No compiler adds 2Q gates: the f2^g2 term must coincide."""
        result = run_scenarios(
            qaoa_regular(8, degree=3, seed=0), enola_config=FAST
        )
        values = {
            result[s].fidelity.two_qubit for s in SCENARIOS
        }
        assert len(values) == 1

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_scenarios(
                qaoa_regular(8, degree=3, seed=0),
                scenarios=("bogus",),
            )

    def test_subset_of_scenarios(self):
        result = run_scenarios(
            qaoa_regular(8, degree=3, seed=0),
            scenarios=("pm_with_storage",),
        )
        assert list(result.scenarios) == ["pm_with_storage"]


class TestTable3Harness:
    def test_single_row(self):
        table = reproduce_table3(
            keys=("QSIM-rand-0.3-10",), enola_config=FAST
        )
        assert len(table.rows) == 1
        row = table.rows[0]
        assert isinstance(row, Table3Row)
        assert row.num_qubits == 10
        assert 0 <= row.ws_fidelity <= 1

    def test_render_contains_columns(self):
        table = reproduce_table3(keys=("BV-14",), enola_config=FAST)
        text = table.render()
        assert "BV-14" in text
        assert "Fid. Improv." in text
        assert "Tcomp Improv." in text

    def test_table2_render(self):
        text = render_table2()
        assert "QAOA-regular3" in text
        assert "90 x 180" in text


class TestFigureHarness:
    def test_figure6_panel_small(self):
        panel = figure6_panel(
            "QSIM-rand-0.3", sizes=[10], enola_config=FAST
        )
        assert panel.sizes == [10]
        for scenario in SCENARIOS:
            series = panel.series[scenario]
            assert len(series["total"]) == 1
            assert set(series) == {
                "two_qubit",
                "excitation",
                "transfer",
                "decoherence",
                "total",
            }
        # Storage panel shows no excitation error.
        assert panel.series["pm_with_storage"]["excitation"][0] == 1.0
        text = panel.render()
        assert "QSIM" in text

    def test_figure6_bad_sizes(self):
        with pytest.raises(ValueError):
            figure6_panel("BV", sizes=[999], enola_config=FAST)

    def test_figure7_series_small(self):
        series = figure7_series(
            keys=("BV-14",), aod_counts=(1, 2), seed=0
        )
        assert series.aod_counts == [1, 2]
        texe = series.texe_us["BV-14"]
        assert len(texe) == 2
        assert texe[1] <= texe[0] + 1e-9
        fid = series.fidelity["BV-14"]
        assert fid[1] >= fid[0] - 1e-12
        assert "BV-14" in series.render()
