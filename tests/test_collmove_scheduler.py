"""Unit tests for the Coll-Move Scheduler (Sec. 6)."""

import pytest

from repro.core.collmove_scheduler import (
    order_coll_moves,
    schedule_coll_moves,
    transition_duration,
)
from repro.hardware import (
    DEFAULT_PARAMS,
    CollMove,
    Move,
    Zone,
    ZonedArchitecture,
)


@pytest.fixture
def arch():
    return ZonedArchitecture(4, 4, 4, 8)


def cm_into_storage(arch, qubit, col):
    return CollMove(
        moves=[
            Move(
                qubit,
                arch.site(Zone.COMPUTE, col, 0),
                arch.site(Zone.STORAGE, col, 0),
            )
        ]
    )


def cm_out_of_storage(arch, qubit, col):
    return CollMove(
        moves=[
            Move(
                qubit,
                arch.site(Zone.STORAGE, col, 0),
                arch.site(Zone.COMPUTE, col, 0),
            )
        ]
    )


def cm_lateral(arch, qubit, row):
    return CollMove(
        moves=[
            Move(
                qubit,
                arch.site(Zone.COMPUTE, 0, row),
                arch.site(Zone.COMPUTE, 1, row),
            )
        ]
    )


class TestIntraStageOrdering:
    def test_move_ins_first_move_outs_last(self, arch):
        groups = [
            cm_out_of_storage(arch, 0, 0),
            cm_lateral(arch, 1, 1),
            cm_into_storage(arch, 2, 2),
        ]
        ordered = order_coll_moves(groups)
        assert ordered[0].num_into_storage == 1
        assert ordered[-1].num_out_of_storage == 1

    def test_stable_for_equal_keys(self, arch):
        groups = [cm_lateral(arch, q, q) for q in range(3)]
        ordered = order_coll_moves(groups)
        assert [g.moves[0].qubit for g in ordered] == [0, 1, 2]

    def test_disabled_keeps_input_order(self, arch):
        groups = [
            cm_out_of_storage(arch, 0, 0),
            cm_into_storage(arch, 1, 1),
        ]
        ordered = order_coll_moves(groups, prioritize_move_ins=False)
        assert [g.moves[0].qubit for g in ordered] == [0, 1]


class TestMultiAodChunking:
    def test_single_aod_one_per_batch(self, arch):
        groups = [cm_lateral(arch, q, q) for q in range(3)]
        batches = schedule_coll_moves(groups, num_aods=1)
        assert len(batches) == 3
        assert all(b.num_coll_moves == 1 for b in batches)

    def test_two_aods_pairs_batches(self, arch):
        groups = [cm_lateral(arch, q, q) for q in range(3)]
        batches = schedule_coll_moves(groups, num_aods=2)
        assert [b.num_coll_moves for b in batches] == [2, 1]

    def test_aod_indices_assigned(self, arch):
        groups = [cm_lateral(arch, q, q) for q in range(4)]
        batches = schedule_coll_moves(groups, num_aods=2)
        for batch in batches:
            indices = [cm.aod_index for cm in batch.coll_moves]
            assert indices == list(range(len(indices)))

    def test_invalid_aod_count(self, arch):
        with pytest.raises(ValueError):
            schedule_coll_moves([], num_aods=0)

    def test_empty_input(self):
        assert schedule_coll_moves([], num_aods=2) == []


class TestDurations:
    def test_more_aods_never_slower(self, arch):
        groups = [cm_lateral(arch, q, q) for q in range(4)]
        t1 = transition_duration(
            schedule_coll_moves(list(groups), num_aods=1), DEFAULT_PARAMS
        )
        t2 = transition_duration(
            schedule_coll_moves(list(groups), num_aods=2), DEFAULT_PARAMS
        )
        t4 = transition_duration(
            schedule_coll_moves(list(groups), num_aods=4), DEFAULT_PARAMS
        )
        assert t2 <= t1
        assert t4 <= t2

    def test_transfer_count_invariant_under_aods(self, arch):
        """Sec. 6.2: parallelism must not change N_trans."""
        groups1 = [cm_lateral(arch, q, q) for q in range(4)]
        groups2 = [cm_lateral(arch, q, q) for q in range(4)]
        batches1 = schedule_coll_moves(groups1, num_aods=1)
        batches4 = schedule_coll_moves(groups2, num_aods=4)
        assert sum(b.num_transfers for b in batches1) == sum(
            b.num_transfers for b in batches4
        )

    def test_batch_duration_formula(self, arch):
        groups = [cm_lateral(arch, 0, 0), cm_lateral(arch, 1, 1)]
        batches = schedule_coll_moves(groups, num_aods=2)
        assert len(batches) == 1
        move_time = DEFAULT_PARAMS.move_duration(15e-6)
        assert batches[0].duration(DEFAULT_PARAMS) == pytest.approx(
            2 * DEFAULT_PARAMS.duration_transfer + move_time
        )
