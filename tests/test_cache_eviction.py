"""Tests for DiskCache LRU eviction and the ``repro cache`` CLI."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.engine import DiskCache


def _doc(payload_bytes: int) -> dict:
    return {"blob": "x" * payload_bytes}


def _age(cache: DiskCache, key: str, seconds: float) -> None:
    """Backdate an entry's mtime (the LRU recency signal)."""
    path = os.path.join(cache.directory, f"{key}.json")
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestDiskCacheEviction:
    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskCache(str(tmp_path), max_bytes=0)

    def test_store_evicts_oldest_over_budget(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_bytes=250)
        cache.put("aa", _doc(80))
        _age(cache, "aa", 300)
        cache.put("bb", _doc(80))
        _age(cache, "bb", 200)
        cache.put("cc", _doc(80))
        # Third store pushed the total over 250 bytes: the oldest entry
        # goes, the two newer ones stay.
        assert cache.get("aa") is None
        assert cache.get("bb") is not None
        assert cache.get("cc") is not None
        assert cache.stats.evictions == 1
        assert cache.total_bytes() <= 250

    def test_same_key_overwrites_do_not_inflate_estimate(self, tmp_path):
        """Re-storing one key replaces its entry; the size estimate must
        track the delta, not accumulate every overwrite, or repeated
        same-key writers trigger premature full-directory prune scans."""
        cache = DiskCache(str(tmp_path), max_bytes=10_000)
        for _ in range(50):
            cache.put("aa", _doc(100))
        # 50 overwrites of a ~100-byte entry: without delta accounting
        # the estimate balloons past the 10 kB budget and prunes fire.
        assert cache.stats.evictions == 0
        assert cache._size_estimate == cache.total_bytes()
        assert cache.get("aa") is not None

    def test_same_key_overwrite_tracks_size_changes(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_bytes=10_000)
        cache.put("aa", _doc(100))
        cache.put("bb", _doc(100))
        cache.put("aa", _doc(500))  # grow
        assert cache._size_estimate == cache.total_bytes()
        cache.put("aa", _doc(50))  # shrink
        assert cache._size_estimate == cache.total_bytes()

    def test_read_refreshes_recency(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_bytes=250)
        cache.put("aa", _doc(80))
        cache.put("bb", _doc(80))
        _age(cache, "aa", 300)
        _age(cache, "bb", 200)
        assert cache.get("aa") is not None  # touch: now most recent
        cache.put("cc", _doc(80))
        # bb (least recently used) was evicted, not aa.
        assert cache.get("bb") is None
        assert cache.get("aa") is not None

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        for index in range(5):
            cache.put(f"k{index}", _doc(100))
        assert len(cache) == 5
        assert cache.stats.evictions == 0

    def test_prune_with_explicit_budget(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        for index in range(4):
            cache.put(f"k{index}", _doc(100))
            _age(cache, f"k{index}", 400 - index * 100)
        total = cache.total_bytes()
        report = cache.prune(total // 2)
        assert report.removed_entries >= 1
        assert report.remaining_bytes <= total // 2
        assert report.remaining_bytes == cache.total_bytes()
        # Oldest-first: the newest entry survives.
        assert cache.get("k3") is not None

    def test_prune_to_zero_empties_cache(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        cache.put("aa", _doc(50))
        report = cache.prune(0)
        assert report.removed_entries == 1
        assert report.remaining_entries == 0
        assert len(cache) == 0

    def test_prune_without_budget_reports_only(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        cache.put("aa", _doc(50))
        report = cache.prune()
        assert report.removed_entries == 0
        assert report.remaining_entries == 1

    def test_eviction_ignores_foreign_files(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_bytes=100)
        keep = tmp_path / "README.txt"
        keep.write_text("not a cache entry")
        cache.put("aa", _doc(300))
        cache.put("bb", _doc(10))
        assert keep.exists()


class TestCacheCli:
    def _populate(self, tmp_path) -> str:
        directory = str(tmp_path / "cache")
        cache = DiskCache(directory)
        cache.put("aa", _doc(100))
        cache.put("bb", _doc(100))
        _age(cache, "aa", 500)
        return directory

    def test_cache_info(self, tmp_path, capsys):
        directory = self._populate(tmp_path)
        assert main(["cache", "info", "--cache-dir", directory]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out

    def test_cache_prune_to_budget(self, tmp_path, capsys):
        directory = self._populate(tmp_path)
        code = main(
            ["cache", "prune", "--cache-dir", directory,
             "--max-bytes", "150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "removed 1 entries" in out
        # LRU: the backdated entry went first.
        assert not os.path.exists(os.path.join(directory, "aa.json"))
        assert os.path.exists(os.path.join(directory, "bb.json"))

    def test_cache_prune_default_removes_all(self, tmp_path, capsys):
        directory = self._populate(tmp_path)
        assert main(["cache", "prune", "--cache-dir", directory]) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert json.loads("[]") == [
            name
            for name in os.listdir(directory)
            if name.endswith(".json")
        ]


class TestDirectoryLock:
    """Cross-process/thread locking of size accounting and eviction."""

    def test_lock_file_created_and_not_counted(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_bytes=10_000)
        cache.put("aa", _doc(100))
        assert os.path.exists(os.path.join(str(tmp_path), ".lock"))
        assert len(cache) == 1  # .lock is not a cache entry

    def test_unbounded_store_takes_no_lock_file(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        cache.put("aa", _doc(100))
        assert not os.path.exists(os.path.join(str(tmp_path), ".lock"))

    def test_store_triggered_prune_reenters_lock(self, tmp_path):
        # _store holds the directory lock when it calls prune(); the
        # lock must be re-entrant or every budget overflow deadlocks.
        cache = DiskCache(str(tmp_path), max_bytes=250)
        for number in range(5):
            cache.put(f"k{number}", _doc(120))
        assert cache.total_bytes() <= 250

    def test_concurrent_threads_share_one_bounded_directory(
        self, tmp_path
    ):
        import threading

        caches = [
            DiskCache(str(tmp_path), max_bytes=2_000) for _ in range(4)
        ]
        errors = []

        def writer(cache, lane):
            try:
                for number in range(25):
                    cache.put(f"lane{lane}-{number}", _doc(100))
                cache.prune(2_000)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(cache, lane))
            for lane, cache in enumerate(caches)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Post-conditions under contention: no torn entries, occupancy
        # within budget after the final prunes.
        survivors = caches[0]._entries()
        assert sum(size for _, _, size in survivors) <= 2_000
        for path, _, _ in survivors:
            with open(path, encoding="utf-8") as handle:
                json.load(handle)  # parses: no torn writes

    def test_concurrent_processes_share_one_bounded_directory(
        self, tmp_path
    ):
        import subprocess
        import sys

        script = (
            "import sys\n"
            "from repro.engine import DiskCache\n"
            "cache = DiskCache(sys.argv[1], max_bytes=2000)\n"
            "for number in range(30):\n"
            "    cache.put(f'{sys.argv[2]}-{number}', "
            "{'blob': 'x' * 100})\n"
            "cache.prune(2000)\n"
        )
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), f"p{lane}"]
            )
            for lane in range(3)
        ]
        for process in processes:
            assert process.wait(timeout=60) == 0
        check = DiskCache(str(tmp_path))
        assert check.total_bytes() <= 2_000
        for key_path, _, _ in check._entries():
            with open(key_path, encoding="utf-8") as handle:
                json.load(handle)
