"""End-to-end integration tests: every family, every scenario, validated.

These tests exercise the whole stack -- generators, transpilation, block
partition, all three PowerMove components, the Enola baseline, the
validator and the fidelity model -- and assert the *qualitative claims*
of the paper's evaluation hold on small instances.
"""

import pytest

from repro.analysis import run_scenarios
from repro.baselines import EnolaConfig
from repro.circuits import parse_qasm, to_qasm, transpile_to_native
from repro.circuits.generators import (
    bernstein_vazirani,
    qaoa_random,
    qaoa_regular,
    qft,
    qsim_random,
    vqe_full_entanglement,
)
from repro.fidelity import evaluate_program

FAST = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=15)

FAMILIES = {
    "qaoa3": lambda: qaoa_regular(12, degree=3, seed=0),
    "qaoa4": lambda: qaoa_regular(12, degree=4, seed=0),
    "qaoa-random": lambda: qaoa_random(10, seed=0),
    "qft": lambda: qft(8),
    "bv": lambda: bernstein_vazirani(10, seed=0),
    "vqe": lambda: vqe_full_entanglement(8, seed=0),
    "qsim": lambda: qsim_random(10, num_strings=5, seed=0),
}


@pytest.fixture(scope="module")
def results():
    """Compile every family under all scenarios once (validated)."""
    out = {}
    for name, factory in FAMILIES.items():
        out[name] = run_scenarios(
            factory(), seed=0, enola_config=FAST, validate=True
        )
    return out


class TestPaperClaims:
    def test_storage_eliminates_excitation_error(self, results):
        for name, result in results.items():
            report = result["pm_with_storage"].fidelity
            assert report.timeline.idle_excitations == 0, name
            assert report.excitation == 1.0, name

    def test_enola_pays_excitation_error(self, results):
        # Dense QAOA stages can occasionally pack every qubit into a gate
        # (zero spectators), so assert only on families whose stages are
        # guaranteed sparse: BV (1 gate/stage), QSim ladders and QFT.
        for name in ("bv", "qsim", "qft", "qaoa-random"):
            report = results[name]["enola"].fidelity
            assert report.timeline.idle_excitations > 0, name

    def test_continuous_router_faster_than_enola(self, results):
        """T_exe(non-storage) < T_exe(Enola) on every family."""
        for name, result in results.items():
            ns = result["pm_non_storage"].fidelity.execution_time
            enola = result["enola"].fidelity.execution_time
            assert ns < enola, name

    def test_with_storage_best_fidelity_on_sparse_workloads(self, results):
        """BV/QSim: many small stages -> storage wins decisively."""
        for name in ("bv", "qsim"):
            result = results[name]
            ws = result["pm_with_storage"].fidelity.total
            enola = result["enola"].fidelity.total
            assert ws > enola, name

    def test_fidelity_improvement_positive_everywhere(self, results):
        for name, result in results.items():
            assert result.fidelity_improvement > 1.0, name

    def test_fewer_transfers_than_enola(self, results):
        """The continuous router avoids the revert moves."""
        for name, result in results.items():
            ns = result["pm_non_storage"].program.num_transfers
            enola = result["enola"].program.num_transfers
            assert ns < enola, name

    def test_no_extra_two_qubit_gates(self, results):
        for name, result in results.items():
            counts = {
                result[s].program.num_two_qubit_gates
                for s in result.scenarios
            }
            assert len(counts) == 1, name

    def test_total_fidelity_in_unit_interval(self, results):
        for name, result in results.items():
            for scenario in result.scenarios:
                total = result[scenario].fidelity.total
                assert 0.0 <= total <= 1.0, (name, scenario)


class TestQasmPipeline:
    """Compile a circuit that went through QASM serialisation."""

    def test_qasm_round_trip_compiles_identically(self):
        qc = qaoa_regular(10, degree=3, seed=1)
        round_tripped = parse_qasm(to_qasm(qc), name=qc.name)
        direct = run_scenarios(
            qc, seed=0, enola_config=FAST, scenarios=("pm_with_storage",)
        )
        via_qasm = run_scenarios(
            round_tripped,
            seed=0,
            enola_config=FAST,
            scenarios=("pm_with_storage",),
        )
        a = direct["pm_with_storage"].program
        b = via_qasm["pm_with_storage"].program
        assert a.num_stages == b.num_stages
        assert a.total_move_distance() == pytest.approx(
            b.total_move_distance()
        )


class TestScalingTrend:
    @pytest.mark.slow
    def test_fidelity_gap_grows_with_size(self):
        """The with-storage advantage grows with qubit count (paper:
        'fidelity improvements increase significantly with the number of
        qubits')."""
        improvements = []
        for n in (8, 16, 24):
            result = run_scenarios(
                bernstein_vazirani(n, seed=0),
                seed=0,
                enola_config=FAST,
            )
            improvements.append(result.fidelity_improvement)
        assert improvements[0] < improvements[1] < improvements[2]

    @pytest.mark.slow
    def test_multi_aod_monotone_speedup(self):
        qc = qaoa_regular(16, degree=3, seed=0)
        times = []
        for num_aods in (1, 2, 4):
            result = run_scenarios(
                qc,
                num_aods=num_aods,
                seed=0,
                scenarios=("pm_with_storage",),
            )
            times.append(
                result["pm_with_storage"].fidelity.execution_time
            )
        assert times[0] >= times[1] >= times[2]

    @pytest.mark.slow
    def test_transpiled_native_equivalence(self):
        qc = qft(10)
        native = transpile_to_native(qc)
        result = run_scenarios(
            native, seed=0, scenarios=("pm_with_storage",)
        )
        report = evaluate_program(result["pm_with_storage"].program)
        assert report.total > 0
