"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, parse_qasm, partition_into_blocks, to_qasm
from repro.core.continuous_router import ContinuousRouter
from repro.core.stage_scheduler import partition_stages
from repro.hardware import (
    Layout,
    Move,
    Zone,
    ZonedArchitecture,
    group_moves,
    moves_conflict,
)

ARCH = ZonedArchitecture(4, 4, 4, 8)
COMPUTE_SITES = list(ARCH.compute_sites)
ALL_SITES = list(ARCH.all_sites)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

sites = st.sampled_from(ALL_SITES)


@st.composite
def moves(draw, qubit=None):
    src = draw(sites)
    dst = draw(sites.filter(lambda s: s != src))
    q = qubit if qubit is not None else draw(st.integers(0, 63))
    return Move(q, src, dst)


@st.composite
def move_lists(draw, max_size=12):
    n = draw(st.integers(1, max_size))
    out = []
    for q in range(n):
        out.append(draw(moves(qubit=q)))
    return out


@st.composite
def random_native_circuits(draw):
    n = draw(st.integers(2, 8))
    qc = Circuit(n)
    length = draw(st.integers(1, 30))
    for _ in range(length):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            qc.h(draw(st.integers(0, n - 1)))
        elif kind == 1:
            qc.rz(draw(st.floats(0.01, 3.0)), draw(st.integers(0, n - 1)))
        else:
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1).filter(lambda x, a=a: x != a))
            qc.cz(a, b)
    return qc


@st.composite
def stage_pairs(draw, num_qubits):
    """Disjoint qubit pairs over ``num_qubits`` qubits."""
    qubits = list(range(num_qubits))
    rng = random.Random(draw(st.integers(0, 2**16)))
    rng.shuffle(qubits)
    num_pairs = draw(st.integers(0, num_qubits // 2))
    return [
        (qubits[2 * i], qubits[2 * i + 1]) for i in range(num_pairs)
    ]


# ---------------------------------------------------------------------------
# Conflict relation properties
# ---------------------------------------------------------------------------


class TestConflictProperties:
    @given(moves(qubit=0), moves(qubit=1))
    def test_symmetry(self, m1, m2):
        assert moves_conflict(m1, m2) == moves_conflict(m2, m1)

    @given(moves(qubit=0))
    def test_irreflexive(self, m):
        twin = Move(1, m.source, m.destination)
        assert not moves_conflict(m, twin)

    @given(moves(qubit=0), moves(qubit=1))
    def test_order_characterisation(self, m1, m2):
        """Conflict iff x-order or y-order (with ties) changes."""

        def sign(v):
            return (v > 1e-9) - (v < -1e-9)

        expected = sign(m1.source.x - m2.source.x) != sign(
            m1.destination.x - m2.destination.x
        ) or sign(m1.source.y - m2.source.y) != sign(
            m1.destination.y - m2.destination.y
        )
        assert moves_conflict(m1, m2) == expected


# ---------------------------------------------------------------------------
# Grouping properties
# ---------------------------------------------------------------------------


class TestGroupingProperties:
    @given(move_lists(), st.booleans())
    @settings(max_examples=60)
    def test_partition_is_exact(self, batch, aware):
        groups = group_moves(batch, distance_aware=aware)
        grouped = sorted(m.qubit for g in groups for m in g.moves)
        assert grouped == sorted(m.qubit for m in batch)

    @given(move_lists(), st.booleans())
    @settings(max_examples=60)
    def test_groups_internally_compatible(self, batch, aware):
        for group in group_moves(batch, distance_aware=aware):
            group.validate()

    @given(move_lists())
    @settings(max_examples=60)
    def test_greedy_first_fit_no_earlier_group_accepts(self, batch):
        """Each distance-sorted move really could not join an earlier group.

        Verified structurally: for groups produced greedily, the move with
        the largest distance in group k conflicts with at least one member
        of every earlier group (otherwise first-fit would have taken it).
        """
        groups = group_moves(batch, distance_aware=True)
        order = sorted(batch, key=lambda m: (m.distance, m.qubit))
        position = {m.qubit: i for i, g in enumerate(groups) for m in g.moves}
        seen: list[list[Move]] = [[] for _ in groups]
        for move in order:
            idx = position[move.qubit]
            for earlier in range(idx):
                assert any(
                    moves_conflict(move, member)
                    for member in seen[earlier]
                )
            seen[idx].append(move)


# ---------------------------------------------------------------------------
# Stage partition properties
# ---------------------------------------------------------------------------


class TestStagePartitionProperties:
    @given(random_native_circuits())
    @settings(max_examples=60)
    def test_partition_covers_all_gates_disjointly(self, qc):
        partition = partition_into_blocks(qc)
        for block in partition.blocks:
            stages = partition_stages(block)
            scheduled = [g for s in stages for g in s.gates]
            assert len(scheduled) == block.num_gates
            for stage in stages:
                stage.validate()

    @given(random_native_circuits())
    @settings(max_examples=60)
    def test_block_partition_preserves_gate_multiset(self, qc):
        partition = partition_into_blocks(qc)
        assert partition.num_two_qubit_gates == qc.num_two_qubit_gates
        assert partition.num_one_qubit_gates == qc.num_one_qubit_gates


# ---------------------------------------------------------------------------
# Router properties
# ---------------------------------------------------------------------------


class TestRouterProperties:
    @given(stage_pairs(8), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_with_storage_stage_realised(self, pairs, seed):
        layout = Layout.row_major(ARCH, 8, Zone.STORAGE)
        router = ContinuousRouter(ARCH, True, random.Random(seed))
        routed = router.route_stage(layout, pairs)
        layout.apply_moves(routed.moves)
        interacting = {q for p in pairs for q in p}
        for a, b in pairs:
            assert layout.site_of(a) == layout.site_of(b)
            assert layout.zone_of(a) is Zone.COMPUTE
        for q in layout.qubits:
            if q not in interacting:
                assert layout.zone_of(q) is Zone.STORAGE
                assert layout.occupants(layout.site_of(q)) == {q}

    @given(stage_pairs(8), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_non_storage_stage_realised(self, pairs, seed):
        layout = Layout.row_major(ARCH, 8, Zone.COMPUTE)
        router = ContinuousRouter(ARCH, False, random.Random(seed))
        routed = router.route_stage(layout, pairs)
        layout.apply_moves(routed.moves)
        pair_sets = {frozenset(p) for p in pairs}
        for site in layout.occupied_sites():
            tenants = layout.occupants(site)
            assert len(tenants) <= 2
            if len(tenants) == 2:
                assert frozenset(tenants) in pair_sets

    @given(
        st.lists(
            st.tuples(st.integers(0, 2**16), st.integers(0, 4)),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_random_multi_stage_walk(self, stage_seeds):
        """Consecutive routed stages never corrupt the layout."""
        layout = Layout.row_major(ARCH, 8, Zone.STORAGE)
        router = ContinuousRouter(ARCH, True, random.Random(1))
        for seed, num_pairs in stage_seeds:
            rng = random.Random(seed)
            qubits = list(range(8))
            rng.shuffle(qubits)
            pairs = [
                (qubits[2 * i], qubits[2 * i + 1])
                for i in range(num_pairs // 2 + 1)
                if 2 * i + 1 < len(qubits)
            ]
            routed = router.route_stage(layout, pairs)
            layout.apply_moves(routed.moves)
            layout.validate()
            for a, b in pairs:
                assert layout.site_of(a) == layout.site_of(b)


# ---------------------------------------------------------------------------
# QASM round-trip property
# ---------------------------------------------------------------------------


class TestQasmProperties:
    @given(random_native_circuits())
    @settings(max_examples=40)
    def test_round_trip(self, qc):
        parsed = parse_qasm(to_qasm(qc))
        assert parsed.num_qubits == qc.num_qubits
        assert [g.name for g in parsed.gates] == [g.name for g in qc.gates]
        assert [g.qubits for g in parsed.gates] == [
            g.qubits for g in qc.gates
        ]
