"""Unit tests for the Stage Scheduler (Sec. 4)."""

import pytest

from repro.circuits import Circuit, partition_into_blocks
from repro.circuits.generators import qaoa_regular, vqe_full_entanglement
from repro.core.stage_scheduler import (
    order_stages,
    partition_stages,
    schedule_block,
    transition_cost,
)


def block_of(circuit):
    return partition_into_blocks(circuit).blocks[0]


class TestPartitionStages:
    def test_disjoint_gates_one_stage(self):
        qc = Circuit(4)
        qc.cz(0, 1)
        qc.cz(2, 3)
        stages = partition_stages(block_of(qc))
        assert len(stages) == 1
        assert stages[0].num_gates == 2

    def test_chain_needs_two_stages(self):
        qc = Circuit(3)
        qc.cz(0, 1)
        qc.cz(1, 2)
        stages = partition_stages(block_of(qc))
        assert len(stages) == 2

    def test_star_needs_degree_stages(self):
        qc = Circuit(5)
        for leaf in range(1, 5):
            qc.cz(0, leaf)
        stages = partition_stages(block_of(qc))
        assert len(stages) == 4
        assert all(s.num_gates == 1 for s in stages)

    def test_every_gate_in_exactly_one_stage(self):
        qc = qaoa_regular(12, degree=3, seed=1)
        from repro.circuits import transpile_to_native

        block = block_of(transpile_to_native(qc))
        stages = partition_stages(block)
        scheduled = [g for s in stages for g in s.gates]
        assert sorted(map(str, scheduled)) == sorted(map(str, block.gates))

    def test_stages_are_disjoint(self):
        qc = vqe_full_entanglement(7, seed=0)
        stages = partition_stages(block_of(qc))
        for stage in stages:
            stage.validate()

    def test_dense_block_color_bound(self):
        """Greedy colouring of K_n's line graph needs < 2n-1 stages."""
        n = 8
        qc = vqe_full_entanglement(n, seed=0)
        stages = partition_stages(block_of(qc))
        assert n - 1 <= len(stages) <= 2 * n - 2

    def test_empty_block(self):
        from repro.circuits.blocks import CZBlock

        assert partition_stages(CZBlock(index=0)) == []

    def test_interacting_qubits(self):
        qc = Circuit(4)
        qc.cz(0, 1)
        qc.cz(2, 3)
        stages = partition_stages(block_of(qc))
        assert stages[0].interacting_qubits() == frozenset({0, 1, 2, 3})


class TestTransitionCost:
    def test_identical_sets_zero(self):
        q = frozenset({1, 2, 3})
        assert transition_cost(q, q, alpha=0.5) == 0

    def test_asymmetric_weighting(self):
        current = frozenset({1, 2})
        bigger = frozenset({1, 2, 3, 4})   # two move-outs
        smaller = frozenset()              # two move-ins
        alpha = 0.5
        assert transition_cost(current, bigger, alpha) == pytest.approx(1.0)
        assert transition_cost(current, smaller, alpha) == pytest.approx(2.0)

    def test_alpha_below_one_prefers_move_out(self):
        """alpha < 1 makes fetching qubits cheaper than retiring them."""
        current = frozenset({1, 2, 3, 4})
        fetch_two = frozenset({1, 2, 3, 4, 5, 6})
        retire_two = frozenset({1, 2})
        assert transition_cost(current, fetch_two, 0.5) < transition_cost(
            current, retire_two, 0.5
        )


class TestOrderStages:
    def test_first_stage_has_fewest_qubits(self):
        qc = Circuit(6)
        qc.cz(0, 1)  # stage A candidates
        qc.cz(2, 3)
        qc.cz(1, 2)  # overlapping gate forces another stage
        stages = partition_stages(block_of(qc))
        ordered = order_stages(stages, alpha=0.5)
        sizes = [len(s.interacting_qubits()) for s in ordered]
        assert sizes[0] == min(sizes)

    def test_permutation_preserved(self):
        qc = vqe_full_entanglement(6, seed=0)
        stages = partition_stages(block_of(qc))
        ordered = order_stages(stages, alpha=0.5)
        assert sorted(id(s) for s in ordered) == sorted(
            id(s) for s in stages
        )

    def test_greedy_minimises_local_cost(self):
        qc = vqe_full_entanglement(6, seed=0)
        stages = partition_stages(block_of(qc))
        ordered = order_stages(stages, alpha=0.5)
        for current, chosen in zip(ordered, ordered[1:]):
            # No stage later in the order would have been strictly better
            # at this point, accounting for the colour tie-break.
            rest = ordered[ordered.index(chosen):]
            costs = [
                transition_cost(
                    current.interacting_qubits(),
                    s.interacting_qubits(),
                    0.5,
                )
                for s in rest
            ]
            assert costs[0] == min(costs)

    def test_alpha_validated(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        stages = partition_stages(block_of(qc))
        with pytest.raises(ValueError):
            order_stages(stages, alpha=1.5)

    def test_single_stage_passthrough(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        stages = partition_stages(block_of(qc))
        assert order_stages(stages) == stages

    def test_deterministic(self):
        qc = qaoa_regular(10, degree=3, seed=4)
        from repro.circuits import transpile_to_native

        block = block_of(transpile_to_native(qc))
        a = [s.color for s in schedule_block(block)]
        b = [s.color for s in schedule_block(block)]
        assert a == b

    def test_schedule_block_no_reorder(self):
        qc = vqe_full_entanglement(6, seed=0)
        block = block_of(qc)
        plain = schedule_block(block, reorder=False)
        assert [s.color for s in plain] == sorted(s.color for s in plain)
