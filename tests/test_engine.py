"""Tests for the batch compilation engine (jobs, cache, fan-out)."""

import pytest

from repro.baselines import EnolaConfig
from repro.benchsuite import PAPER_ORDER, get_benchmark
from repro.circuits.generators import qaoa_regular
from repro.core import PowerMoveConfig
from repro.engine import (
    CompilationEngine,
    CompileJob,
    DiskCache,
    EngineError,
    JobError,
    ManifestError,
    MemoryCache,
    NullCache,
    effective_config,
    execute_job,
    job_cache_key,
    parse_manifest,
)
from repro.schedule.serialize import program_to_dict

#: Fast Enola knobs for whole-suite runs.
LIGHT_ENOLA = EnolaConfig(seed=0, mis_restarts=1, sa_iterations_per_qubit=0)


class TestCompileJob:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            CompileJob(scenario="warp", benchmark="BV-14")

    def test_exactly_one_workload(self):
        with pytest.raises(JobError, match="exactly one"):
            CompileJob(scenario="enola")
        with pytest.raises(JobError, match="exactly one"):
            CompileJob(
                scenario="enola",
                benchmark="BV-14",
                circuit=qaoa_regular(4, seed=0),
            )

    def test_needs_positive_aods(self):
        with pytest.raises(JobError, match="AOD"):
            CompileJob(scenario="enola", benchmark="BV-14", num_aods=0)

    def test_label_and_workload_name(self):
        job = CompileJob(
            scenario="pm_with_storage",
            benchmark="BV-14",
            num_aods=2,
            seed=7,
        )
        assert job.workload_name == "BV-14"
        assert job.label == "BV-14:pm_with_storage:aods2:seed7"

    def test_resolve_circuit_uses_job_seed(self):
        job = CompileJob(
            scenario="pm_with_storage", benchmark="QAOA-random-20", seed=3
        )
        expected = get_benchmark("QAOA-random-20").build(3)
        assert job.resolve_circuit().digest() == expected.digest()

    def test_effective_config_enola_default_derives_from_job(self):
        job = CompileJob(
            scenario="enola", benchmark="BV-14", seed=5, num_aods=3
        )
        config = effective_config(job)
        assert isinstance(config, EnolaConfig)
        assert config.seed == 5
        assert config.num_aods == 3

    def test_effective_config_enola_override_verbatim(self):
        job = CompileJob(
            scenario="enola",
            benchmark="BV-14",
            seed=5,
            enola_config=LIGHT_ENOLA,
        )
        assert effective_config(job) is LIGHT_ENOLA

    def test_effective_config_powermove_forces_scenario_fields(self):
        base = PowerMoveConfig(alpha=0.7, use_storage=True, seed=99)
        job = CompileJob(
            scenario="pm_non_storage",
            benchmark="BV-14",
            seed=2,
            num_aods=4,
            powermove_config=base,
        )
        config = effective_config(job)
        assert config.use_storage is False
        assert config.num_aods == 4
        assert config.seed == 2
        assert config.alpha == 0.7

    def test_execute_job_returns_artifact(self):
        job = CompileJob(scenario="pm_with_storage", benchmark="BV-14")
        artifact = execute_job(job)
        assert artifact["program"]["format"] == "repro-naprogram"
        assert artifact["compile_time"] > 0.0
        assert artifact["validated"] is True


class TestCacheKey:
    def _job(self, **overrides):
        fields = dict(scenario="pm_with_storage", benchmark="BV-14")
        fields.update(overrides)
        return CompileJob(**fields)

    def test_deterministic(self):
        assert job_cache_key(self._job()) == job_cache_key(self._job())

    def test_benchmark_and_explicit_circuit_agree(self):
        explicit = self._job(
            benchmark=None, circuit=get_benchmark("BV-14").build(0)
        )
        assert job_cache_key(self._job()) == job_cache_key(explicit)

    def test_sensitive_to_every_input(self):
        keys = {
            job_cache_key(job)
            for job in (
                self._job(),
                self._job(seed=1),
                self._job(scenario="pm_non_storage"),
                self._job(scenario="enola"),
                self._job(num_aods=2),
                self._job(benchmark="BV-50"),
                self._job(
                    powermove_config=PowerMoveConfig(alpha=0.3)
                ),
            )
        }
        assert len(keys) == 7

    def test_insensitive_to_validate_flag(self):
        assert job_cache_key(self._job()) == job_cache_key(
            self._job(validate=False)
        )


class TestCaches:
    def test_null_cache_always_misses(self):
        cache = NullCache()
        cache.put("k", {"x": 1})
        assert cache.get("k") is None
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_memory_cache_round_trip(self):
        cache = MemoryCache()
        assert cache.get("k") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_disk_cache_round_trip(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        assert cache.get("k") is None
        cache.put("k", {"x": [1, 2]})
        assert cache.get("k") == {"x": [1, 2]}
        fresh = DiskCache(str(tmp_path / "cache"))
        assert fresh.get("k") == {"x": [1, 2]}

    def test_disk_cache_ignores_corrupt_entries(self, tmp_path):
        directory = tmp_path / "cache"
        cache = DiskCache(str(directory))
        cache.put("k", {"x": 1})
        (directory / "k.json").write_text("{not json")
        assert cache.get("k") is None

    def test_disk_cache_leaves_no_temp_files(self, tmp_path):
        directory = tmp_path / "cache"
        cache = DiskCache(str(directory))
        cache.put("a", {"x": 1})
        cache.put("b", {"x": 2})
        assert sorted(p.name for p in directory.iterdir()) == [
            "a.json",
            "b.json",
        ]


class TestEngine:
    def _jobs(self, scenarios=("enola", "pm_with_storage")):
        return [
            CompileJob(
                scenario=scenario,
                benchmark=key,
                enola_config=LIGHT_ENOLA,
            )
            for key in ("BV-14", "QSIM-rand-0.3-10")
            for scenario in scenarios
        ]

    def test_results_in_submission_order(self):
        jobs = self._jobs()
        results = CompilationEngine().run(jobs)
        assert [r.job.label for r in results] == [j.label for j in jobs]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="worker"):
            CompilationEngine(workers=0)

    def test_cache_hits_on_second_run(self):
        cache = MemoryCache()
        engine = CompilationEngine(cache=cache)
        jobs = self._jobs()
        first = engine.run(jobs)
        second = engine.run(jobs)
        assert not any(r.cache_hit for r in first)
        assert all(r.cache_hit for r in second)
        assert cache.stats.misses == len(jobs)
        assert cache.stats.hits == len(jobs)
        for a, b in zip(first, second):
            assert program_to_dict(a.program) == program_to_dict(b.program)
            assert a.compile_time == b.compile_time

    def test_parallel_identical_to_serial(self):
        jobs = self._jobs()
        serial = CompilationEngine(workers=1).run(jobs)
        parallel = CompilationEngine(workers=3).run(jobs)
        for a, b in zip(serial, parallel):
            assert program_to_dict(a.program) == program_to_dict(b.program)
            assert a.fidelity.total == b.fidelity.total
            assert a.key == b.key

    def test_progress_events_stream(self):
        events = []
        engine = CompilationEngine(
            cache=MemoryCache(), workers=2, progress=events.append
        )
        jobs = self._jobs()
        engine.run(jobs)
        assert len(events) == len(jobs)
        assert {e.index for e in events} == set(range(len(jobs)))
        assert all(e.total == len(jobs) for e in events)
        assert not any(e.cache_hit for e in events)
        events.clear()
        engine.run(jobs)
        assert all(e.cache_hit for e in events)

    def test_failing_job_raises_engine_error(self, monkeypatch):
        import repro.engine.engine as engine_module

        def boom(job, circuit):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(
            engine_module, "execute_job_on_circuit", boom
        )
        engine = CompilationEngine()
        with pytest.raises(EngineError, match="BV-14.*kaboom"):
            engine.run(
                [CompileJob(scenario="pm_with_storage", benchmark="BV-14")]
            )

    def test_cache_hit_revalidates_unvalidated_artifacts(self):
        """A validate=True job re-checks a hit stored with validate=False,
        including the gate-multiset comparison against the source circuit,
        and persists the successful check back into the cache."""
        from repro.schedule.validator import ValidationError

        cache = MemoryCache()
        engine = CompilationEngine(cache=cache)
        unvalidated = CompileJob(
            scenario="pm_with_storage", benchmark="BV-14", validate=False
        )
        [cold] = engine.run([unvalidated])
        assert cache.get(cold.key)["validated"] is False
        validated = CompileJob(
            scenario="pm_with_storage", benchmark="BV-14", validate=True
        )
        [hit] = engine.run([validated])
        assert hit.cache_hit  # sane entry revalidates cleanly
        # The successful hit-path validation is written back, so the
        # next hit skips the re-check.
        assert cache.get(hit.key)["validated"] is True

        # Corrupt the cached program (drop a Rydberg stage so the
        # executed gate multiset no longer matches the circuit) and
        # reset the persisted flag: the re-check must now fire and fail.
        doc = cache.get(hit.key)
        doc["program"]["instructions"] = [
            entry
            for entry in doc["program"]["instructions"]
            if entry["kind"] != "rydberg"
        ]
        doc["validated"] = False
        cache.put(hit.key, doc)
        with pytest.raises(ValidationError):
            engine.run([validated])

    def test_disk_cache_shared_between_engines(self, tmp_path):
        jobs = self._jobs(scenarios=("pm_with_storage",))
        first = CompilationEngine(
            cache=DiskCache(str(tmp_path)), workers=2
        ).run(jobs)
        second = CompilationEngine(cache=DiskCache(str(tmp_path))).run(jobs)
        assert all(r.cache_hit for r in second)
        for a, b in zip(first, second):
            assert program_to_dict(a.program) == program_to_dict(b.program)


class TestManifest:
    def test_bare_list_shorthand(self):
        jobs = parse_manifest([{"benchmark": "BV-14"}])
        assert [j.scenario for j in jobs] == list(
            ("enola", "pm_non_storage", "pm_with_storage")
        )

    def test_star_expands_to_suite(self):
        jobs = parse_manifest(
            {"jobs": [{"benchmark": "*", "scenario": "pm_with_storage"}]}
        )
        assert [j.benchmark for j in jobs] == list(PAPER_ORDER)

    def test_defaults_apply_and_entries_override(self):
        jobs = parse_manifest(
            {
                "defaults": {"seed": 9, "scenarios": ["enola"]},
                "jobs": [
                    {"benchmark": "BV-14"},
                    {"benchmark": "VQE-30", "seed": 1},
                ],
            }
        )
        assert [j.seed for j in jobs] == [9, 1]
        assert all(j.scenario == "enola" for j in jobs)

    def test_config_overrides_parsed(self):
        [job] = parse_manifest(
            {
                "jobs": [
                    {
                        "benchmark": "BV-14",
                        "scenario": "enola",
                        "enola": {"mis_restarts": 2},
                        "powermove": {"alpha": 0.25},
                    }
                ]
            }
        )
        assert job.enola_config.mis_restarts == 2
        assert job.powermove_config.alpha == 0.25

    @pytest.mark.parametrize(
        "doc, message",
        [
            ("nope", "JSON object or list"),
            ({}, "needs a 'jobs' list"),
            ({"jobs": []}, "non-empty"),
            ({"jobs": ["x"]}, "must be an object"),
            ({"jobs": [{}]}, "needs a 'benchmark'"),
            ({"jobs": [{"benchmark": "NOPE-1"}]}, "unknown benchmark"),
            (
                {"jobs": [{"benchmark": "BV-14", "scenario": "warp"}]},
                "unknown scenario",
            ),
            (
                {"jobs": [{"benchmark": "BV-14", "typo": 1}]},
                "unknown keys",
            ),
            (
                {"jobs": [{"benchmark": "BV-14", "seed": "zero"}]},
                "must be an integer",
            ),
            (
                {
                    "jobs": [
                        {"benchmark": "BV-14", "enola": {"bogus": 1}}
                    ]
                },
                "bad 'enola' config",
            ),
            (
                {
                    "defaults": {"scenario": "enola"},
                    "jobs": [{"benchmark": "BV-14"}],
                },
                "use 'scenarios'",
            ),
            (
                {
                    "defaults": {"nun_aods": 4},
                    "jobs": [{"benchmark": "BV-14"}],
                },
                "defaults: unknown keys",
            ),
        ],
    )
    def test_malformed_manifests_rejected(self, doc, message):
        with pytest.raises(ManifestError, match=message):
            parse_manifest(doc)


class TestFullSuiteAcceptance:
    """ISSUE acceptance: full Table 2 suite, 4 workers, warm cache."""

    def test_parallel_suite_matches_serial_and_warm_cache_skips(
        self, tmp_path
    ):
        jobs = [
            CompileJob(
                scenario=scenario,
                benchmark=key,
                enola_config=LIGHT_ENOLA,
                validate=False,
            )
            for key in PAPER_ORDER
            for scenario in ("enola", "pm_non_storage", "pm_with_storage")
        ]
        cache = DiskCache(str(tmp_path / "cache"))
        parallel = CompilationEngine(cache=cache, workers=4).run(jobs)
        serial = CompilationEngine().run(jobs)

        assert len(parallel) == len(PAPER_ORDER) * 3
        for a, b in zip(parallel, serial):
            assert program_to_dict(a.program) == program_to_dict(b.program)
            assert a.fidelity.total == b.fidelity.total
            assert a.fidelity.execution_time == b.fidelity.execution_time

        # Warm-cache rerun: every compilation is skipped.
        warm_cache = DiskCache(str(tmp_path / "cache"))
        warm = CompilationEngine(cache=warm_cache, workers=4).run(jobs)
        assert all(r.cache_hit for r in warm)
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits == len(jobs)
        for a, b in zip(parallel, warm):
            assert program_to_dict(a.program) == program_to_dict(b.program)
