"""CLI tests for backend selection: ``repro backends``, ``--backend``
flags and backend-keyed batch manifests."""

import json

import pytest

from repro.cli import main
from repro.engine import (
    CompileJob,
    ManifestError,
    job_cache_key,
    parse_manifest,
)
from repro.pipeline import available_backends


@pytest.fixture
def backend_manifest(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(
        json.dumps(
            {
                "jobs": [
                    {
                        "benchmark": "BV-14",
                        "backend": "enola",
                        "enola": {
                            "mis_restarts": 1,
                            "sa_iterations_per_qubit": 0,
                        },
                    },
                    {"benchmark": "BV-14", "backend": "powermove"},
                ]
            }
        )
    )
    return str(path)


class TestBackendsCommand:
    def test_lists_every_backend_with_knobs(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in available_backends():
            assert name in out
        assert "config PowerMoveConfig" in out
        assert "passes:" in out
        assert "mis_schedule" in out


class TestBackendFlags:
    def test_bench_backend_selection(self, capsys):
        code = main(
            [
                "bench",
                "BV-14",
                "--backend",
                "powermove",
                "--backend",
                "powermove-nonstorage",
                "--sa-iterations",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "powermove-nonstorage" in out
        assert "fid=" in out

    def test_table3_ablation_backend(self, capsys):
        code = main(
            [
                "table3",
                "--keys",
                "BV-14",
                "--backend",
                "powermove-noreorder",
                "--mis-restarts",
                "1",
                "--sa-iterations",
                "0",
            ]
        )
        assert code == 0
        assert "Table 3" in capsys.readouterr().out

    def test_fig7_backend(self, capsys):
        code = main(
            [
                "fig7",
                "--keys",
                "BV-14",
                "--aod-counts",
                "1",
                "--backend",
                "powermove-nointra",
            ]
        )
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_fig7_rejects_backend_without_aod_knob(self):
        from repro.analysis import figure7_series

        with pytest.raises(ValueError, match="num_aods"):
            figure7_series(
                keys=("BV-14",), aod_counts=(1, 2), backend="atomique"
            )


class TestBackendManifests:
    def test_batch_with_backend_jobs(self, backend_manifest, capsys):
        assert main(["batch", backend_manifest]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["num_jobs"] == 2
        by_scenario = {r["scenario"]: r for r in doc["results"]}
        assert set(by_scenario) == {"enola", "powermove"}
        # Same circuit, different backend -> different cache keys.
        assert (
            by_scenario["enola"]["cache_key"]
            != by_scenario["powermove"]["cache_key"]
        )

    def test_backend_key_matches_legacy_scenario_key(self):
        via_backend = job_cache_key(
            CompileJob(backend="powermove", benchmark="BV-14")
        )
        via_scenario = job_cache_key(
            CompileJob(scenario="pm_with_storage", benchmark="BV-14")
        )
        assert via_backend == via_scenario

    def test_legacy_manifest_without_backend_still_parses(self):
        jobs = parse_manifest([{"benchmark": "BV-14"}])
        assert [job.scenario for job in jobs] == [
            "enola",
            "pm_non_storage",
            "pm_with_storage",
        ]
        assert jobs[2].backend_name == "powermove"

    def test_backends_default_applies(self):
        jobs = parse_manifest(
            {
                "defaults": {"backends": ["atomique"]},
                "jobs": [{"benchmark": "BV-14"}],
            }
        )
        assert [job.backend for job in jobs] == ["atomique"]

    def test_entry_scenario_overrides_backend_default(self):
        jobs = parse_manifest(
            {
                "defaults": {"backends": ["atomique"]},
                "jobs": [{"benchmark": "BV-14", "scenario": "enola"}],
            }
        )
        assert [job.scenario for job in jobs] == ["enola"]

    def test_atomique_config_override(self):
        [job] = parse_manifest(
            [
                {
                    "benchmark": "BV-14",
                    "backend": "atomique",
                    "atomique": {"sa_iterations_per_qubit": 0},
                }
            ]
        )
        assert job.atomique_config.sa_iterations_per_qubit == 0

    @pytest.mark.parametrize(
        "doc,message",
        [
            (
                [{"benchmark": "BV-14", "backend": "warp"}],
                "unknown backend",
            ),
            (
                [
                    {
                        "benchmark": "BV-14",
                        "scenario": "enola",
                        "backend": "enola",
                    }
                ],
                "only one of",
            ),
            (
                [{"benchmark": "BV-14", "backends": "enola"}],
                "'backends' must be a list",
            ),
            (
                {
                    "defaults": {"backend": "enola"},
                    "jobs": [{"benchmark": "BV-14"}],
                },
                "use 'backends'",
            ),
            (
                {
                    "defaults": {
                        "backends": ["enola"],
                        "scenarios": ["enola"],
                    },
                    "jobs": [{"benchmark": "BV-14"}],
                },
                "not both",
            ),
        ],
    )
    def test_malformed_backend_manifests(self, doc, message):
        with pytest.raises(ManifestError, match=message):
            parse_manifest(doc)
