"""Pass-level memoization (engine/passmemo.py).

Covers the chained-key contract (prefix reuse under a version bump,
per-circuit/config separation), bit-identical restored compiles across
memory and disk cache backends, the stats surfaced in
``CompilationResult.stats["pass_cache"]``, and fail-soft behaviour on
corrupt snapshot entries.
"""

import pytest

from repro.circuits.generators import qaoa_regular
from repro.engine import DiskCache, MemoryCache
from repro.engine.passmemo import _decode_snapshot
from repro.pipeline.registry import create_compiler, get_backend
from repro.schedule.serialize import program_digest


def compile_with(backend, cache, seed=0, num_qubits=10):
    circuit = qaoa_regular(num_qubits, degree=3, seed=seed)
    spec = get_backend(backend)
    config = spec.effective_config(None, seed, 1)
    compiler = create_compiler(backend, config)
    return compiler.compile(circuit, pass_cache=cache)


def num_passes(backend):
    return len(get_backend(backend).pipeline.pass_names)


@pytest.mark.parametrize("backend", ["powermove", "enola"])
class TestMemoRoundTrip:
    def test_cold_run_stores_every_pass(self, backend):
        cache = MemoryCache()
        uncached = compile_with(backend, None)
        cold = compile_with(backend, cache)
        total = num_passes(backend)
        assert cold.stats["pass_cache"] == {
            "hits": 0,
            "misses": total,
            "stores": total,
        }
        assert program_digest(cold.program) == program_digest(
            uncached.program
        )
        assert len(cache) == total

    def test_warm_run_hits_every_pass(self, backend):
        cache = MemoryCache()
        cold = compile_with(backend, cache)
        warm = compile_with(backend, cache)
        total = num_passes(backend)
        assert warm.stats["pass_cache"] == {
            "hits": total,
            "misses": 0,
            "stores": 0,
        }
        assert program_digest(warm.program) == program_digest(
            cold.program
        )
        # Skipped passes still report (zero) timings, in order.
        names = get_backend(backend).pipeline.pass_names
        assert tuple(warm.stats["pass_timings"]) == names
        assert all(
            t == 0.0 for t in warm.stats["pass_timings"].values()
        )

    def test_different_circuit_shares_nothing(self, backend):
        cache = MemoryCache()
        compile_with(backend, cache, seed=0)
        other = compile_with(backend, cache, seed=1)
        assert other.stats["pass_cache"]["hits"] == 0
        assert len(cache) == 2 * num_passes(backend)


class TestPrefixReuse:
    def test_version_bump_invalidates_suffix_only(self, monkeypatch):
        backend = "powermove"
        cache = MemoryCache()
        cold = compile_with(backend, cache)
        pipeline = get_backend(backend).pipeline
        total = len(pipeline.pass_names)
        # "Edit" the last pass: bump its snapshot version.  Every
        # upstream snapshot stays valid; only the tail re-runs.
        last = list(pipeline)[-1]
        monkeypatch.setattr(type(last), "version", 2, raising=False)
        bumped = compile_with(backend, cache)
        assert bumped.stats["pass_cache"] == {
            "hits": total - 1,
            "misses": 1,
            "stores": 1,
        }
        assert program_digest(bumped.program) == program_digest(
            cold.program
        )

    def test_disk_cache_survives_reopen(self, tmp_path):
        backend = "enola"
        cold = compile_with(backend, DiskCache(str(tmp_path)))
        warm = compile_with(backend, DiskCache(str(tmp_path)))
        total = num_passes(backend)
        assert warm.stats["pass_cache"]["hits"] == total
        assert warm.stats["pass_cache"]["stores"] == 0
        assert program_digest(warm.program) == program_digest(
            cold.program
        )


class TestMemoGuards:
    def test_explicit_architecture_disables_memo(self):
        backend = "powermove"
        cache = MemoryCache()
        base = compile_with(backend, cache)
        circuit = qaoa_regular(10, degree=3, seed=0)
        spec = get_backend(backend)
        compiler = create_compiler(
            backend, spec.effective_config(None, 0, 1)
        )
        pinned = compiler.compile(
            circuit,
            architecture=base.program.architecture,
            pass_cache=cache,
        )
        assert "pass_cache" not in pinned.stats

    def test_corrupt_snapshots_read_as_miss(self):
        assert _decode_snapshot("nonsense") is None
        assert _decode_snapshot({"memo_schema": 999, "state": ""}) is None
        assert (
            _decode_snapshot({"memo_schema": 1, "state": "!!bad"}) is None
        )
        assert _decode_snapshot({"memo_schema": 1}) is None

    def test_poisoned_cache_entries_fall_back_to_execution(self):
        backend = "enola"
        cache = MemoryCache()
        cold = compile_with(backend, cache)
        for key in list(cache._entries):
            cache.put(key, {"memo_schema": 999, "state": "junk"})
        recovered = compile_with(backend, cache)
        assert recovered.stats["pass_cache"]["hits"] == 0
        assert program_digest(recovered.program) == program_digest(
            cold.program
        )
