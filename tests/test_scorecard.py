"""Tests for the reproduction scorecard."""

import pytest

from repro.analysis import run_benchmark, run_scorecard, score_row
from repro.analysis.scorecard import CHECK_NAMES, Scorecard
from repro.baselines import EnolaConfig
from repro.benchsuite import SUITE

FAST = EnolaConfig(seed=0, mis_restarts=3, sa_iterations_per_qubit=30)


@pytest.fixture(scope="module")
def bv14_result():
    return run_benchmark(SUITE["BV-14"], seed=0, enola_config=FAST)


class TestScoreRow:
    def test_all_checks_present(self, bv14_result):
        score = score_row(bv14_result)
        assert set(score.checks) == set(CHECK_NAMES)
        assert score.total == len(CHECK_NAMES)

    def test_bv14_passes_all_shapes(self, bv14_result):
        score = score_row(bv14_result)
        assert score.passed == score.total, score.checks

    def test_magnitude_tolerance_zero_can_fail(self, bv14_result):
        score = score_row(
            bv14_result, magnitude_tolerance_decades=1e-6
        )
        assert not score.checks["fidelity_magnitude"]

    def test_unknown_key_rejected(self, bv14_result):
        bv14_result.key = "NOT-A-ROW"
        try:
            with pytest.raises(KeyError):
                score_row(bv14_result)
        finally:
            bv14_result.key = "BV-14"


class TestScorecard:
    def test_run_scorecard_small(self):
        card = run_scorecard(
            keys=("BV-14", "QSIM-rand-0.3-10"), enola_config=FAST
        )
        assert len(card.rows) == 2
        assert 0.0 <= card.score <= 1.0
        # Deterministic shape checks must all pass on these rows; the
        # compile-time direction is wall-clock and can flip on tiny
        # instances under the deliberately lightweight test Enola config,
        # so it is excluded here (the paper-scale scorecard covers it).
        failing = [
            pair for pair in card.failing() if pair[1] != "tcomp_direction"
        ]
        assert failing == []

    def test_render(self):
        card = run_scorecard(keys=("BV-14",), enola_config=FAST)
        text = card.render()
        assert "Reproduction scorecard" in text
        assert "score:" in text
        assert "pass" in text

    def test_empty_scorecard_score(self):
        assert Scorecard().score == 0.0
