"""Paper-scale smoke tests (marked slow): the largest Table 3 rows
compile, validate, and keep the headline shapes at full size."""

import pytest

from repro.analysis import run_benchmark
from repro.baselines import EnolaConfig
from repro.benchsuite import SUITE

FULL = EnolaConfig(seed=0, mis_restarts=5, sa_iterations_per_qubit=150)


@pytest.mark.slow
@pytest.mark.parametrize(
    "key",
    ["QAOA-regular3-100", "QAOA-regular4-80", "QFT-29", "BV-70", "VQE-50",
     "QSIM-rand-0.3-40"],
)
def test_largest_rows_full_scale(key):
    result = run_benchmark(
        SUITE[key], seed=0, enola_config=FULL, validate=True
    )
    enola = result["enola"]
    ns = result["pm_non_storage"]
    ws = result["pm_with_storage"]
    # The paper's three headline shapes at full size.
    assert ws.fidelity.total > enola.fidelity.total
    assert ws.fidelity.excitation == 1.0
    assert ns.fidelity.execution_time < enola.fidelity.execution_time


@pytest.mark.slow
def test_enola_merged_moves_sensitivity():
    """The stronger-baseline mode: merging shrinks Enola's T_exe but the
    PowerMove ordering survives."""
    from repro.analysis import run_scenarios

    circuit = SUITE["QAOA-regular3-50"].build(seed=0)
    plain = run_scenarios(
        circuit,
        enola_config=EnolaConfig(seed=0, merge_moves=False),
        scenarios=("enola",),
    )
    merged = run_scenarios(
        circuit,
        enola_config=EnolaConfig(seed=0, merge_moves=True),
        scenarios=("enola", "pm_with_storage"),
    )
    t_plain = plain["enola"].fidelity.execution_time
    t_merged = merged["enola"].fidelity.execution_time
    assert t_merged < t_plain
    # Even against the stronger baseline, storage still wins on fidelity.
    assert (
        merged["pm_with_storage"].fidelity.total
        > merged["enola"].fidelity.total
    )
