"""Tests for the command-line interface."""

import json

import pytest

from repro.circuits import to_qasm
from repro.circuits.generators import qaoa_regular
from repro.cli import build_parser, main


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "circuit.qasm"
    path.write_text(to_qasm(qaoa_regular(8, degree=3, seed=1)))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self, qasm_file):
        args = build_parser().parse_args(["compile", qasm_file])
        assert args.storage is True
        assert args.aods == 1

    def test_no_storage_flag(self, qasm_file):
        args = build_parser().parse_args(
            ["compile", qasm_file, "--no-storage"]
        )
        assert args.storage is False


class TestCompileCommand:
    def test_basic_compile(self, qasm_file, capsys):
        assert main(["compile", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "fidelity" in out
        assert "rydberg stages" in out

    def test_compile_no_storage(self, qasm_file, capsys):
        assert main(["compile", qasm_file, "--no-storage"]) == 0
        assert "non-storage" in capsys.readouterr().out

    def test_compile_writes_json(self, qasm_file, tmp_path, capsys):
        out_path = str(tmp_path / "program.json")
        assert main(["compile", qasm_file, "--output", out_path]) == 0
        with open(out_path) as handle:
            doc = json.load(handle)
        assert doc["format"] == "repro-naprogram"

    def test_compile_trace(self, qasm_file, capsys):
        assert main(["compile", qasm_file, "--trace", "5"]) == 0
        out = capsys.readouterr().out
        assert "initial layout" in out


class TestBenchCommand:
    def test_bench_row(self, capsys):
        code = main(
            [
                "bench",
                "QSIM-rand-0.3-10",
                "--mis-restarts",
                "2",
                "--sa-iterations",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fidelity" in out and "T_exe" in out

    def test_bench_unknown_key(self):
        with pytest.raises(KeyError):
            main(["bench", "NOPE-1"])


class TestTableCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "QAOA-regular3" in capsys.readouterr().out

    def test_table3_subset(self, capsys):
        code = main(
            [
                "table3",
                "--keys",
                "BV-14",
                "--mis-restarts",
                "2",
                "--sa-iterations",
                "10",
            ]
        )
        assert code == 0
        assert "BV-14" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--keys", "BV-14", "--aod-counts", "1", "2"]) == 0
        assert "T_exe" in capsys.readouterr().out

    def test_verify_command(self, qasm_file, capsys):
        assert main(["verify", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "overlap 1.0" in out

    def test_profile_command(self, qasm_file, capsys):
        assert main(["profile", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "Workload atlas" in out
        assert "dominated" in out or "mixed" in out

    def test_scorecard(self, capsys):
        code = main(
            [
                "scorecard",
                "--keys",
                "BV-14",
                "--mis-restarts",
                "3",
                "--sa-iterations",
                "30",
                "--min-score",
                "0.9",
            ]
        )
        assert code == 0
        assert "score:" in capsys.readouterr().out


@pytest.fixture
def manifest_file(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(
        json.dumps(
            {
                "defaults": {
                    "enola": {
                        "mis_restarts": 1,
                        "sa_iterations_per_qubit": 0,
                    }
                },
                "jobs": [
                    {"benchmark": "BV-14"},
                    {
                        "benchmark": "QSIM-rand-0.3-10",
                        "scenario": "pm_with_storage",
                        "num_aods": 2,
                    },
                ],
            }
        )
    )
    return str(path)


class TestBatchCommand:
    def test_batch_stdout_json(self, manifest_file, capsys):
        assert main(["batch", manifest_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-batch-results"
        assert doc["num_jobs"] == 4
        assert doc["cache_hits"] == 0
        assert doc["cache_misses"] == 4
        scenarios = {(r["benchmark"], r["scenario"]) for r in doc["results"]}
        assert ("BV-14", "enola") in scenarios
        assert ("QSIM-rand-0.3-10", "pm_with_storage") in scenarios
        for row in doc["results"]:
            assert 0.0 < row["fidelity"] <= 1.0
            assert row["execution_time_us"] > 0.0
            assert len(row["cache_key"]) == 64

    def test_batch_warm_cache_skips_all(
        self, manifest_file, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        out_path = str(tmp_path / "results.json")
        assert (
            main(
                [
                    "batch",
                    manifest_file,
                    "--cache-dir",
                    cache_dir,
                    "--output",
                    out_path,
                ]
            )
            == 0
        )
        assert "4 compiled" in capsys.readouterr().out
        with open(out_path) as handle:
            cold = json.load(handle)
        assert cold["cache_misses"] == 4

        assert (
            main(
                [
                    "batch",
                    manifest_file,
                    "--cache-dir",
                    cache_dir,
                    "--output",
                    out_path,
                ]
            )
            == 0
        )
        assert "4 cache hits" in capsys.readouterr().out
        with open(out_path) as handle:
            warm = json.load(handle)
        assert warm["cache_misses"] == 0
        assert warm["cache_hits"] == 4
        for a, b in zip(cold["results"], warm["results"]):
            assert a["fidelity"] == b["fidelity"]
            assert a["execution_time_us"] == b["execution_time_us"]
            assert a["cache_key"] == b["cache_key"]
            assert b["cache_hit"] is True

    def test_batch_parallel_matches_serial(
        self, manifest_file, capsys
    ):
        assert main(["batch", manifest_file]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["batch", manifest_file, "--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        for a, b in zip(serial["results"], parallel["results"]):
            assert a["fidelity"] == b["fidelity"]
            assert a["execution_time_us"] == b["execution_time_us"]
            assert a["num_stages"] == b["num_stages"]

    def test_batch_progress_lines_on_stderr(self, manifest_file, capsys):
        assert main(["batch", manifest_file, "--progress"]) == 0
        captured = capsys.readouterr()
        assert captured.err.count("[") >= 4
        assert "BV-14:enola" in captured.err

    def test_batch_missing_manifest(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error: manifest not found" in capsys.readouterr().err

    def test_batch_invalid_json_manifest(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["batch", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_batch_malformed_manifest_names_entry(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"jobs": [{"benchmark": "NOPE-1"}]})
        )
        assert main(["batch", str(path)]) == 2
        err = capsys.readouterr().err
        assert "jobs[0]" in err and "NOPE-1" in err

    def test_bench_workers_flag(self, capsys):
        code = main(
            [
                "bench",
                "QSIM-rand-0.3-10",
                "--mis-restarts",
                "2",
                "--sa-iterations",
                "10",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        assert "fidelity" in capsys.readouterr().out


class TestStreamShardMerge:
    def test_stream_emits_ndjson_records(self, manifest_file, capsys):
        assert main(["batch", manifest_file, "--stream"]) == 0
        captured = capsys.readouterr()
        records = [
            json.loads(line) for line in captured.out.splitlines() if line
        ]
        assert len(records) == 4
        assert {r["index"] for r in records} == {0, 1, 2, 3}
        assert all(r["status"] == "ok" for r in records)
        assert all(len(r["cache_key"]) == 64 for r in records)
        assert "batch:" in captured.err  # summary moves to stderr

    def test_sharded_runs_merge_to_unsharded(
        self, manifest_file, tmp_path, capsys
    ):
        from repro.engine import docs_equal_modulo_timing

        s1 = str(tmp_path / "s1.json")
        s2 = str(tmp_path / "s2.json")
        merged_path = str(tmp_path / "merged.json")
        full_path = str(tmp_path / "full.json")
        assert main(
            ["batch", manifest_file, "--shard", "1/2", "--output", s1]
        ) == 0
        assert main(
            ["batch", manifest_file, "--shard", "2/2", "--output", s2]
        ) == 0
        assert main(["merge", s1, s2, "--output", merged_path]) == 0
        assert main(["batch", manifest_file, "--output", full_path]) == 0
        capsys.readouterr()

        with open(s1) as handle:
            shard_doc = json.load(handle)
        assert shard_doc["shard"] == {"index": 1, "count": 2}
        assert shard_doc["num_jobs"] == 2
        assert shard_doc["total_jobs"] == 4
        with open(merged_path) as handle:
            merged = json.load(handle)
        with open(full_path) as handle:
            full = json.load(handle)
        assert merged["shard"] is None
        assert docs_equal_modulo_timing(merged, full)

    def test_bad_shard_spec_rejected(self, manifest_file, capsys):
        assert main(["batch", manifest_file, "--shard", "5/2"]) == 2
        assert "shard" in capsys.readouterr().err

    def test_empty_shard_writes_valid_document(
        self, manifest_file, tmp_path, capsys
    ):
        # 4 manifest jobs, 9 shards: shard 9/9 selects nothing but must
        # still produce a mergeable empty document (fixed-lane CI).
        out = str(tmp_path / "empty.json")
        assert main(
            ["batch", manifest_file, "--shard", "9/9", "--output", out]
        ) == 0
        assert "selects none" in capsys.readouterr().err
        with open(out) as handle:
            doc = json.load(handle)
        assert doc["num_jobs"] == 0
        assert doc["results"] == []
        assert doc["total_jobs"] == 4
        assert doc["shard"] == {"index": 9, "count": 9}

    def test_merge_with_failures_exits_one(
        self, manifest_file, tmp_path, capsys
    ):
        full_path = str(tmp_path / "full.json")
        assert main(["batch", manifest_file, "--output", full_path]) == 0
        with open(full_path) as handle:
            doc = json.load(handle)
        record = doc["results"][0]
        record["status"] = "error"
        record["error"] = {"type": "RuntimeError", "message": "boom"}
        doc["num_failed"] = 1
        with open(full_path, "w") as handle:
            json.dump(doc, handle)
        capsys.readouterr()
        assert main(["merge", full_path]) == 1

    def test_merge_missing_shard_fails(
        self, manifest_file, tmp_path, capsys
    ):
        s1 = str(tmp_path / "s1.json")
        assert main(
            ["batch", manifest_file, "--shard", "1/2", "--output", s1]
        ) == 0
        capsys.readouterr()
        assert main(["merge", s1]) == 2
        assert "missing" in capsys.readouterr().err

    def test_merge_unreadable_file_fails(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        assert main(["merge", str(path)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_on_error_flag_parses(self, manifest_file):
        args = build_parser().parse_args(
            ["batch", manifest_file, "--on-error", "collect"]
        )
        assert args.on_error == "collect"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["batch", manifest_file, "--on-error", "ignore"]
            )

    def test_collect_run_without_failures_exits_zero(
        self, manifest_file, capsys
    ):
        assert main(
            ["batch", manifest_file, "--on-error", "collect"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["on_error"] == "collect"
        assert doc["num_failed"] == 0
        assert doc["version"] == 2
        assert len(doc["manifest_digest"]) == 64
        assert [r["index"] for r in doc["results"]] == [0, 1, 2, 3]
