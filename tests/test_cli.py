"""Tests for the command-line interface."""

import json

import pytest

from repro.circuits import to_qasm
from repro.circuits.generators import qaoa_regular
from repro.cli import build_parser, main


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "circuit.qasm"
    path.write_text(to_qasm(qaoa_regular(8, degree=3, seed=1)))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self, qasm_file):
        args = build_parser().parse_args(["compile", qasm_file])
        assert args.storage is True
        assert args.aods == 1

    def test_no_storage_flag(self, qasm_file):
        args = build_parser().parse_args(
            ["compile", qasm_file, "--no-storage"]
        )
        assert args.storage is False


class TestCompileCommand:
    def test_basic_compile(self, qasm_file, capsys):
        assert main(["compile", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "fidelity" in out
        assert "rydberg stages" in out

    def test_compile_no_storage(self, qasm_file, capsys):
        assert main(["compile", qasm_file, "--no-storage"]) == 0
        assert "non-storage" in capsys.readouterr().out

    def test_compile_writes_json(self, qasm_file, tmp_path, capsys):
        out_path = str(tmp_path / "program.json")
        assert main(["compile", qasm_file, "--output", out_path]) == 0
        with open(out_path) as handle:
            doc = json.load(handle)
        assert doc["format"] == "repro-naprogram"

    def test_compile_trace(self, qasm_file, capsys):
        assert main(["compile", qasm_file, "--trace", "5"]) == 0
        out = capsys.readouterr().out
        assert "initial layout" in out


class TestBenchCommand:
    def test_bench_row(self, capsys):
        code = main(
            [
                "bench",
                "QSIM-rand-0.3-10",
                "--mis-restarts",
                "2",
                "--sa-iterations",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fidelity" in out and "T_exe" in out

    def test_bench_unknown_key(self):
        with pytest.raises(KeyError):
            main(["bench", "NOPE-1"])


class TestTableCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "QAOA-regular3" in capsys.readouterr().out

    def test_table3_subset(self, capsys):
        code = main(
            [
                "table3",
                "--keys",
                "BV-14",
                "--mis-restarts",
                "2",
                "--sa-iterations",
                "10",
            ]
        )
        assert code == 0
        assert "BV-14" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--keys", "BV-14", "--aod-counts", "1", "2"]) == 0
        assert "T_exe" in capsys.readouterr().out

    def test_verify_command(self, qasm_file, capsys):
        assert main(["verify", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "overlap 1.0" in out

    def test_profile_command(self, qasm_file, capsys):
        assert main(["profile", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "Workload atlas" in out
        assert "dominated" in out or "mixed" in out

    def test_scorecard(self, capsys):
        code = main(
            [
                "scorecard",
                "--keys",
                "BV-14",
                "--mis-restarts",
                "3",
                "--sa-iterations",
                "30",
                "--min-score",
                "0.9",
            ]
        )
        assert code == 0
        assert "score:" in capsys.readouterr().out
