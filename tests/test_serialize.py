"""Tests for program JSON serialisation."""

import json

import pytest

from repro.circuits.generators import bernstein_vazirani, qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import evaluate_program
from repro.schedule import validate_program
from repro.schedule.serialize import (
    FORMAT_NAME,
    SerializationError,
    dump_program,
    load_program,
    program_from_dict,
    program_to_dict,
)


@pytest.fixture
def program():
    circuit = qaoa_regular(8, degree=3, seed=1)
    return PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(circuit).program


class TestRoundTrip:
    def test_dict_round_trip_structure(self, program):
        doc = program_to_dict(program)
        rebuilt = program_from_dict(doc)
        assert rebuilt.num_stages == program.num_stages
        assert rebuilt.num_transfers == program.num_transfers
        assert rebuilt.num_coll_moves == program.num_coll_moves
        assert rebuilt.initial_layout == program.initial_layout
        assert rebuilt.compiler_name == program.compiler_name
        assert rebuilt.metadata == program.metadata

    def test_round_trip_validates(self, program):
        rebuilt = program_from_dict(program_to_dict(program))
        validate_program(rebuilt)

    def test_round_trip_same_fidelity(self, program):
        original = evaluate_program(program)
        rebuilt = evaluate_program(program_from_dict(program_to_dict(program)))
        assert rebuilt.total == pytest.approx(original.total)
        assert rebuilt.execution_time == pytest.approx(
            original.execution_time
        )

    def test_document_is_json_serialisable(self, program):
        text = json.dumps(program_to_dict(program))
        assert FORMAT_NAME in text

    def test_file_round_trip(self, program, tmp_path):
        path = str(tmp_path / "program.json")
        dump_program(program, path)
        rebuilt = load_program(path)
        assert rebuilt.num_stages == program.num_stages

    def test_storage_moves_survive(self, tmp_path):
        circuit = bernstein_vazirani(8, seed=0)
        program = (
            PowerMoveCompiler(PowerMoveConfig(use_storage=True))
            .compile(circuit)
            .program
        )
        rebuilt = program_from_dict(program_to_dict(program))
        original = evaluate_program(program)
        round_tripped = evaluate_program(rebuilt)
        assert round_tripped.excitation == original.excitation == 1.0


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError, match="not a"):
            program_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, program):
        doc = program_to_dict(program)
        doc["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            program_from_dict(doc)

    def test_unknown_instruction_kind_rejected(self, program):
        doc = program_to_dict(program)
        doc["instructions"].append({"kind": "teleport"})
        with pytest.raises(SerializationError, match="kind"):
            program_from_dict(doc)
