"""Tests for program JSON serialisation."""

import json

import pytest

from repro.circuits.generators import bernstein_vazirani, qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import evaluate_program
from repro.schedule import validate_program
from repro.schedule.serialize import (
    FORMAT_NAME,
    SerializationError,
    dump_program,
    load_program,
    program_from_dict,
    program_to_dict,
)


@pytest.fixture
def program():
    circuit = qaoa_regular(8, degree=3, seed=1)
    return PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(circuit).program


class TestRoundTrip:
    def test_dict_round_trip_structure(self, program):
        doc = program_to_dict(program)
        rebuilt = program_from_dict(doc)
        assert rebuilt.num_stages == program.num_stages
        assert rebuilt.num_transfers == program.num_transfers
        assert rebuilt.num_coll_moves == program.num_coll_moves
        assert rebuilt.initial_layout == program.initial_layout
        assert rebuilt.compiler_name == program.compiler_name
        assert rebuilt.metadata == program.metadata

    def test_round_trip_validates(self, program):
        rebuilt = program_from_dict(program_to_dict(program))
        validate_program(rebuilt)

    def test_round_trip_same_fidelity(self, program):
        original = evaluate_program(program)
        rebuilt = evaluate_program(program_from_dict(program_to_dict(program)))
        assert rebuilt.total == pytest.approx(original.total)
        assert rebuilt.execution_time == pytest.approx(
            original.execution_time
        )

    def test_document_is_json_serialisable(self, program):
        text = json.dumps(program_to_dict(program))
        assert FORMAT_NAME in text

    def test_file_round_trip(self, program, tmp_path):
        path = str(tmp_path / "program.json")
        dump_program(program, path)
        rebuilt = load_program(path)
        assert rebuilt.num_stages == program.num_stages

    def test_storage_moves_survive(self, tmp_path):
        circuit = bernstein_vazirani(8, seed=0)
        program = (
            PowerMoveCompiler(PowerMoveConfig(use_storage=True))
            .compile(circuit)
            .program
        )
        rebuilt = program_from_dict(program_to_dict(program))
        original = evaluate_program(program)
        round_tripped = evaluate_program(rebuilt)
        assert round_tripped.excitation == original.excitation == 1.0


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError, match="not a"):
            program_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, program):
        doc = program_to_dict(program)
        doc["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            program_from_dict(doc)

    def test_unknown_instruction_kind_rejected(self, program):
        doc = program_to_dict(program)
        doc["instructions"].append({"kind": "teleport"})
        with pytest.raises(SerializationError, match="kind"):
            program_from_dict(doc)


def build_golden_program():
    """A deterministic hand-built program covering every instruction type.

    Contains a :class:`OneQubitLayer`, a multi-AOD :class:`MoveBatch`
    (two CollMoves, including inter-zone moves), a second single-move
    batch and a :class:`RydbergStage` -- the full cache-relevant
    instruction vocabulary of ``schedule/serialize.py``.
    """
    from repro.circuits.gates import Gate
    from repro.hardware.geometry import Zone, ZonedArchitecture
    from repro.hardware.layout import Layout
    from repro.hardware.moves import CollMove, Move
    from repro.schedule.instructions import (
        MoveBatch,
        OneQubitLayer,
        RydbergStage,
    )
    from repro.schedule.program import NAProgram

    arch = ZonedArchitecture(3, 3, 3, 6, num_aods=2)
    site = arch.site
    layout = Layout(
        arch,
        {
            0: site(Zone.STORAGE, 0, 0),
            1: site(Zone.STORAGE, 1, 0),
            2: site(Zone.STORAGE, 2, 0),
            3: site(Zone.STORAGE, 0, 1),
        },
    )
    instructions = [
        OneQubitLayer(
            gates=[
                Gate("h", (0,), ()),
                Gate("rz", (1,), (0.5,)),
                Gate("h", (2,), ()),
            ]
        ),
        MoveBatch(
            coll_moves=[
                CollMove(
                    moves=[
                        Move(0, site(Zone.STORAGE, 0, 0),
                             site(Zone.COMPUTE, 0, 0)),
                        Move(1, site(Zone.STORAGE, 1, 0),
                             site(Zone.COMPUTE, 1, 0)),
                    ],
                    aod_index=0,
                ),
                CollMove(
                    moves=[
                        Move(2, site(Zone.STORAGE, 2, 0),
                             site(Zone.COMPUTE, 2, 0)),
                    ],
                    aod_index=1,
                ),
            ]
        ),
        RydbergStage(gates=[Gate("cz", (0, 1), ()), ]),
        MoveBatch(
            coll_moves=[
                CollMove(
                    moves=[
                        Move(0, site(Zone.COMPUTE, 0, 0),
                             site(Zone.STORAGE, 0, 0)),
                    ],
                    aod_index=0,
                ),
            ]
        ),
        RydbergStage(gates=[Gate("rzz", (1, 2), (0.25,))]),
    ]
    return NAProgram(
        architecture=arch,
        initial_layout=layout,
        instructions=instructions,
        source_name="golden",
        compiler_name="hand-built",
        metadata={"num_stages": 2, "note": "golden fixture"},
    )


GOLDEN_PATH = __file__.rsplit("/", 1)[0] + "/golden/naprogram_v1.json"


class TestGoldenFile:
    """Golden-file coverage of every instruction type.

    The checked-in golden document pins the on-disk schema: if
    serialization ever changes shape, these tests fail and force a
    deliberate format-version bump (which also invalidates the engine's
    content-addressed cache).
    """

    def test_golden_file_matches_serializer(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert program_to_dict(build_golden_program()) == golden

    def test_golden_round_trip_is_dict_identity(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert program_to_dict(program_from_dict(golden)) == golden

    def test_golden_covers_every_instruction_kind(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        kinds = {entry["kind"] for entry in golden["instructions"]}
        assert kinds == {"layer_1q", "move_batch", "rydberg"}
        batches = [
            e for e in golden["instructions"] if e["kind"] == "move_batch"
        ]
        assert any(len(b["coll_moves"]) > 1 for b in batches), (
            "golden fixture must exercise multi-AOD coll-move batches"
        )

    def test_golden_program_structure_survives(self):
        rebuilt = program_from_dict(
            program_to_dict(build_golden_program())
        )
        assert rebuilt.num_stages == 2
        assert rebuilt.num_coll_moves == 3
        assert rebuilt.num_transfers == 8
        assert rebuilt.architecture.num_aods == 2
        assert rebuilt.metadata["note"] == "golden fixture"

    def test_golden_file_round_trips_through_disk(self, tmp_path):
        path = str(tmp_path / "golden_copy.json")
        dump_program(build_golden_program(), path)
        rebuilt = load_program(path)
        assert program_to_dict(rebuilt) == program_to_dict(
            build_golden_program()
        )

    def test_compiled_programs_round_trip_every_kind(self, program):
        """Dict-level identity holds for real compiler output too."""
        doc = program_to_dict(program)
        assert program_to_dict(program_from_dict(doc)) == doc
