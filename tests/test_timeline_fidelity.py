"""Unit tests for the timeline simulator and the Eq. (1) fidelity model."""

import math

import pytest

from repro.circuits.gates import Gate
from repro.fidelity import (
    COMPONENT_NAMES,
    FidelityModel,
    evaluate_program,
    simulate_timeline,
)
from repro.hardware import (
    DEFAULT_PARAMS,
    CollMove,
    Layout,
    Move,
    Zone,
    ZonedArchitecture,
)
from repro.schedule import MoveBatch, NAProgram, OneQubitLayer, RydbergStage


@pytest.fixture
def arch():
    return ZonedArchitecture(3, 3, 3, 6)


def build_program(arch, instructions, n=2, zone=Zone.COMPUTE):
    return NAProgram(
        architecture=arch,
        initial_layout=Layout.row_major(arch, n, zone),
        instructions=instructions,
    )


class TestTimelineOneQubitLayer:
    def test_gate_time_not_idle(self, arch):
        layer = OneQubitLayer([Gate("h", (0,)), Gate("h", (1,))])
        timeline = simulate_timeline(build_program(arch, [layer]))
        assert timeline.total_time == pytest.approx(1e-6)
        assert timeline.exposure[0] == pytest.approx(0.0)
        assert timeline.num_one_qubit_gates == 2

    def test_ungated_compute_qubit_exposed(self, arch):
        layer = OneQubitLayer([Gate("h", (0,))])
        timeline = simulate_timeline(build_program(arch, [layer], n=2))
        assert timeline.exposure[1] == pytest.approx(1e-6)

    def test_storage_qubit_protected(self, arch):
        layer = OneQubitLayer([Gate("h", (0,))])
        program = build_program(arch, [layer], n=2, zone=Zone.STORAGE)
        timeline = simulate_timeline(program)
        assert timeline.exposure[1] == pytest.approx(0.0)
        assert timeline.storage_dwell[1] == pytest.approx(1e-6)


class TestTimelineRydberg:
    def test_idle_counting_compute(self, arch):
        stage = RydbergStage([Gate("cz", (0, 1))])
        timeline = simulate_timeline(
            build_program(
                arch,
                [
                    MoveBatch(
                        coll_moves=[
                            CollMove(
                                moves=[
                                    Move(
                                        1,
                                        arch.site(Zone.COMPUTE, 1, 0),
                                        arch.site(Zone.COMPUTE, 0, 0),
                                    )
                                ]
                            )
                        ]
                    ),
                    stage,
                ],
                n=4,
            )
        )
        # Qubits 2 and 3 idle in compute during one excitation.
        assert timeline.idle_excitations == 2
        assert timeline.idle_per_stage == [2]
        assert timeline.num_stages == 1
        assert timeline.num_two_qubit_gates == 1

    def test_storage_qubits_not_excited(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        mapping = {
            0: s0,
            1: s0,
            2: arch.site(Zone.STORAGE, 0, 0),
            3: arch.site(Zone.STORAGE, 1, 0),
        }
        program = NAProgram(
            architecture=arch,
            initial_layout=Layout(arch, mapping),
            instructions=[RydbergStage([Gate("cz", (0, 1))])],
        )
        timeline = simulate_timeline(program)
        assert timeline.idle_excitations == 0
        assert timeline.storage_dwell[2] > 0


class TestTimelineMoves:
    def test_movers_and_bystanders_exposed(self, arch):
        s1 = arch.site(Zone.COMPUTE, 1, 0)
        d1 = arch.site(Zone.COMPUTE, 2, 2)
        batch = MoveBatch(coll_moves=[CollMove(moves=[Move(1, s1, d1)])])
        program = build_program(arch, [batch], n=3)
        timeline = simulate_timeline(program)
        duration = batch.duration(DEFAULT_PARAMS)
        assert timeline.total_time == pytest.approx(duration)
        for q in range(3):
            assert timeline.exposure[q] == pytest.approx(duration)
        assert timeline.num_transfers == 2
        assert timeline.move_time == pytest.approx(duration)

    def test_storage_resident_protected_during_move(self, arch):
        mapping = {
            0: arch.site(Zone.COMPUTE, 0, 0),
            1: arch.site(Zone.STORAGE, 0, 0),
        }
        batch = MoveBatch(
            coll_moves=[
                CollMove(
                    moves=[
                        Move(
                            0,
                            arch.site(Zone.COMPUTE, 0, 0),
                            arch.site(Zone.COMPUTE, 1, 0),
                        )
                    ]
                )
            ]
        )
        program = NAProgram(
            architecture=arch,
            initial_layout=Layout(arch, mapping),
            instructions=[batch],
        )
        timeline = simulate_timeline(program)
        assert timeline.exposure[1] == 0.0
        assert timeline.storage_dwell[1] == pytest.approx(
            batch.duration(DEFAULT_PARAMS)
        )


class TestFidelityModel:
    def test_two_qubit_component(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        program = NAProgram(
            architecture=arch,
            initial_layout=Layout(arch, {0: s0, 1: s0}),
            instructions=[RydbergStage([Gate("cz", (0, 1))])],
        )
        report = evaluate_program(program)
        assert report.two_qubit == pytest.approx(0.995)

    def test_excitation_component(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        mapping = {0: s0, 1: s0, 2: arch.site(Zone.COMPUTE, 1, 1)}
        program = NAProgram(
            architecture=arch,
            initial_layout=Layout(arch, mapping),
            instructions=[RydbergStage([Gate("cz", (0, 1))])],
        )
        report = evaluate_program(program)
        assert report.excitation == pytest.approx(0.9975)

    def test_transfer_component(self, arch):
        batch = MoveBatch(
            coll_moves=[
                CollMove(
                    moves=[
                        Move(
                            0,
                            arch.site(Zone.COMPUTE, 0, 0),
                            arch.site(Zone.COMPUTE, 1, 1),
                        )
                    ]
                )
            ]
        )
        program = build_program(arch, [batch], n=1)
        report = evaluate_program(program)
        assert report.transfer == pytest.approx(0.999**2)

    def test_decoherence_component(self, arch):
        batch = MoveBatch(
            coll_moves=[
                CollMove(
                    moves=[
                        Move(
                            0,
                            arch.site(Zone.COMPUTE, 0, 0),
                            arch.site(Zone.COMPUTE, 2, 2),
                        )
                    ]
                )
            ]
        )
        program = build_program(arch, [batch], n=1)
        report = evaluate_program(program)
        expected = 1.0 - batch.duration(DEFAULT_PARAMS) / 1.5
        assert report.decoherence == pytest.approx(expected)

    def test_total_is_product_without_1q(self, arch):
        program = build_program(
            arch,
            [OneQubitLayer([Gate("h", (0,))])],
            n=1,
        )
        report = evaluate_program(program)
        assert report.total == pytest.approx(
            report.two_qubit
            * report.excitation
            * report.transfer
            * report.decoherence
        )
        assert report.total_with_1q == pytest.approx(
            report.total * report.one_qubit
        )
        assert report.one_qubit == pytest.approx(0.9999)

    def test_breakdown_names(self, arch):
        program = build_program(arch, [], n=1)
        report = evaluate_program(program)
        breakdown = report.infidelity_breakdown()
        assert set(breakdown) == set(COMPONENT_NAMES)
        assert all(v == pytest.approx(0.0) for v in breakdown.values())

    def test_log_breakdown_additivity(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        mapping = {0: s0, 1: s0, 2: arch.site(Zone.COMPUTE, 1, 1)}
        program = NAProgram(
            architecture=arch,
            initial_layout=Layout(arch, mapping),
            instructions=[RydbergStage([Gate("cz", (0, 1))])],
        )
        report = evaluate_program(program)
        logs = report.log_breakdown()
        assert sum(logs.values()) == pytest.approx(
            -math.log10(report.total)
        )

    def test_decoherence_clamped_at_zero(self, arch):
        from repro.fidelity.timeline import ExecutionTimeline

        timeline = ExecutionTimeline(exposure={0: 99.0})
        report = FidelityModel().from_timeline(timeline)
        assert report.decoherence == 0.0
        assert report.total == 0.0

    def test_component_lookup_and_errors(self, arch):
        program = build_program(arch, [], n=1)
        report = evaluate_program(program)
        assert report.component("transfer") == report.transfer
        with pytest.raises(KeyError):
            report.component("bogus")

    def test_execution_time_units(self, arch):
        layer = OneQubitLayer([Gate("h", (0,))])
        report = evaluate_program(build_program(arch, [layer], n=1))
        assert report.execution_time_us == pytest.approx(1.0)
