"""Regenerate ``backend_digests_v1.json`` — the 37-digest reference pin.

Run from the repo root against a tree whose default compilation path is
*known good* (historically: the pre-strategy-registry code):

    PYTHONPATH=src python tests/golden/gen_backend_digests.py

The fixture freezes one program digest per (backend, workload, seed)
cell so refactors of the pipeline internals (strategy registries,
architecture catalog, ...) can prove the default path is bit-identical.
Never regenerate it to paper over a digest change — that is the failure
the pin exists to catch.  Regenerate only when an intentional
algorithm change ships (and bump CACHE_SCHEMA_VERSION alongside).
"""

from __future__ import annotations

import json
import os

from repro.baselines import AtomiqueConfig, EnolaConfig
from repro.circuits.generators import (
    bernstein_vazirani,
    qaoa_regular,
    qft,
    vqe_linear_entanglement,
)
from repro.pipeline import REGISTRY, create_compiler, get_backend
from repro.schedule.serialize import program_digest

#: Cheap knobs per config family so the whole matrix compiles in
#: seconds.  These are *explicit overrides*: they enter the digest's
#: identity, so the pin is reproducible regardless of default changes.
FAST_OVERRIDES = {
    "enola": EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10),
    "enola-naive-storage": EnolaConfig(
        seed=0, mis_restarts=2, sa_iterations_per_qubit=10
    ),
    "enola-windowed": EnolaConfig(
        seed=0, mis_restarts=2, sa_iterations_per_qubit=10, window_size=4
    ),
    "atomique": AtomiqueConfig(seed=0, sa_iterations_per_qubit=10),
}

WORKLOADS = {
    "qaoa8": lambda: qaoa_regular(8, degree=3, seed=1),
    "bv8": lambda: bernstein_vazirani(8, seed=0),
    "qft6": lambda: qft(6),
    "vqe8": lambda: vqe_linear_entanglement(8, seed=2),
}

#: The 9 pre-refactor backends; pinned explicitly (not REGISTRY.names())
#: so later registry additions cannot silently grow the fixture.
BACKENDS = (
    "powermove",
    "powermove-nonstorage",
    "powermove-noreorder",
    "powermove-fifo-grouping",
    "powermove-nointra",
    "enola",
    "enola-naive-storage",
    "enola-windowed",
    "atomique",
)

#: 9 backends x 4 workloads = 36 cells, plus one seed-1 cell = 37.
EXTRA_CELLS = (("powermove", "qaoa8", 1),)


def cells():
    for backend in BACKENDS:
        for workload in WORKLOADS:
            yield backend, workload, 0
    yield from EXTRA_CELLS


def digest_for(backend: str, workload: str, seed: int) -> str:
    spec = get_backend(backend)
    override = FAST_OVERRIDES.get(backend)
    if override is not None and seed != override.seed:
        from dataclasses import replace

        override = replace(override, seed=seed)
    config = spec.effective_config(override, seed, 1)
    compiler = create_compiler(backend, config)
    result = compiler.compile(WORKLOADS[workload]())
    return program_digest(result.program)


def main() -> None:
    entries = [
        {
            "backend": backend,
            "workload": workload,
            "seed": seed,
            "digest": digest_for(backend, workload, seed),
        }
        for backend, workload, seed in cells()
    ]
    assert len(entries) == 37, len(entries)
    out = os.path.join(os.path.dirname(__file__), "backend_digests_v1.json")
    with open(out, "w") as handle:
        json.dump({"version": 1, "digests": entries}, handle, indent=1)
        handle.write("\n")
    print(f"wrote {len(entries)} digests to {out}")
    assert REGISTRY is not None


if __name__ == "__main__":
    main()
