"""Unit tests for NAProgram and the structural validator."""

import pytest

from repro.circuits import Circuit
from repro.circuits.gates import Gate
from repro.hardware import (
    CollMove,
    Layout,
    Move,
    Zone,
    ZonedArchitecture,
)
from repro.schedule import (
    MoveBatch,
    NAProgram,
    OneQubitLayer,
    RydbergStage,
    ValidationError,
    validate_program,
)


@pytest.fixture
def arch():
    return ZonedArchitecture(3, 3, 3, 6)


def make_pair_program(arch):
    """Qubits 0,1 start apart; 1 moves to 0; CZ fires."""
    s0 = arch.site(Zone.COMPUTE, 0, 0)
    s1 = arch.site(Zone.COMPUTE, 2, 0)
    layout = Layout(arch, {0: s0, 1: s1})
    batch = MoveBatch(coll_moves=[CollMove(moves=[Move(1, s1, s0)])])
    stage = RydbergStage(gates=[Gate("cz", (0, 1))])
    return NAProgram(
        architecture=arch,
        initial_layout=layout,
        instructions=[batch, stage],
    )


class TestProgramAggregates:
    def test_counts(self, arch):
        program = make_pair_program(arch)
        assert program.num_stages == 1
        assert program.num_two_qubit_gates == 1
        assert program.num_transfers == 2
        assert program.num_coll_moves == 1
        assert program.num_single_moves == 1

    def test_final_layout(self, arch):
        program = make_pair_program(arch)
        final = program.final_layout()
        assert final.site_of(1) == final.site_of(0)

    def test_total_move_distance(self, arch):
        program = make_pair_program(arch)
        assert program.total_move_distance() == pytest.approx(30e-6)

    def test_instruction_filters(self, arch):
        program = make_pair_program(arch)
        program.instructions.insert(0, OneQubitLayer([Gate("h", (0,))]))
        assert len(program.one_qubit_layers) == 1
        assert len(program.move_batches) == 1
        assert len(program.rydberg_stages) == 1


class TestValidatorAccepts:
    def test_valid_program_passes(self, arch):
        report = validate_program(make_pair_program(arch))
        assert report.ok

    def test_source_circuit_match(self, arch):
        program = make_pair_program(arch)
        circuit = Circuit(2)
        circuit.cz(0, 1)
        report = validate_program(program, source_circuit=circuit)
        assert report.ok


class TestValidatorRejects:
    def test_pair_not_colocated(self, arch):
        program = make_pair_program(arch)
        program.instructions.pop(0)  # drop the move
        with pytest.raises(ValidationError, match="not co-located"):
            validate_program(program)

    def test_gate_in_storage(self, arch):
        site = arch.site(Zone.STORAGE, 0, 0)
        layout = Layout(arch, {0: site, 1: site})
        program = NAProgram(
            architecture=arch,
            initial_layout=layout,
            instructions=[RydbergStage(gates=[Gate("cz", (0, 1))])],
        )
        with pytest.raises(ValidationError):
            validate_program(program)

    def test_clustering_detected(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        s1 = arch.site(Zone.COMPUTE, 1, 0)
        layout = Layout(arch, {0: s0, 1: s0, 2: s1, 3: s1})
        # Stage pairs (0,1) but 2,3 share a site without a gate: cluster.
        program = NAProgram(
            architecture=arch,
            initial_layout=layout,
            instructions=[RydbergStage(gates=[Gate("cz", (0, 1))])],
        )
        with pytest.raises(ValidationError, match="clustering"):
            validate_program(program)

    def test_overlapping_stage_gates(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        layout = Layout(arch, {0: s0, 1: s0})
        program = NAProgram(
            architecture=arch,
            initial_layout=layout,
            instructions=[
                RydbergStage(
                    gates=[Gate("cz", (0, 1)), Gate("cz", (1, 0))]
                )
            ],
        )
        with pytest.raises(ValidationError, match="overlap"):
            validate_program(program)

    def test_aod_conflict_inside_collmove(self, arch):
        s_a = arch.site(Zone.COMPUTE, 0, 0)
        s_b = arch.site(Zone.COMPUTE, 2, 0)
        d_a = arch.site(Zone.COMPUTE, 2, 1)
        d_b = arch.site(Zone.COMPUTE, 0, 1)
        layout = Layout(arch, {0: s_a, 1: s_b})
        crossing = CollMove(moves=[Move(0, s_a, d_a), Move(1, s_b, d_b)])
        program = NAProgram(
            architecture=arch,
            initial_layout=layout,
            instructions=[MoveBatch(coll_moves=[crossing])],
        )
        with pytest.raises(ValidationError, match="AOD order"):
            validate_program(program)

    def test_too_many_collmoves_for_aods(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        s1 = arch.site(Zone.COMPUTE, 1, 0)
        d0 = arch.site(Zone.COMPUTE, 0, 1)
        d1 = arch.site(Zone.COMPUTE, 1, 1)
        layout = Layout(arch, {0: s0, 1: s1})
        batch = MoveBatch(
            coll_moves=[
                CollMove(moves=[Move(0, s0, d0)], aod_index=0),
                CollMove(moves=[Move(1, s1, d1)], aod_index=1),
            ]
        )
        program = NAProgram(
            architecture=arch, initial_layout=layout, instructions=[batch]
        )
        with pytest.raises(ValidationError, match="exceed"):
            validate_program(program)

    def test_source_mismatch_detected(self, arch):
        program = make_pair_program(arch)
        wrong = Circuit(2)
        wrong.cz(0, 1)
        wrong.cz(0, 1)
        with pytest.raises(ValidationError, match="multiset"):
            validate_program(program, source_circuit=wrong)

    def test_move_source_mismatch(self, arch):
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        other = arch.site(Zone.COMPUTE, 2, 2)
        dest = arch.site(Zone.COMPUTE, 1, 1)
        layout = Layout(arch, {0: s0})
        batch = MoveBatch(coll_moves=[CollMove(moves=[Move(0, other, dest)])])
        program = NAProgram(
            architecture=arch, initial_layout=layout, instructions=[batch]
        )
        with pytest.raises(ValidationError, match="replay failed"):
            validate_program(program)

    def test_two_qubit_gate_in_1q_layer(self, arch):
        layout = Layout.row_major(arch, 2)
        program = NAProgram(
            architecture=arch,
            initial_layout=layout,
            instructions=[OneQubitLayer([Gate("cz", (0, 1))])],
        )
        with pytest.raises(ValidationError, match="1Q layer"):
            validate_program(program)

    def test_report_mode_no_raise(self, arch):
        program = make_pair_program(arch)
        program.instructions.pop(0)
        report = validate_program(program, raise_on_error=False)
        assert not report.ok
        assert report.errors
