"""The traffic generator: percentile math and end-to-end runs."""

import json

import pytest

from repro.service import ServiceServer, run_loadgen
from repro.service.loadgen import (
    LOADGEN_FORMAT,
    LOADGEN_VERSION,
    percentile,
)


class TestPercentile:
    def test_empty_and_singleton(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0

    def test_interpolates_linearly(self):
        values = [0.0, 1.0, 2.0, 3.0]
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 3.0
        assert percentile(values, 0.5) == pytest.approx(1.5)
        assert percentile(values, 0.25) == pytest.approx(0.75)

    def test_is_monotone_in_the_fraction(self):
        values = sorted([0.4, 0.1, 2.5, 0.9, 1.7, 0.2])
        fractions = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
        results = [percentile(values, f) for f in fractions]
        assert results == sorted(results)
        assert results[-1] == max(values)


@pytest.fixture
def server(tmp_path):
    server = ServiceServer(
        str(tmp_path / "queue"), "127.0.0.1:0", workers=2
    ).start()
    yield server
    server.stop(drain=False)


class TestRunLoadgen:
    def test_report_shape_and_latency_ordering(self, server):
        progress_calls = []
        report = run_loadgen(
            server.address,
            clients=3,
            rate_hz=30.0,
            duration_s=1.0,
            benchmarks=("BV-14",),
            backend="powermove",
            distinct_seeds=2,
            seed=7,
            progress=lambda count, latency: progress_calls.append(
                (count, latency)
            ),
        )
        assert report["format"] == LOADGEN_FORMAT
        assert report["version"] == LOADGEN_VERSION
        assert report["address"] == server.address
        assert report["submitted"] >= 1
        assert report["completed"] == report["submitted"]
        assert report["failed"] == 0
        assert report["num_errors"] == 0
        assert report["throughput_jobs_per_s"] > 0
        latency = report["latency_s"]
        assert 0 < latency["p50"] <= latency["p95"]
        assert latency["p95"] <= latency["p99"] <= latency["max"]
        assert latency["mean"] <= latency["max"]
        assert len(progress_calls) == report["submitted"]

    def test_validates_its_arguments(self):
        with pytest.raises(ValueError, match="at least one client"):
            run_loadgen("127.0.0.1:1", clients=0)
        with pytest.raises(ValueError, match="at least one benchmark"):
            run_loadgen("127.0.0.1:1", benchmarks=())

    def test_unreachable_service_counts_errors_not_crashes(self):
        report = run_loadgen(
            "127.0.0.1:1",
            clients=1,
            rate_hz=50.0,
            duration_s=0.2,
        )
        assert report["completed"] == 0
        assert report["num_errors"] >= 1
        assert report["errors"]

    def test_cli_writes_report_and_exits_zero(
        self, server, tmp_path, capsys
    ):
        from repro.cli import main

        out_path = tmp_path / "latency.json"
        code = main(
            [
                "loadgen",
                "--connect",
                server.address,
                "--clients",
                "2",
                "--rate",
                "20",
                "--duration",
                "1.0",
                "--benchmark",
                "BV-14",
                "--seed",
                "3",
                "--output",
                str(out_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(out_path.read_text())
        assert report["format"] == LOADGEN_FORMAT
        assert report["completed"] == report["submitted"] >= 1
        assert "p95" in captured.err


class TestPrometheusParsing:
    def test_flattens_series_and_skips_noise(self):
        from repro.service.loadgen import parse_prometheus_text

        text = "\n".join(
            [
                "# HELP repro_jobs_total Completed jobs.",
                "# TYPE repro_jobs_total counter",
                'repro_jobs_total{backend="powermove"} 7',
                "repro_queue_depth 2",
                "malformed-line-without-value nope",
                "",
                "repro_wait_seconds_sum 1.25",
            ]
        )
        series = parse_prometheus_text(text)
        assert series == {
            'repro_jobs_total{backend="powermove"}': 7.0,
            "repro_queue_depth": 2.0,
            "repro_wait_seconds_sum": 1.25,
        }


class TestScrape:
    def test_report_embeds_metrics_samples(self, tmp_path):
        server = ServiceServer(
            str(tmp_path / "queue"),
            "127.0.0.1:0",
            workers=2,
            metrics_address="127.0.0.1:0",
        ).start()
        try:
            report = run_loadgen(
                server.address,
                clients=2,
                rate_hz=30.0,
                duration_s=0.5,
                benchmarks=("BV-14",),
                distinct_seeds=1,
                scrape_url=server.metrics_url,
                scrape_interval_s=0.1,
            )
            scrape = report["scrape"]
            assert scrape["url"] == server.metrics_url
            assert not scrape["errors"]
            assert scrape["num_samples"] == len(scrape["samples"]) >= 1
            # The final sample (taken after the burst drained) agrees
            # with the report's own completion count.
            final = scrape["samples"][-1]["series"]
            completed = sum(
                value
                for name, value in final.items()
                if name.startswith("repro_jobs_completed_total")
            )
            assert completed == report["completed"]
            assert final["repro_submissions_total"] == (
                report["submitted"]
            )
        finally:
            server.stop(drain=False)

    def test_scrape_errors_are_capped_not_fatal(self):
        from repro.service.loadgen import _MetricsScraper

        scraper = _MetricsScraper(
            "http://127.0.0.1:1/metrics", interval_s=0.05
        ).start()
        import time as _time

        _time.sleep(0.3)
        block = scraper.finish()
        assert block["num_samples"] == 0
        assert 1 <= len(block["errors"]) <= 10
