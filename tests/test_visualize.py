"""Tests for the ASCII visualiser."""

import pytest

from repro.analysis.visualize import (
    describe_instruction,
    program_trace,
    render_layout,
    render_moves,
)
from repro.circuits.gates import Gate
from repro.circuits.generators import qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.hardware import Layout, Move, Zone, ZonedArchitecture
from repro.schedule import MoveBatch, OneQubitLayer, RydbergStage
from repro.hardware.moves import CollMove


@pytest.fixture
def arch():
    return ZonedArchitecture(3, 3, 3, 6)


class TestRenderLayout:
    def test_empty_sites_are_dots(self, arch):
        text = render_layout(Layout(arch, {}))
        assert "." in text
        assert "[compute]" in text and "[storage]" in text

    def test_single_qubit_letter(self, arch):
        layout = Layout(arch, {0: arch.site(Zone.COMPUTE, 0, 0)})
        assert "a" in render_layout(layout)

    def test_pair_rendered_as_hash(self, arch):
        site = arch.site(Zone.COMPUTE, 1, 1)
        layout = Layout(arch, {0: site, 1: site})
        assert "#" in render_layout(layout)

    def test_compute_zone_rows_top_down(self, arch):
        # Row 2 (highest y) must appear on the first compute line.
        layout = Layout(arch, {0: arch.site(Zone.COMPUTE, 0, 2)})
        lines = render_layout(layout).splitlines()
        assert lines[1].startswith("a")

    def test_storageless_machine(self):
        arch = ZonedArchitecture(2, 2)
        text = render_layout(Layout.row_major(arch, 2))
        assert "[storage]" not in text


class TestDescribeInstruction:
    def test_layer(self):
        text = describe_instruction(OneQubitLayer([Gate("h", (0,))]))
        assert "1Q layer" in text

    def test_rydberg(self):
        text = describe_instruction(RydbergStage([Gate("cz", (0, 1))]))
        assert "rydberg" in text and "(0,1)" in text

    def test_move_batch(self, arch):
        move = Move(
            0, arch.site(Zone.COMPUTE, 0, 0), arch.site(Zone.COMPUTE, 1, 0)
        )
        text = describe_instruction(
            MoveBatch(coll_moves=[CollMove(moves=[move])])
        )
        assert "AOD0" in text and "q0" in text


class TestProgramTrace:
    def test_full_trace(self):
        circuit = qaoa_regular(8, degree=3, seed=1)
        program = (
            PowerMoveCompiler(PowerMoveConfig(seed=0))
            .compile(circuit)
            .program
        )
        trace = program_trace(program)
        assert "initial layout" in trace
        assert "rydberg stage" in trace
        assert trace.count("[compute]") >= program.num_stages

    def test_truncation(self):
        circuit = qaoa_regular(8, degree=3, seed=1)
        program = (
            PowerMoveCompiler(PowerMoveConfig(seed=0))
            .compile(circuit)
            .program
        )
        trace = program_trace(program, max_instructions=2)
        assert "more instructions" in trace


class TestRenderMoves:
    def test_table(self, arch):
        move = Move(
            3, arch.site(Zone.COMPUTE, 0, 0), arch.site(Zone.COMPUTE, 2, 0)
        )
        text = render_moves([move])
        assert "q3" in text and "30.0" in text
