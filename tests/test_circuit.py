"""Unit tests for the circuit container."""

import pytest

from repro.circuits import Barrier, Circuit, CircuitError, Measure, concat
from repro.circuits.gates import Gate


class TestConstruction:
    def test_needs_positive_width(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_name_round_trip(self):
        qc = Circuit(2, name="demo")
        assert qc.name == "demo"
        qc.name = "other"
        assert qc.name == "other"

    def test_len_counts_operations(self):
        qc = Circuit(2)
        qc.h(0)
        qc.cz(0, 1)
        qc.barrier()
        assert len(qc) == 3


class TestAppend:
    def test_gate_out_of_range_rejected(self):
        qc = Circuit(2)
        with pytest.raises(CircuitError):
            qc.cz(0, 2)

    def test_measure_out_of_range_rejected(self):
        qc = Circuit(2)
        with pytest.raises(CircuitError):
            qc.append(Measure(5, 0))

    def test_barrier_specific_qubits(self):
        qc = Circuit(3)
        qc.barrier(0, 2)
        barrier = qc.operations[0]
        assert isinstance(barrier, Barrier)
        assert barrier.qubits == (0, 2)

    def test_add_gate_returns_gate(self):
        qc = Circuit(2)
        gate = qc.add_gate("rz", (1,), 0.7)
        assert isinstance(gate, Gate)
        assert gate.params == (0.7,)

    def test_extend(self):
        qc = Circuit(2)
        qc.extend([Gate("h", (0,)), Gate("cz", (0, 1))])
        assert qc.num_gates == 2

    def test_measure_all(self):
        qc = Circuit(3)
        qc.measure_all()
        measures = [op for op in qc if isinstance(op, Measure)]
        assert [m.qubit for m in measures] == [0, 1, 2]


class TestCounts:
    def test_gate_counts(self):
        qc = Circuit(3)
        qc.h(0)
        qc.rz(0.2, 1)
        qc.cz(0, 1)
        qc.rzz(0.3, 1, 2)
        assert qc.num_gates == 4
        assert qc.num_one_qubit_gates == 2
        assert qc.num_two_qubit_gates == 2

    def test_depth_series_vs_parallel(self):
        qc = Circuit(3)
        qc.h(0)
        qc.h(1)
        qc.h(2)
        assert qc.depth == 1
        qc.cz(0, 1)
        assert qc.depth == 2
        qc.cz(1, 2)
        assert qc.depth == 3

    def test_depth_empty(self):
        assert Circuit(2).depth == 0

    def test_interaction_pairs_normalised(self):
        qc = Circuit(3)
        qc.cz(2, 0)
        qc.rzz(0.1, 1, 2)
        assert qc.interaction_pairs() == [(0, 2), (1, 2)]

    def test_used_qubits(self):
        qc = Circuit(5)
        qc.cz(0, 3)
        qc.h(4)
        assert qc.used_qubits() == {0, 3, 4}


class TestNativeness:
    def test_native_with_cz_class_only(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        qc.cp(0.3, 0, 1)
        assert qc.is_native()

    def test_not_native_with_cx(self):
        qc = Circuit(2)
        qc.cx(0, 1)
        assert not qc.is_native()


class TestCopyEqConcat:
    def test_copy_is_independent(self):
        qc = Circuit(2)
        qc.h(0)
        dup = qc.copy()
        dup.cz(0, 1)
        assert qc.num_gates == 1
        assert dup.num_gates == 2

    def test_equality(self):
        a = Circuit(2)
        a.h(0)
        b = Circuit(2)
        b.h(0)
        assert a == b
        b.h(1)
        assert a != b

    def test_concat(self):
        a = Circuit(2)
        a.h(0)
        b = Circuit(2)
        b.cz(0, 1)
        c = concat(a, b)
        assert c.num_gates == 2
        assert c.num_qubits == 2

    def test_concat_width_mismatch(self):
        with pytest.raises(CircuitError):
            concat(Circuit(2), Circuit(3))


class TestDigest:
    def test_hex_sha256_shape(self):
        qc = Circuit(2)
        qc.h(0)
        digest = qc.digest()
        assert len(digest) == 64
        assert int(digest, 16) >= 0

    def test_deterministic_within_process(self):
        qc = Circuit(3)
        qc.h(0)
        qc.cz(0, 1)
        qc.rz(0.25, 2)
        assert qc.digest() == qc.digest()
        assert qc.digest() == qc.copy().digest()

    def test_stable_across_processes(self):
        """The digest must not depend on Python's salted hash()."""
        import subprocess
        import sys

        script = (
            "from repro.circuits import Circuit\n"
            "qc = Circuit(3, name='x')\n"
            "qc.h(0); qc.cz(0, 1); qc.rz(0.25, 2)\n"
            "print(qc.digest())\n"
        )
        digests = set()
        for salt in ("0", "1", "random"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": salt},
                cwd=__file__.rsplit("/", 2)[0],
                check=True,
            )
            digests.add(proc.stdout.strip())
        qc = Circuit(3, name="x")
        qc.h(0)
        qc.cz(0, 1)
        qc.rz(0.25, 2)
        digests.add(qc.digest())
        assert len(digests) == 1

    def test_order_sensitive(self):
        a = Circuit(2)
        a.h(0)
        a.cz(0, 1)
        b = Circuit(2)
        b.cz(0, 1)
        b.h(0)
        assert a.digest() != b.digest()

    def test_changes_when_any_gate_changes(self):
        base = Circuit(3)
        base.h(0)
        base.rz(0.5, 1)
        base.cz(1, 2)
        variants = []
        for mutate in (
            lambda qc: qc.h(1),            # extra gate
            lambda qc: qc.rz(0.5, 1),      # duplicated gate
        ):
            qc = base.copy()
            mutate(qc)
            variants.append(qc.digest())
        changed_qubit = Circuit(3)
        changed_qubit.h(0)
        changed_qubit.rz(0.5, 2)
        changed_qubit.cz(1, 2)
        variants.append(changed_qubit.digest())
        changed_param = Circuit(3)
        changed_param.h(0)
        changed_param.rz(0.5000001, 1)
        changed_param.cz(1, 2)
        variants.append(changed_param.digest())
        changed_name = Circuit(3)
        changed_name.h(0)
        changed_name.rz(0.5, 1)
        changed_name.cx(1, 2)
        variants.append(changed_name.digest())
        assert base.digest() not in variants
        assert len(set(variants)) == len(variants)

    def test_covers_width_name_barrier_measure(self):
        a = Circuit(2, name="a")
        b = Circuit(2, name="b")
        assert a.digest() != b.digest()
        assert Circuit(2).digest() != Circuit(3).digest()
        with_barrier = Circuit(2)
        with_barrier.barrier(0)
        assert Circuit(2).digest() != with_barrier.digest()
        with_measure = Circuit(2)
        with_measure.append(Measure(0, 0))
        assert Circuit(2).digest() != with_measure.digest()

    def test_seed_suite_digest_stability(self):
        """Same benchmark + seed -> same digest; different seed -> differs."""
        from repro.benchsuite import get_benchmark

        spec = get_benchmark("QAOA-random-20")
        assert spec.build(3).digest() == spec.build(3).digest()
        assert spec.build(3).digest() != spec.build(4).digest()
