"""Tests for movement kinematics (profiles and AOD waveforms)."""

import math

import pytest

from repro.hardware import DEFAULT_PARAMS, UM, CollMove, Move, Zone, ZonedArchitecture
from repro.hardware.kinematics import (
    BangBangProfile,
    PaperProfile,
    coll_move_waveforms,
    max_sampled_acceleration,
    move_waveform,
    sample_profile,
)
from repro.hardware.moves import moves_conflict


@pytest.fixture
def arch():
    return ZonedArchitecture(4, 4, 4, 8)


class TestBangBang:
    def test_duration_formula(self):
        profile = BangBangProfile(27.5 * UM, 2750.0)
        assert profile.duration == pytest.approx(
            2.0 * math.sqrt(27.5e-6 / 2750.0)
        )

    def test_endpoints(self):
        profile = BangBangProfile(40 * UM, 2750.0)
        assert profile.position_at(0.0) == pytest.approx(0.0)
        assert profile.position_at(profile.duration) == pytest.approx(
            40e-6
        )
        assert profile.velocity_at(0.0) == pytest.approx(0.0)
        assert profile.velocity_at(profile.duration) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_midpoint_peak_velocity(self):
        profile = BangBangProfile(40 * UM, 2750.0)
        mid = profile.duration / 2.0
        assert profile.velocity_at(mid) == pytest.approx(
            profile.peak_velocity
        )

    def test_position_monotone(self):
        profile = BangBangProfile(40 * UM, 2750.0)
        samples = sample_profile(profile, 41)
        positions = [s.position for s in samples]
        assert positions == sorted(positions)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BangBangProfile(-1.0, 2750.0)
        with pytest.raises(ValueError):
            BangBangProfile(1.0, 0.0)


class TestBatchSampling:
    """The batch entry points agree with the scalar ones exactly.

    positions_at/velocities_at are the vectorized contract: same
    floating-point results as position_at/velocity_at at every sample
    time, numpy present or not.
    """

    @pytest.mark.parametrize(
        "make",
        [
            lambda: BangBangProfile(40 * UM, 2750.0),
            lambda: PaperProfile(27.5 * UM, 2750.0),
            lambda: PaperProfile(0.0, 2750.0),
        ],
        ids=["bangbang", "paper", "zero-distance"],
    )
    def test_batch_matches_scalar(self, make):
        profile = make()
        total = profile.duration
        times = [total * i / 16.0 for i in range(17)] or [0.0]
        positions = list(profile.positions_at(times))
        velocities = list(profile.velocities_at(times))
        for t, p, v in zip(times, positions, velocities):
            assert float(p) == profile.position_at(t)
            assert float(v) == profile.velocity_at(t)

    def test_batch_matches_scalar_without_numpy(self, monkeypatch):
        import repro.hardware.kinematics as kin

        profile = PaperProfile(27.5 * UM, 2750.0)
        times = [profile.duration * i / 8.0 for i in range(9)]
        with_np = [float(p) for p in profile.positions_at(times)]
        monkeypatch.setattr(kin, "_np", None)
        without_np = [float(p) for p in profile.positions_at(times)]
        assert with_np == without_np


class TestPaperProfile:
    def test_duration_matches_table1(self):
        profile = PaperProfile(27.5 * UM, 2750.0)
        assert profile.duration == pytest.approx(100e-6, rel=1e-9)
        profile = PaperProfile(110 * UM, 2750.0)
        assert profile.duration == pytest.approx(200e-6, rel=1e-9)

    def test_duration_agrees_with_params_law(self):
        for dist in (10 * UM, 45 * UM, 200 * UM):
            profile = PaperProfile(dist, DEFAULT_PARAMS.acceleration)
            assert profile.duration == pytest.approx(
                DEFAULT_PARAMS.move_duration(dist)
            )

    def test_smooth_endpoints(self):
        profile = PaperProfile(40 * UM, 2750.0)
        assert profile.velocity_at(0.0) == pytest.approx(0.0, abs=1e-12)
        assert profile.velocity_at(profile.duration) == pytest.approx(
            0.0, abs=1e-9
        )
        assert profile.position_at(profile.duration) == pytest.approx(
            40e-6
        )

    def test_peak_acceleration_is_two_pi_a(self):
        profile = PaperProfile(40 * UM, 2750.0)
        assert profile.peak_acceleration == pytest.approx(
            2.0 * math.pi * 2750.0
        )

    def test_faster_than_bang_bang_by_factor_two(self):
        """The paper's law is 2x below the bang-bang optimum (see module
        docstring) -- keep that surprising fact pinned down."""
        bang = BangBangProfile(40 * UM, 2750.0)
        paper = PaperProfile(40 * UM, 2750.0)
        assert bang.duration == pytest.approx(2.0 * paper.duration)

    def test_zero_distance(self):
        profile = PaperProfile(0.0, 2750.0)
        assert profile.duration == 0.0
        assert profile.position_at(0.0) == 0.0


class TestSampling:
    def test_sample_count_and_clamping(self):
        profile = PaperProfile(40 * UM, 2750.0)
        samples = sample_profile(profile, 11)
        assert len(samples) == 11
        assert samples[0].time == 0.0
        assert samples[-1].time == pytest.approx(profile.duration)

    def test_minimum_samples(self):
        with pytest.raises(ValueError):
            sample_profile(PaperProfile(1 * UM, 2750.0), 1)

    def test_sampled_acceleration_near_analytic_peak(self):
        profile = PaperProfile(60 * UM, 2750.0)
        arch = ZonedArchitecture(8, 8)
        move = Move(
            0, arch.site(Zone.COMPUTE, 0, 0), arch.site(Zone.COMPUTE, 4, 0)
        )
        waveform = move_waveform(move, DEFAULT_PARAMS, num_samples=201)
        sampled = max_sampled_acceleration(waveform)
        assert sampled == pytest.approx(
            profile.peak_acceleration, rel=0.02
        )


class TestWaveforms:
    def test_waveform_endpoints(self, arch):
        move = Move(
            3, arch.site(Zone.COMPUTE, 0, 0), arch.site(Zone.STORAGE, 2, 1)
        )
        waveform = move_waveform(move, DEFAULT_PARAMS)
        assert (waveform.xs[0], waveform.ys[0]) == move.source.position
        assert waveform.xs[-1] == pytest.approx(move.destination.x)
        assert waveform.ys[-1] == pytest.approx(move.destination.y)
        assert waveform.qubit == 3

    def test_collmove_members_share_clock(self, arch):
        cm = CollMove(
            moves=[
                Move(
                    0,
                    arch.site(Zone.COMPUTE, 0, 0),
                    arch.site(Zone.COMPUTE, 1, 0),
                ),
                Move(
                    1,
                    arch.site(Zone.COMPUTE, 2, 1),
                    arch.site(Zone.COMPUTE, 3, 1),
                ),
            ]
        )
        waveforms = coll_move_waveforms(cm, DEFAULT_PARAMS, num_samples=21)
        assert waveforms[0].times == waveforms[1].times
        assert waveforms[0].times[-1] == pytest.approx(
            cm.move_duration(DEFAULT_PARAMS)
        )

    def test_collmove_waveforms_preserve_aod_order(self, arch):
        """At every shared sample the x/y order (with ties) must hold --
        the continuous-time counterpart of the Fig. 5 conflict rule."""
        moves = [
            Move(
                0, arch.site(Zone.COMPUTE, 0, 0), arch.site(Zone.COMPUTE, 1, 1)
            ),
            Move(
                1, arch.site(Zone.COMPUTE, 2, 1), arch.site(Zone.COMPUTE, 3, 2)
            ),
            Move(
                2, arch.site(Zone.COMPUTE, 0, 3), arch.site(Zone.COMPUTE, 1, 3)
            ),
        ]
        for i, a in enumerate(moves):
            for b in moves[i + 1:]:
                assert not moves_conflict(a, b)
        cm = CollMove(moves=moves)
        waveforms = coll_move_waveforms(cm, DEFAULT_PARAMS, num_samples=41)
        for i, wa in enumerate(waveforms):
            for wb in waveforms[i + 1:]:
                sx = _sign(wa.xs[0] - wb.xs[0])
                sy = _sign(wa.ys[0] - wb.ys[0])
                for k in range(len(wa.times)):
                    if sx:
                        assert _sign(wa.xs[k] - wb.xs[k]) in (0, sx)
                    if sy:
                        assert _sign(wa.ys[k] - wb.ys[k]) in (0, sy)


def _sign(v: float) -> int:
    if v > 1e-12:
        return 1
    if v < -1e-12:
        return -1
    return 0
