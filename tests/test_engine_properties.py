"""Property tests: engine parallel results == serial ``run_scenarios``.

Seeded-random trials pick suite subsets, seeds and AOD counts, then
assert the process-pool engine's programs are *bitwise identical* (equal
serialized documents) to what the plain serial experiment runner
produces, and that a shared cache never changes the answer.
"""

import random

import pytest

from repro.analysis.experiments import (
    SCENARIOS,
    run_scenarios,
    run_scenarios_batch,
)
from repro.baselines import EnolaConfig
from repro.benchsuite import SUITE, scaled_suite
from repro.engine import CompilationEngine, CompileJob, MemoryCache
from repro.schedule.serialize import program_to_dict

#: Suite rows small enough for many repeated compiles.
FAST_KEYS = tuple(
    spec.key for spec in scaled_suite(30) if spec.num_qubits <= 30
)


def _light_enola(seed: int) -> EnolaConfig:
    return EnolaConfig(
        seed=seed, mis_restarts=1, sa_iterations_per_qubit=0
    )


def _program_docs(result):
    """Scenario -> serialized program of one BenchmarkResult."""
    return {
        scenario: program_to_dict(result[scenario].program)
        for scenario in result.scenarios
    }


@pytest.mark.parametrize("trial", range(4))
def test_parallel_bitwise_identical_to_serial(trial):
    rng = random.Random(1000 + trial)
    keys = rng.sample(FAST_KEYS, 3)
    seed = rng.randrange(5)
    num_aods = rng.choice((1, 2))

    serial_results = []
    for key in keys:
        circuit = SUITE[key].build(seed)
        serial_results.append(
            run_scenarios(
                circuit,
                num_aods=num_aods,
                seed=seed,
                enola_config=_light_enola(seed),
                validate=False,
            )
        )

    circuits = [SUITE[key].build(seed) for key in keys]
    parallel_results = run_scenarios_batch(
        circuits,
        num_aods=num_aods,
        seeds=seed,
        enola_config=_light_enola(seed),
        validate=False,
        engine=CompilationEngine(workers=3),
    )

    assert len(parallel_results) == len(serial_results)
    for serial, parallel in zip(serial_results, parallel_results):
        assert parallel.key == serial.key
        assert _program_docs(parallel) == _program_docs(serial)
        for scenario in SCENARIOS:
            assert (
                parallel[scenario].fidelity.total
                == serial[scenario].fidelity.total
            )
            assert (
                parallel[scenario].fidelity.execution_time
                == serial[scenario].fidelity.execution_time
            )


@pytest.mark.parametrize("trial", range(3))
def test_cached_rerun_bitwise_identical(trial):
    rng = random.Random(2000 + trial)
    keys = rng.sample(FAST_KEYS, 2)
    seed = rng.randrange(3)
    jobs = [
        CompileJob(
            scenario=scenario,
            benchmark=key,
            seed=seed,
            enola_config=_light_enola(seed),
            validate=False,
        )
        for key in keys
        for scenario in SCENARIOS
    ]
    engine = CompilationEngine(cache=MemoryCache(), workers=2)
    cold = engine.run(jobs)
    warm = engine.run(jobs)
    assert all(r.cache_hit for r in warm)
    for a, b in zip(cold, warm):
        assert program_to_dict(a.program) == program_to_dict(b.program)
        assert a.fidelity.total == b.fidelity.total


def test_per_circuit_seeds_match_independent_runs():
    """A batch with heterogeneous seeds equals per-seed serial runs."""
    spec = SUITE["QAOA-random-20"]
    seeds = [0, 1, 2]
    circuits = [spec.build(s) for s in seeds]
    batch = run_scenarios_batch(
        circuits,
        seeds=seeds,
        enola_config=None,  # per-seed default Enola config
        validate=False,
        engine=CompilationEngine(workers=3),
        scenarios=("enola", "pm_with_storage"),
    )
    for seed, circuit, result in zip(seeds, circuits, batch):
        serial = run_scenarios(
            circuit,
            seed=seed,
            validate=False,
            scenarios=("enola", "pm_with_storage"),
        )
        assert _program_docs(result) == _program_docs(serial)
