"""The long-running compilation service: queue, protocol, lifecycle.

In-process servers (worker threads in this test process) cover the
full lifecycle -- submit, stream, retries, drain, restart recovery --
so failure injection can monkeypatch the engine's worker function.  A
subprocess test exercises the real ``repro serve`` daemon end to end.
"""

import json
import os
import subprocess
import sys
import time

import pytest

import repro.engine.engine as engine_module
from repro.engine import (
    CompilationEngine,
    docs_equal_modulo_timing,
    manifest_digest,
    parse_manifest,
    results_doc,
)
from repro.engine.jobs import execute_job_on_circuit, job_from_doc
from repro.service import (
    JobQueue,
    ProtocolError,
    ServiceClient,
    ServiceError,
    ServiceServer,
    parse_address,
)

#: Cheap two-benchmark manifest (enola knobs dialled down).
MANIFEST = {
    "defaults": {
        "enola": {"mis_restarts": 1, "sa_iterations_per_qubit": 0}
    },
    "jobs": [
        {"benchmark": "BV-14"},
        {
            "benchmark": "QSIM-rand-0.3-10",
            "scenarios": ["pm_non_storage", "pm_with_storage"],
        },
    ],
}

SECOND_MANIFEST = {
    "jobs": [
        {"benchmark": "QSIM-rand-0.3-10", "backend": "powermove", "seed": 2}
    ]
}


def batch_document(manifest):
    """The reference `repro batch --on-error collect` document."""
    jobs = parse_manifest(manifest)
    results = CompilationEngine(on_error="collect").run(jobs)
    return results_doc(
        results,
        manifest_digest=manifest_digest(manifest),
        total_jobs=len(jobs),
        wall_time_s=0.0,
        on_error="collect",
    )


@pytest.fixture
def queue(tmp_path):
    return JobQueue(str(tmp_path / "queue"))


def start_server(tmp_path, **kwargs):
    server = ServiceServer(
        str(tmp_path / "queue"), "127.0.0.1:0", **kwargs
    )
    return server.start()


class TestParseAddress:
    def test_tcp(self):
        assert parse_address("127.0.0.1:7431") == (
            "tcp",
            ("127.0.0.1", 7431),
        )

    def test_unix_paths(self):
        assert parse_address("/tmp/s.sock") == ("unix", "/tmp/s.sock")
        assert parse_address("./q/s.sock") == ("unix", "./q/s.sock")

    @pytest.mark.parametrize(
        "spec", ["", "localhost", "host:notaport", "host:70000"]
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ProtocolError):
            parse_address(spec)


class TestJobQueue:
    def test_submit_expands_and_persists(self, queue):
        submission = queue.submit(MANIFEST)
        assert submission["total_jobs"] == 5
        assert submission["manifest_digest"] == manifest_digest(MANIFEST)
        assert queue.counts() == {
            "queued": 5,
            "running": 0,
            "done": 0,
            "error": 0,
        }
        reopened = JobQueue(queue.directory)
        assert reopened.counts()["queued"] == 5
        record = reopened.get(submission["job_ids"][0])
        assert record["status"] == "queued"
        assert job_from_doc(record["job"]).benchmark == "BV-14"

    def test_arch_and_strategies_survive_queue_round_trip(self, queue):
        manifest = {
            "jobs": [
                {
                    "benchmark": "BV-14",
                    "backend": "powermove",
                    "arch": "wide-storage",
                    "strategies": {"placement": "spiral"},
                },
                {"benchmark": "BV-14", "backend": "auto"},
            ]
        }
        submission = queue.submit(manifest)
        # Reopen from disk: the persisted job documents must rebuild
        # equal jobs, arch and strategies included.
        reopened = JobQueue(queue.directory)
        first = job_from_doc(
            reopened.get(submission["job_ids"][0])["job"]
        )
        assert first.arch == "wide-storage"
        assert first.strategies_map == {"placement": "spiral"}
        second = job_from_doc(
            reopened.get(submission["job_ids"][1])["job"]
        )
        assert second.backend == "auto"
        # The exact-inverse contract, on a strategy-carrying job.
        from repro.engine.jobs import job_to_doc

        assert job_from_doc(job_to_doc(first)) == first

    def test_bad_manifest_leaves_queue_untouched(self, queue):
        from repro.engine import ManifestError

        with pytest.raises(ManifestError):
            queue.submit({"jobs": [{"benchmark": "NOPE-1"}]})
        assert queue.counts()["queued"] == 0
        assert queue.submission_ids() == []

    def test_lease_priority_then_fifo(self, queue):
        low = queue.submit(SECOND_MANIFEST, priority=0)
        high = queue.submit(
            {"jobs": [{"benchmark": "BV-14", "backend": "powermove"}]},
            priority=5,
        )
        first = queue.lease("w1")
        assert first["submission"] == high["id"]
        second = queue.lease("w2")
        assert second["submission"] == low["id"]

    def test_lease_dedups_running_cache_keys(self, queue):
        queue.submit(SECOND_MANIFEST)
        queue.submit(SECOND_MANIFEST)  # identical job, twin cache key
        first = queue.lease("w1")
        assert first is not None
        # The twin is queued but shares the running cache key: skipped.
        assert queue.lease("w2") is None
        job = job_from_doc(first["job"])
        [result] = CompilationEngine().run([job])
        from repro.engine import job_record

        queue.complete(first["id"], job_record(result, first["index"]))
        twin = queue.lease("w2")
        assert twin is not None
        assert twin["cache_key"] == first["cache_key"]

    def test_completed_count_matches_completed_records(self, queue):
        submission = queue.submit(MANIFEST)
        sub_id = submission["id"]
        assert queue.completed_count(sub_id) == 0
        done = 0
        while True:
            leased = queue.lease("w1")
            if leased is None:
                break
            queue.complete(
                leased["id"],
                {"status": "ok", "index": leased["index"]},
            )
            done += 1
            assert queue.completed_count(sub_id) == done
            assert queue.completed_count(sub_id) == len(
                queue.completed_records(sub_id)
            )
        assert done == submission["total_jobs"]
        assert queue.completed_count("no-such-submission") == 0

    def test_complete_first_wins(self, queue):
        queue.submit(SECOND_MANIFEST)
        leased = queue.lease("w1")
        record_ok = {"status": "ok", "index": 0, "cache_hit": False}
        queue.complete(leased["id"], record_ok)
        queue.complete(
            leased["id"], {"status": "error", "index": 0}
        )  # no-op
        assert queue.get(leased["id"])["record"] == record_ok
        assert queue.counts()["done"] == 1

    def test_expired_lease_requeues_with_count(self, queue):
        queue.submit(SECOND_MANIFEST)
        leased = queue.lease("w1", lease_seconds=0.0)
        assert queue.requeue_expired() == [leased["id"]]
        record = queue.get(leased["id"])
        assert record["status"] == "queued"
        assert record["requeues"] == 1
        assert record["lease"] is None

    def test_requeue_bound_records_worker_lost_error(self, tmp_path):
        queue = JobQueue(str(tmp_path / "q"), max_requeues=1)
        queue.submit(SECOND_MANIFEST)
        for _ in range(2):
            leased = queue.lease("w1", lease_seconds=0.0)
            assert leased is not None
            queue.requeue_expired()
        record = queue.get(leased["id"])
        assert record["status"] == "error"
        assert record["record"]["error"]["type"] == "WorkerLostError"

    def test_renew_extends_a_running_lease(self, queue):
        queue.submit(SECOND_MANIFEST)
        leased = queue.lease("w1", lease_seconds=0.0)
        # Heartbeat: the expired lease is pushed into the future, so
        # the maintenance sweep leaves the job alone.
        assert queue.renew(leased["id"], lease_seconds=3600.0)
        assert queue.requeue_expired() == []
        assert queue.get(leased["id"])["status"] == "running"
        assert not queue.renew("s999999-00000")

    def test_recover_requeues_even_fresh_leases(self, queue):
        queue.submit(SECOND_MANIFEST)
        leased = queue.lease("w1", lease_seconds=3600.0)
        reopened = JobQueue(queue.directory)
        assert reopened.recover() == [leased["id"]]
        assert reopened.counts()["queued"] == 1


class TestServiceLifecycle:
    def test_submit_stream_drain_shutdown(self, tmp_path):
        server = start_server(tmp_path, workers=2)
        try:
            client = ServiceClient(server.address)
            ping = client.wait_ready()
            assert ping["protocol"] >= 1

            first = client.submit(MANIFEST)
            second = client.submit(SECOND_MANIFEST)
            assert first["total_jobs"] == 5
            assert second["total_jobs"] == 1

            records = list(
                client.results(first["submission"], follow=True)
            )
            assert len(records) == 5
            assert {r["status"] for r in records} == {"ok"}
            # Completion order on the wire; manifest order recoverable.
            assert sorted(r["index"] for r in records) == list(range(5))

            doc = client.results_document(first["submission"])
            assert docs_equal_modulo_timing(doc, batch_document(MANIFEST))
            doc2 = client.results_document(second["submission"])
            assert docs_equal_modulo_timing(
                doc2, batch_document(SECOND_MANIFEST)
            )

            status = client.status(first["submission"])
            assert status["counts"]["done"] == 5
            overall = client.status()
            assert [s["id"] for s in overall["submissions"]] == [
                first["submission"],
                second["submission"],
            ]

            client.shutdown(drain=True)
            assert server.wait_stopped(timeout=30.0)
            dead = ServiceClient(server.address, connect_retry_s=0.0)
            with pytest.raises(ServiceError):
                dead.ping()
        finally:
            if not server.wait_stopped(timeout=0.0):
                server.stop(drain=False)

    def test_poison_job_retried_then_collected(
        self, tmp_path, monkeypatch
    ):
        calls: dict[str, int] = {}

        def flaky(job, circuit):
            count = calls.get(job.label, 0) + 1
            calls[job.label] = count
            if job.benchmark == "QSIM-rand-0.3-10" and count <= 1:
                raise RuntimeError("transient worker hiccup")
            if job.benchmark == "BV-14" and job.backend == "atomique":
                raise RuntimeError("permanently poisoned")
            return execute_job_on_circuit(job, circuit)

        monkeypatch.setattr(
            engine_module, "execute_job_on_circuit", flaky
        )
        server = start_server(
            tmp_path, workers=2, retries=2, backoff=0.0
        )
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            submitted = client.submit(
                {
                    "jobs": [
                        {
                            "benchmark": "QSIM-rand-0.3-10",
                            "backend": "powermove",
                        },
                        {"benchmark": "BV-14", "backend": "atomique"},
                    ]
                }
            )
            records = {
                r["benchmark"]: r
                for r in client.results(
                    submitted["submission"], follow=True
                )
            }
            flaked = records["QSIM-rand-0.3-10"]
            assert flaked["status"] == "ok"
            assert flaked["attempts"] == 2  # retried then succeeded
            poisoned = records["BV-14"]
            assert poisoned["status"] == "error"
            assert poisoned["attempts"] == 3  # all attempts exhausted
            assert "poisoned" in poisoned["error"]["message"]
        finally:
            server.stop(drain=False)

    def test_abrupt_restart_resumes_queued_jobs(
        self, tmp_path, monkeypatch
    ):
        real = execute_job_on_circuit

        def slow(job, circuit):
            time.sleep(0.1)
            return real(job, circuit)

        monkeypatch.setattr(engine_module, "execute_job_on_circuit", slow)
        server = start_server(tmp_path, workers=1)
        client = ServiceClient(server.address)
        try:
            client.wait_ready()
            submitted = client.submit(MANIFEST)
            # Let some (not all) jobs finish, then stop without drain:
            # in-flight work completes, the rest stays queued on disk.
            server.queue.wait(
                lambda: server.queue.counts()["done"] >= 1,
                timeout=30.0,
            )
        finally:
            server.stop(drain=False)
        assert server.queue.unfinished() > 0

        monkeypatch.setattr(engine_module, "execute_job_on_circuit", real)
        revived = start_server(tmp_path, workers=2)
        try:
            client = ServiceClient(revived.address)
            client.wait_ready()
            doc = client.results_document(submitted["submission"])
            assert doc["num_failed"] == 0
            assert docs_equal_modulo_timing(doc, batch_document(MANIFEST))
        finally:
            revived.stop(drain=False)

    def test_compile_outliving_lease_is_heartbeaten_not_requeued(
        self, tmp_path, monkeypatch
    ):
        real = execute_job_on_circuit
        calls = []

        def slow(job, circuit):
            calls.append(job.label)
            time.sleep(0.4)  # several lease durations
            return real(job, circuit)

        monkeypatch.setattr(engine_module, "execute_job_on_circuit", slow)
        server = start_server(
            tmp_path, workers=2, lease_seconds=0.1, retries=0
        )
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            submitted = client.submit(SECOND_MANIFEST)
            records = list(
                client.results(submitted["submission"], follow=True)
            )
            assert [r["status"] for r in records] == ["ok"]
            # The slow compile ran exactly once: its lease was renewed
            # by the heartbeat, never expired onto a second worker.
            assert len(calls) == 1
            job = server.queue.get(submitted["job_ids"][0])
            assert job["requeues"] == 0
        finally:
            server.stop(drain=False)

    def test_crashed_daemon_lease_recovered_on_start(self, tmp_path):
        # Simulate a daemon killed mid-compile: a submitted queue with
        # one job leased and never completed.
        queue = JobQueue(str(tmp_path / "queue"))
        submitted = queue.submit(MANIFEST)
        assert queue.lease("dead-worker", lease_seconds=3600.0)

        server = start_server(tmp_path, workers=2)
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            doc = client.results_document(submitted["id"])
            assert doc["num_jobs"] == submitted["total_jobs"]
            assert docs_equal_modulo_timing(doc, batch_document(MANIFEST))
        finally:
            server.stop(drain=False)

    def test_submit_rejects_bad_manifest_and_unknown_ops(self, tmp_path):
        server = start_server(tmp_path)
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            with pytest.raises(ServiceError, match="bad manifest"):
                client.submit({"jobs": [{"benchmark": "NOPE-1"}]})
            with pytest.raises(ServiceError, match="unknown submission"):
                list(client.results("s999999"))
            with pytest.raises(ServiceError, match="unknown op"):
                client._request({"op": "frobnicate"})
        finally:
            server.stop(drain=False)


class TestIdlePolling:
    """Bounded backoff on the service's two idle-poll loops.

    Both tests assert properties of the backoff *ladder* (first value,
    doubling, cap, reset) rather than measuring wall-clock time, so
    they stay stable on slow or noisy CI machines.
    """

    def test_wait_ready_backoff_doubles_to_a_bound(self, monkeypatch):
        class FakeTime:
            def __init__(self):
                self.now = 0.0
                self.sleeps = []

            def monotonic(self):
                return self.now

            def sleep(self, seconds):
                self.sleeps.append(seconds)
                self.now += seconds

        import repro.service.client as client_module

        fake = FakeTime()
        monkeypatch.setattr(client_module, "time", fake)
        # Nothing listens on port 1, so every ping fails fast and the
        # retry loop runs against the fake clock alone.  Connect
        # retries are off so only wait_ready's ladder sleeps.
        client = ServiceClient(
            "127.0.0.1:1", timeout=0.05, connect_retry_s=0.0
        )
        with pytest.raises(ServiceError):
            client.wait_ready(timeout=5.0)
        sleeps = fake.sleeps
        assert sleeps[0] == pytest.approx(0.05)
        assert max(sleeps) <= 1.0 + 1e-9
        # Doubling up to the 1 s bound; only the final sleep may be
        # shorter (clamped to the remaining budget).
        for previous, current in zip(sleeps[:-1], sleeps[1:-1]):
            assert current == pytest.approx(min(previous * 2.0, 1.0))
        assert sum(sleeps) == pytest.approx(5.0)

    def test_followed_stream_idle_ladder_doubles_to_a_bound(self):
        # The asyncio result stream is primarily event-driven (a queue
        # listener wakes it on every state change); the poll timeout is
        # only the safety net.  Its ladder starts at the minimum,
        # doubles, and saturates at the cap.
        from repro.service.server import (
            RESULTS_POLL_MAX_S,
            RESULTS_POLL_MIN_S,
            _next_idle_timeout,
        )

        timeout = RESULTS_POLL_MIN_S
        seen = [timeout]
        for _ in range(12):
            timeout = _next_idle_timeout(timeout)
            seen.append(timeout)
        assert seen[0] == pytest.approx(RESULTS_POLL_MIN_S)
        for previous, current in zip(seen, seen[1:]):
            assert current == pytest.approx(
                min(previous * 2.0, RESULTS_POLL_MAX_S)
            )
        assert seen[-1] == pytest.approx(RESULTS_POLL_MAX_S)
        assert _next_idle_timeout(RESULTS_POLL_MAX_S) == pytest.approx(
            RESULTS_POLL_MAX_S
        )

    def test_connect_retry_waits_for_late_listener(self, tmp_path):
        import socket as socket_module
        import threading

        # Reserve a port, then bind a listener on it only after the
        # client has started connecting: the bounded connect-retry
        # ladder bridges the gap (a client started alongside a daemon
        # must not lose the bind race).
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        def serve_one_ping():
            time.sleep(0.3)
            listener = socket_module.socket()
            listener.setsockopt(
                socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
            )
            listener.bind(("127.0.0.1", port))
            listener.listen(1)
            conn, _ = listener.accept()
            stream = conn.makefile("rwb")
            stream.readline()
            stream.write(b'{"ok": true, "op": "ping", "protocol": 1}\n')
            stream.flush()
            stream.close()
            conn.close()
            listener.close()

        thread = threading.Thread(target=serve_one_ping, daemon=True)
        thread.start()
        client = ServiceClient(
            f"127.0.0.1:{port}", timeout=5.0, connect_retry_s=5.0
        )
        assert client.ping()["ok"] is True
        thread.join(timeout=5.0)

        # With retrying disabled the same refusal surfaces at once.
        eager = ServiceClient(
            f"127.0.0.1:{port}", timeout=0.5, connect_retry_s=0.0
        )
        started = time.monotonic()
        with pytest.raises(ServiceError, match="cannot reach"):
            eager.ping()
        assert time.monotonic() - started < 2.0


class TestProtocolBounds:
    def test_oversized_frame_is_refused_cleanly(self, tmp_path):
        import socket as socket_module

        server = start_server(tmp_path, max_line_bytes=4096)
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            host, port = parse_address(server.address)[1]
            with socket_module.create_connection(
                (host, port), timeout=10.0
            ) as sock:
                stream = sock.makefile("rwb")
                huge = (
                    b'{"op": "submit", "manifest": "'
                    + b"x" * 8192
                    + b'"}\n'
                )
                stream.write(huge)
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply["ok"] is False
                assert "size bound" in reply["error"]
                # The server closes the connection after the error.
                # The unread remainder of the oversized line may turn
                # the close into a TCP reset; either way no further
                # reply arrives.
                try:
                    assert stream.readline() == b""
                except ConnectionResetError:
                    pass
                stream.close()
            # The daemon itself is unharmed and still serves work.
            submitted = client.submit(SECOND_MANIFEST)
            doc = client.results_document(submitted["submission"])
            assert doc["num_failed"] == 0
        finally:
            server.stop(drain=False)

    def test_client_rejects_oversized_manifest_against_bound(
        self, tmp_path
    ):
        server = start_server(tmp_path, max_line_bytes=4096)
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            big = {"jobs": [{"benchmark": "BV-14", "note": "y" * 8192}]}
            with pytest.raises(ServiceError, match="size bound"):
                client.submit(big)
        finally:
            server.stop(drain=False)


class TestManyConnections:
    def test_hundreds_of_idle_connections_without_threads(
        self, tmp_path
    ):
        import socket as socket_module
        import threading

        try:
            import resource

            soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
            if soft < 1200:
                resource.setrlimit(
                    resource.RLIMIT_NOFILE, (min(1200, hard), hard)
                )
        except (ImportError, ValueError, OSError):
            pytest.skip("cannot raise RLIMIT_NOFILE high enough")

        server = start_server(tmp_path, workers=1)
        sockets = []
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            threads_before = threading.active_count()
            host, port = parse_address(server.address)[1]
            for _ in range(500):
                sock = socket_module.create_connection(
                    (host, port), timeout=10.0
                )
                sockets.append(sock)
            ping = client.ping()
            assert ping["connections"]["open"] >= 500
            # The asyncio front end holds every connection as a
            # coroutine on one event loop: no thread per connection.
            assert threading.active_count() <= threads_before + 2
            # Compilation still proceeds underneath the idle load.
            submitted = client.submit(SECOND_MANIFEST)
            doc = client.results_document(submitted["submission"])
            assert doc["num_failed"] == 0
        finally:
            for sock in sockets:
                try:
                    sock.close()
                except OSError:
                    pass
            server.stop(drain=False)


class TestCompletedTtl:
    def test_gc_collects_only_fully_finished_old_submissions(
        self, queue
    ):
        from repro.engine import job_record

        submitted = queue.submit(SECOND_MANIFEST)
        sub_id = submitted["id"]
        # Live submission: never collected, however old.
        assert queue.gc_completed(0.0) == []

        leased = queue.lease("w1")
        # Leased (running) job: still never collected.
        assert queue.gc_completed(0.0) == []

        job = job_from_doc(leased["job"])
        [result] = CompilationEngine().run([job])
        queue.complete(leased["id"], job_record(result, leased["index"]))
        # Finished but fresh: survives a generous TTL.
        assert queue.gc_completed(3600.0) == []
        assert queue.submission_ids() == [sub_id]
        # Finished and older than a zero TTL: collected.
        assert queue.gc_completed(0.0) == [sub_id]
        assert queue.submission_ids() == []
        assert queue.counts() == {
            "queued": 0,
            "running": 0,
            "done": 0,
            "error": 0,
        }

    def test_gc_does_not_recycle_submission_ids(self, queue):
        from repro.engine import job_record

        first = queue.submit(SECOND_MANIFEST)
        leased = queue.lease("w1")
        job = job_from_doc(leased["job"])
        [result] = CompilationEngine().run([job])
        queue.complete(leased["id"], job_record(result, leased["index"]))
        assert queue.gc_completed(0.0) == [first["id"]]
        second = queue.submit(SECOND_MANIFEST)
        # A recycled id would alias the collected submission for any
        # client still holding the old handle.
        assert second["id"] != first["id"]

    def test_server_ttl_sweep_prunes_finished_submissions(
        self, tmp_path
    ):
        # lease_seconds=0.4 makes the maintenance sweep run every
        # ~0.1 s, so a zero TTL collects promptly after completion.
        server = start_server(
            tmp_path, workers=1, lease_seconds=0.4, completed_ttl=0.0
        )
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            submitted = client.submit(SECOND_MANIFEST)
            doc = client.results_document(submitted["submission"])
            assert doc["num_failed"] == 0
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not server.queue.submission_ids():
                    break
                time.sleep(0.05)
            assert server.queue.submission_ids() == []
            with pytest.raises(ServiceError, match="unknown submission"):
                list(client.results(submitted["submission"]))
        finally:
            server.stop(drain=False)


class TestServiceCli:
    def test_cli_round_trip_against_in_process_server(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        server = start_server(tmp_path)
        try:
            manifest_path = tmp_path / "manifest.json"
            manifest_path.write_text(json.dumps(SECOND_MANIFEST))
            assert (
                main(
                    [
                        "submit",
                        str(manifest_path),
                        "--connect",
                        server.address,
                        "--json",
                    ]
                )
                == 0
            )
            submitted = json.loads(capsys.readouterr().out)

            out_path = tmp_path / "doc.json"
            code = main(
                [
                    "results",
                    submitted["submission"],
                    "--connect",
                    server.address,
                    "--follow",
                    "--output",
                    str(out_path),
                ]
            )
            assert code == 0
            lines = [
                json.loads(line)
                for line in capsys.readouterr().out.splitlines()
                if line
            ]
            assert len(lines) == 1 and lines[0]["status"] == "ok"
            doc = json.loads(out_path.read_text())
            assert docs_equal_modulo_timing(
                doc, batch_document(SECOND_MANIFEST)
            )

            assert (
                main(["status", "--connect", server.address]) == 0
            )
            assert "finished" in capsys.readouterr().out

            # Exit 2 when the fetch is partial: an unfinished (here:
            # unknown-free, already-done) submission fetched without
            # --follow is complete, so exercise the partial path with a
            # fresh submission raced before completion is unreliable --
            # instead assert the complete fetch exits 0 without follow.
            assert (
                main(
                    [
                        "results",
                        submitted["submission"],
                        "--connect",
                        server.address,
                    ]
                )
                == 0
            )
            capsys.readouterr()

            assert (
                main(["shutdown", "--connect", server.address]) == 0
            )
            assert server.wait_stopped(timeout=30.0)
        finally:
            if not server.wait_stopped(timeout=0.0):
                server.stop(drain=False)


    def test_partial_fetch_without_follow_exits_nonzero(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        real = execute_job_on_circuit

        def slow(job, circuit):
            time.sleep(0.5)
            return real(job, circuit)

        monkeypatch.setattr(engine_module, "execute_job_on_circuit", slow)
        server = start_server(tmp_path, workers=1)
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            submitted = client.submit(SECOND_MANIFEST)
            # No --follow while the job still compiles: the stream is
            # honest about the gap and the exit code is non-zero, so
            # `results ... && analyze` pipelines cannot treat a partial
            # fetch as a finished sweep.
            code = main(
                [
                    "results",
                    submitted["submission"],
                    "--connect",
                    server.address,
                ]
            )
            assert code == 2
            assert "remaining" in capsys.readouterr().err
        finally:
            server.stop(drain=False)


class TestServeSubprocess:
    def test_daemon_round_trip_over_unix_socket(self, tmp_path):
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        socket_path = str(queue_dir / "service.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(queue_dir),
                "--workers",
                "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            client = ServiceClient(socket_path)
            client.wait_ready(timeout=30.0)
            submitted = client.submit(MANIFEST)
            doc = client.results_document(submitted["submission"])
            assert docs_equal_modulo_timing(doc, batch_document(MANIFEST))
            client.shutdown(drain=True)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)


class TestObservability:
    """End-to-end traces + metrics through a live daemon."""

    def test_traces_and_metrics_across_a_submission(self, tmp_path):
        import urllib.request

        from repro.obs.trace import (
            span_seconds,
            validate_trace_doc,
        )
        from repro.service.loadgen import parse_prometheus_text

        server = start_server(
            tmp_path, workers=2, metrics_address="127.0.0.1:0"
        )
        try:
            client = ServiceClient(server.address)
            ping = client.wait_ready()
            assert ping["metrics_url"] == server.metrics_url

            submitted = client.submit(MANIFEST)
            records = list(
                client.results(submitted["submission"], follow=True)
            )
            assert len(records) == 5

            # Every result record carries a valid trace whose root
            # starts at the enqueue instant (offset 0.0) and covers
            # queue wait plus at least one compile attempt.
            for record in records:
                doc = record["trace"]
                validate_trace_doc(doc)
                root = [
                    s for s in doc["spans"] if s["parent"] is None
                ][0]
                assert root["start_s"] == 0.0
                names = {s["name"] for s in doc["spans"]}
                assert "queue.wait" in names
                assert "compile" in names
                assert "cache.lookup" in names
                # Span time is bounded by the traced wall time.
                assert span_seconds(doc, "compile") <= (
                    doc["duration_s"] + 1e-6
                )

            # A compiled (non-hit) job records per-pass child spans
            # under its compile attempt.
            compiled = [
                r for r in records if not r.get("cache_hit")
            ]
            assert compiled
            compile_children = set()
            for record in compiled:
                doc = record["trace"]
                (attempt,) = [
                    s for s in doc["spans"] if s["name"] == "compile"
                ]
                compile_children |= {
                    s["name"]
                    for s in doc["spans"]
                    if s["parent"] == attempt["id"]
                }
            assert compile_children  # the pipeline's pass names

            # The trace op returns the same document by job id.
            job_id = submitted["job_ids"][0]
            reply = client.trace(job_id)
            validate_trace_doc(reply["trace"])
            assert reply["trace"]["job"] == job_id
            with pytest.raises(ServiceError, match="unknown job"):
                client.trace("s999999-00000")

            # Status drills into per-job attempts / waits / span time.
            status = client.status(submitted["submission"])
            assert len(status["jobs"]) == 5
            for job in status["jobs"]:
                assert job["status"] == "done"
                assert job["attempts"] == 1
                assert job["queue_wait_s"] >= 0.0
                assert job["span_time_s"] > 0.0

            # The metrics op and GET /metrics agree with the workload.
            metrics = client.metrics()
            assert metrics["role"] == "daemon"
            with urllib.request.urlopen(
                server.metrics_url, timeout=5.0
            ) as scrape:
                series = parse_prometheus_text(
                    scrape.read().decode("utf-8")
                )
            completed = sum(
                value
                for name, value in series.items()
                if name.startswith("repro_jobs_completed_total")
            )
            assert completed == 5
            assert series["repro_submissions_total"] == 1
            assert series["repro_jobs_submitted_total"] == 5
            assert series["repro_queue_wait_seconds_count"] == 5
            pass_samples = sum(
                value
                for name, value in series.items()
                if name.startswith("repro_pass_duration_seconds_count")
            )
            assert pass_samples > 0
            assert any(
                name.startswith("repro_cache_requests_total")
                for name in series
            )
            # The op's JSON document renders to the same exposition.
            assert (
                sum(
                    sample["value"]
                    for family in metrics["metrics"]["families"]
                    if family["name"] == "repro_jobs_completed_total"
                    for sample in family["samples"]
                )
                == 5
            )
        finally:
            server.stop(drain=False)

    def test_warm_resubmission_traces_the_cache_hit_tier(
        self, tmp_path
    ):
        server = start_server(tmp_path, workers=1)
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            first = client.submit(SECOND_MANIFEST)
            client.results_document(first["submission"])
            second = client.submit(SECOND_MANIFEST)
            [record] = list(
                client.results(second["submission"], follow=True)
            )
            assert record["cache_hit"] is True
            doc = record["trace"]
            (lookup,) = [
                s for s in doc["spans"] if s["name"] == "cache.lookup"
            ]
            assert lookup["attrs"]["hit"] is True
            assert lookup["attrs"]["tier"] == "memory"
            tier_probes = [
                s
                for s in doc["spans"]
                if s["parent"] == lookup["id"]
            ]
            assert [s["name"] for s in tier_probes] == ["cache.memory"]
            # A cache hit never replays a stale compile timeline.
            assert "compile" not in {
                s["name"] for s in doc["spans"]
            }
        finally:
            server.stop(drain=False)

    def test_retried_job_traces_every_attempt(
        self, tmp_path, monkeypatch
    ):
        calls = {}
        real = execute_job_on_circuit

        def flaky(job, circuit):
            count = calls.get(job.label, 0) + 1
            calls[job.label] = count
            if count == 1:
                raise RuntimeError("transient")
            return real(job, circuit)

        monkeypatch.setattr(
            engine_module, "execute_job_on_circuit", flaky
        )
        server = start_server(
            tmp_path, workers=1, retries=2, backoff=0.0
        )
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            submitted = client.submit(SECOND_MANIFEST)
            [record] = list(
                client.results(submitted["submission"], follow=True)
            )
            assert record["status"] == "ok"
            assert record["attempts"] == 2
            doc = record["trace"]
            attempts = [
                s for s in doc["spans"] if s["name"] == "compile"
            ]
            assert [s["attrs"]["attempt"] for s in attempts] == [1, 2]
            assert attempts[0]["attrs"]["error"] == "RuntimeError"
            assert "error" not in attempts[1]["attrs"]
            status = client.status(submitted["submission"])
            assert status["jobs"][0]["attempts"] == 2
            metrics = client.metrics()
            retry_total = sum(
                sample["value"]
                for family in metrics["metrics"]["families"]
                if family["name"] == "repro_job_retries_total"
                for sample in family["samples"]
            )
            assert retry_total == 1
        finally:
            server.stop(drain=False)

    def test_trace_cli_renders_a_tree(self, tmp_path, capsys):
        from repro.cli import main

        server = start_server(tmp_path, workers=1)
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            submitted = client.submit(SECOND_MANIFEST)
            client.results_document(submitted["submission"])
            job_id = submitted["job_ids"][0]
            assert (
                main(["trace", job_id, "--connect", server.address])
                == 0
            )
            out = capsys.readouterr().out
            assert out.startswith(f"trace {job_id}")
            assert "queue.wait" in out
            assert "compile" in out
            assert (
                main(
                    [
                        "trace",
                        job_id,
                        "--connect",
                        server.address,
                        "--json",
                    ]
                )
                == 0
            )
            doc = json.loads(capsys.readouterr().out)
            assert doc["job"] == job_id
            assert (
                main(
                    [
                        "status",
                        submitted["submission"],
                        "--connect",
                        server.address,
                    ]
                )
                == 0
            )
            status_out = capsys.readouterr().out
            assert job_id in status_out
            assert "attempts 1" in status_out
        finally:
            server.stop(drain=False)

    def test_bad_metrics_listen_spec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="metrics listen"):
            ServiceServer(
                str(tmp_path / "queue"),
                "127.0.0.1:0",
                metrics_address="not-a-port",
            )
