"""Unit tests for hardware parameters and the movement-time law."""

import math

import pytest

from repro.hardware import DEFAULT_PARAMS, UM, US, HardwareParams


class TestTableOneValues:
    """The defaults must match the paper's Table 1 exactly."""

    def test_fidelities(self):
        p = DEFAULT_PARAMS
        assert p.fidelity_1q == 0.9999
        assert p.fidelity_cz == 0.995
        assert p.fidelity_excitation == 0.9975
        assert p.fidelity_transfer == 0.999

    def test_durations(self):
        p = DEFAULT_PARAMS
        assert p.duration_1q == pytest.approx(1e-6)
        assert p.duration_cz == pytest.approx(270e-9)
        assert p.duration_transfer == pytest.approx(15e-6)

    def test_motion_constants(self):
        p = DEFAULT_PARAMS
        assert p.acceleration == 2750.0
        assert p.t2 == 1.5
        assert p.site_pitch == pytest.approx(15e-6)
        assert p.zone_gap == pytest.approx(30e-6)


class TestMoveDuration:
    def test_paper_example_27_5um(self):
        """Table 1: 27.5 um takes 100 us."""
        assert DEFAULT_PARAMS.move_duration(27.5 * UM) == pytest.approx(
            100 * US, rel=1e-9
        )

    def test_paper_example_110um(self):
        """Table 1: 110 um takes 200 us."""
        assert DEFAULT_PARAMS.move_duration(110 * UM) == pytest.approx(
            200 * US, rel=1e-9
        )

    def test_zero_distance_zero_time(self):
        assert DEFAULT_PARAMS.move_duration(0.0) == 0.0

    def test_monotone_in_distance(self):
        d1 = DEFAULT_PARAMS.move_duration(10 * UM)
        d2 = DEFAULT_PARAMS.move_duration(40 * UM)
        assert d2 > d1
        # sqrt scaling: 4x distance = 2x time
        assert d2 == pytest.approx(2 * d1)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PARAMS.move_duration(-1.0)

    def test_sqrt_law(self):
        p = DEFAULT_PARAMS
        for dist in (5 * UM, 50 * UM, 500 * UM):
            assert p.move_duration(dist) == pytest.approx(
                math.sqrt(dist / p.acceleration)
            )


class TestValidation:
    def test_fidelity_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            HardwareParams(fidelity_cz=1.5)
        with pytest.raises(ValueError):
            HardwareParams(fidelity_cz=0.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            HardwareParams(duration_cz=0.0)

    def test_pitch_below_spacing_rejected(self):
        with pytest.raises(ValueError):
            HardwareParams(site_pitch=5e-6)

    def test_custom_params_frozen(self):
        p = HardwareParams()
        with pytest.raises(Exception):
            p.t2 = 3.0
