"""Fail-soft engine execution: error policies, streaming, failure payloads.

The poison job used throughout compiles a circuit holding an
out-of-range gate (appended past the bounds check), which raises a
``CircuitError`` inside the compile path -- in-process and inside
process-pool workers alike, since the circuit pickles cleanly.
"""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.engine import (
    CompilationEngine,
    CompileJob,
    EngineError,
    MemoryCache,
)
from repro.schedule.serialize import program_to_dict


def poison_circuit() -> Circuit:
    """A circuit that digests and pickles fine but cannot compile."""
    circuit = Circuit(4, name="poison")
    circuit.h(0)
    circuit.cz(0, 1)
    circuit._ops.append(Gate("cz", (0, 9)))  # bypass the bounds check
    circuit._cached_digest = None
    return circuit


def poison_job() -> CompileJob:
    return CompileJob(scenario="pm_with_storage", circuit=poison_circuit())


def good_job(seed: int = 0) -> CompileJob:
    return CompileJob(
        scenario="pm_with_storage", benchmark="BV-14", seed=seed
    )


class TestCollectPolicy:
    def test_serial_batch_completes_around_failure(self):
        jobs = [good_job(0), poison_job(), good_job(1)]
        engine = CompilationEngine(on_error="collect")
        results = engine.run(jobs)
        assert len(results) == 3
        assert [r.index for r in results] == [0, 1, 2]
        assert results[0].ok and results[2].ok
        assert results[0].program is not None

        failed = results[1]
        assert not failed.ok
        assert failed.program is None
        assert failed.fidelity is None
        assert failed.error.index == 1
        assert failed.error.error_type == "CircuitError"
        assert "out of range" in failed.error.message
        assert len(failed.error.key) == 64
        assert failed.error.label == failed.job.label
        assert "job 1" in failed.error.describe()
        assert failed.error.key[:16] in failed.error.describe()

    def test_parallel_survivors_bit_identical_to_clean_serial(self):
        good = [good_job(seed) for seed in range(4)]
        jobs = good[:2] + [poison_job()] + good[2:]
        engine = CompilationEngine(workers=3, on_error="collect")
        results = engine.run(jobs)
        assert sum(1 for r in results if not r.ok) == 1
        assert not results[2].ok

        clean = CompilationEngine().run(good)
        survivors = [r for r in results if r.ok]
        for survivor, reference in zip(survivors, clean):
            assert program_to_dict(survivor.program) == program_to_dict(
                reference.program
            )
            assert survivor.fidelity.total == reference.fidelity.total
            assert survivor.key == reference.key

    def test_hit_path_validation_failure_collected(self):
        cache = MemoryCache()
        engine = CompilationEngine(cache=cache, on_error="collect")
        unvalidated = CompileJob(
            scenario="pm_with_storage", benchmark="BV-14", validate=False
        )
        [cold] = engine.run([unvalidated])
        doc = cache.get(cold.key)
        doc["program"]["instructions"] = [
            entry
            for entry in doc["program"]["instructions"]
            if entry["kind"] != "rydberg"
        ]
        doc["validated"] = False
        cache.put(cold.key, doc)
        validated = CompileJob(
            scenario="pm_with_storage", benchmark="BV-14", validate=True
        )
        [failed, ok] = engine.run([validated, good_job(5)])
        assert not failed.ok
        assert failed.error.error_type == "ValidationError"
        assert ok.ok

    def test_progress_events_flag_failures(self):
        events = []
        engine = CompilationEngine(
            on_error="collect", progress=events.append
        )
        engine.run([good_job(0), poison_job()])
        assert [e.failed for e in sorted(events, key=lambda e: e.index)] == [
            False,
            True,
        ]


class TestRaisePolicy:
    def test_serial_error_names_index_and_key(self):
        jobs = [good_job(0), good_job(1), poison_job()]
        engine = CompilationEngine()
        with pytest.raises(EngineError, match="job 2") as excinfo:
            engine.run(jobs)
        failure = excinfo.value.failure
        assert failure.index == 2
        assert len(failure.key) == 64
        assert failure.key[:16] in str(excinfo.value)
        assert "poison" in str(excinfo.value)

    def test_parallel_failure_cancels_pending_futures(self):
        cache = MemoryCache()
        engine = CompilationEngine(cache=cache, workers=2)
        jobs = [poison_job()] + [good_job(seed) for seed in range(8)]
        with pytest.raises(EngineError, match="job 0") as excinfo:
            engine.run(jobs)
        assert excinfo.value.failure.index == 0
        # The poison job fails in microseconds while at most one real
        # compilation has started; everything queued behind it must be
        # cancelled, never compiled, never stored.
        assert cache.stats.stores <= 2

    def test_engine_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="on_error"):
            CompilationEngine(on_error="ignore")
        with pytest.raises(ValueError, match="on_error"):
            CompilationEngine().run([good_job()], on_error="ignore")
        # stream() must fail at the call site, not at the first next().
        with pytest.raises(ValueError, match="on_error"):
            CompilationEngine().stream([good_job()], on_error="ignore")

    def test_run_level_policy_overrides_engine_default(self):
        engine = CompilationEngine()  # default: raise
        results = engine.run(
            [poison_job(), good_job(0)], on_error="collect"
        )
        assert not results[0].ok
        assert results[1].ok


class TestStream:
    def test_stream_yields_every_job_with_indices(self):
        jobs = [good_job(seed) for seed in range(4)]
        engine = CompilationEngine(workers=2)
        streamed = list(engine.stream(jobs))
        assert {r.index for r in streamed} == {0, 1, 2, 3}
        for result in streamed:
            assert result.job is jobs[result.index]
            assert result.ok

    def test_stream_cache_hits_come_first(self):
        cache = MemoryCache()
        engine = CompilationEngine(cache=cache)
        warm = good_job(3)
        engine.run([warm])
        jobs = [good_job(0), good_job(1), warm]
        streamed = list(engine.stream(jobs))
        assert streamed[0].index == 2
        assert streamed[0].cache_hit
        assert not streamed[1].cache_hit

    def test_stream_collect_interleaves_failures(self):
        engine = CompilationEngine(on_error="collect")
        streamed = list(
            engine.stream([poison_job(), good_job(0), poison_job()])
        )
        assert len(streamed) == 3
        assert [r.ok for r in streamed] == [False, True, False]
        assert [r.error.index for r in streamed if not r.ok] == [0, 2]

    def test_run_equals_reordered_stream(self):
        jobs = [good_job(seed) for seed in range(3)]
        engine = CompilationEngine(workers=2)
        run_results = engine.run(jobs)
        streamed = sorted(engine.stream(jobs), key=lambda r: r.index)
        for a, b in zip(run_results, streamed):
            assert program_to_dict(a.program) == program_to_dict(b.program)
            assert a.key == b.key
