"""Unit tests for the gate model."""

import math

import pytest

from repro.circuits.gates import (
    GATE_SPECS,
    Gate,
    UnknownGateError,
    cp,
    cx,
    cz,
    gate_spec,
    h,
    normalize_angle,
    qubits_used,
    rz,
    rzz,
)


class TestGateSpecs:
    def test_registry_contains_core_gates(self):
        for name in ("h", "x", "rz", "cz", "cx", "cp", "rzz", "swap"):
            assert name in GATE_SPECS

    def test_cz_class_gates_are_diagonal_two_qubit(self):
        for spec in GATE_SPECS.values():
            if spec.cz_class:
                assert spec.num_qubits == 2
                assert spec.diagonal

    def test_cx_is_not_cz_class(self):
        assert not GATE_SPECS["cx"].cz_class

    def test_cz_is_cz_class(self):
        assert GATE_SPECS["cz"].cz_class

    def test_rz_is_diagonal_one_qubit(self):
        spec = GATE_SPECS["rz"]
        assert spec.diagonal and spec.num_qubits == 1

    def test_h_is_not_diagonal(self):
        assert not GATE_SPECS["h"].diagonal

    def test_gate_spec_lookup_case_insensitive(self):
        assert gate_spec("CZ") is GATE_SPECS["cz"]

    def test_gate_spec_unknown_raises(self):
        with pytest.raises(UnknownGateError):
            gate_spec("frobnicate")


class TestGateConstruction:
    def test_basic_cz(self):
        gate = cz(0, 1)
        assert gate.qubits == (0, 1)
        assert gate.is_two_qubit
        assert gate.is_cz_class

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownGateError):
            Gate("bogus", (0,))

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            Gate("cz", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0, 1))

    def test_duplicate_qubits_raise(self):
        with pytest.raises(ValueError):
            Gate("cz", (2, 2))

    def test_negative_qubit_raises(self):
        with pytest.raises(ValueError):
            Gate("h", (-1,))

    def test_wrong_param_count_raises(self):
        with pytest.raises(ValueError):
            Gate("rz", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0,), (0.5,))

    def test_name_is_lowercased(self):
        assert Gate("H", (0,)).name == "h"

    def test_gates_are_hashable_and_equal_by_value(self):
        assert cz(0, 1) == cz(0, 1)
        assert hash(cz(0, 1)) == hash(cz(0, 1))
        assert cz(0, 1) != cz(1, 2)

    def test_rzz_params(self):
        gate = rzz(0.25, 1, 2)
        assert gate.params == (0.25,)
        assert gate.is_cz_class

    def test_str_rendering(self):
        assert "cz" in str(cz(0, 1))
        assert "0.5" in str(rz(0.5, 3))


class TestGateQueries:
    def test_overlaps(self):
        assert cz(0, 1).overlaps(cz(1, 2))
        assert not cz(0, 1).overlaps(cz(2, 3))
        assert h(0).overlaps(cz(0, 5))

    def test_remapped(self):
        gate = cp(0.1, 0, 1).remapped({0: 4, 1: 7})
        assert gate.qubits == (4, 7)
        assert gate.params == (0.1,)

    def test_qubits_used(self):
        assert qubits_used([cz(0, 1), h(3), cx(1, 2)]) == {0, 1, 2, 3}

    def test_diagonal_flags(self):
        assert rz(0.3, 0).is_diagonal
        assert not h(0).is_diagonal
        assert cz(0, 1).is_diagonal


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(1.0) == pytest.approx(1.0)

    def test_wraps_positive(self):
        assert normalize_angle(2 * math.pi + 0.5) == pytest.approx(0.5)

    def test_wraps_negative(self):
        assert normalize_angle(-2 * math.pi - 0.5) == pytest.approx(-0.5)

    def test_pi_maps_to_pi(self):
        assert normalize_angle(math.pi) == pytest.approx(math.pi)

    def test_minus_pi_maps_to_pi(self):
        assert normalize_angle(-math.pi) == pytest.approx(math.pi)
