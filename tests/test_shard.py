"""Sharding: deterministic partition, result documents, merge."""

import pytest

from repro.baselines import EnolaConfig
from repro.engine import (
    BATCH_RESULTS_VERSION,
    CompilationEngine,
    CompileJob,
    MemoryCache,
    ShardError,
    ShardPlan,
    docs_equal_modulo_timing,
    job_record,
    manifest_digest,
    merge_result_docs,
    results_doc,
    strip_timing,
)

LIGHT_ENOLA = EnolaConfig(seed=0, mis_restarts=1, sa_iterations_per_qubit=0)


def suite_jobs():
    return [
        CompileJob(
            scenario=scenario,
            benchmark=key,
            enola_config=LIGHT_ENOLA,
        )
        for key in ("BV-14", "QSIM-rand-0.3-10")
        for scenario in ("enola", "pm_non_storage", "pm_with_storage")
    ]


def run_full(jobs, digest):
    results = CompilationEngine(cache=MemoryCache()).run(jobs)
    return results_doc(
        results,
        manifest_digest=digest,
        total_jobs=len(jobs),
        wall_time_s=1.0,
        on_error="raise",
    )


def run_shard(jobs, digest, plan):
    pairs = plan.select(jobs)
    engine = CompilationEngine(cache=MemoryCache())
    results = engine.run([job for _, job in pairs])
    return results_doc(
        results,
        manifest_digest=digest,
        total_jobs=len(jobs),
        wall_time_s=0.5,
        on_error="raise",
        shard=plan,
        global_indices=[index for index, _ in pairs],
    )


class TestShardPlan:
    def test_parse_round_trip(self):
        plan = ShardPlan.parse("2/4")
        assert (plan.index, plan.count) == (2, 4)
        assert plan.spec == "2/4"
        assert ShardPlan.parse(" 1/1 ").count == 1

    @pytest.mark.parametrize(
        "spec", ["", "x/2", "1/2/3", "0/2", "3/2", "1/0", "-1/2"]
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ShardError):
            ShardPlan.parse(spec)

    def test_select_partitions_disjointly(self):
        items = [f"job{i}" for i in range(10)]
        seen: dict[int, str] = {}
        for index in range(1, 4):
            pairs = ShardPlan(index=index, count=3).select(items)
            for position, item in pairs:
                assert position not in seen  # disjoint
                assert items[position] is item
                assert position % 3 == index - 1
                seen[position] = item
        assert sorted(seen) == list(range(10))  # complete

    def test_single_shard_is_identity(self):
        items = list(range(5))
        assert ShardPlan(index=1, count=1).select(items) == list(
            enumerate(items)
        )

    def test_shard_counts_sum_to_expanded_manifest_total(self):
        # Property: for any shard count, sharding happens on the
        # *expanded* job list, so the per-shard counts always sum to
        # the unsharded total -- including manifests whose entries
        # multiply out through 'backends' lists, wildcard benchmarks
        # and defaults.  A round-robin over raw manifest entries would
        # drop the remainder of the expansion.
        import random

        from repro.engine import parse_manifest

        rng = random.Random(7)
        backends = ["powermove", "powermove-noreorder", "enola", "atomique"]
        for trial in range(25):
            entries = []
            for _ in range(rng.randrange(1, 6)):
                entry = {"benchmark": rng.choice(["BV-14", "*", "QFT-18"])}
                style = rng.randrange(3)
                if style == 0:
                    entry["backends"] = rng.sample(
                        backends, rng.randrange(1, len(backends) + 1)
                    )
                elif style == 1:
                    entry["scenarios"] = ["enola", "pm_with_storage"]
                entries.append(entry)
            doc = {"jobs": entries}
            if rng.random() < 0.5:
                doc["defaults"] = {"backends": ["powermove", "enola"]}
            jobs = parse_manifest(doc)
            for count in (1, 2, 3, 5, 7, len(jobs) + 1):
                selected = [
                    ShardPlan(index=i, count=count).select(jobs)
                    for i in range(1, count + 1)
                ]
                assert sum(len(pairs) for pairs in selected) == len(jobs), (
                    trial,
                    count,
                )
                covered = sorted(
                    position for pairs in selected for position, _ in pairs
                )
                assert covered == list(range(len(jobs)))


class TestManifestDigest:
    def test_formatting_insensitive(self):
        assert manifest_digest(
            {"jobs": [{"benchmark": "BV-14"}], "defaults": {"seed": 1}}
        ) == manifest_digest(
            {"defaults": {"seed": 1}, "jobs": [{"benchmark": "BV-14"}]}
        )

    def test_content_sensitive(self):
        assert manifest_digest(
            {"jobs": [{"benchmark": "BV-14"}]}
        ) != manifest_digest({"jobs": [{"benchmark": "BV-50"}]})


class TestMergeProperty:
    @pytest.mark.parametrize("count", [2, 3])
    def test_union_of_shards_equals_unsharded(self, count):
        jobs = suite_jobs()
        digest = manifest_digest({"jobs": "synthetic"})
        full = run_full(jobs, digest)
        shards = [
            run_shard(jobs, digest, ShardPlan(index=i, count=count))
            for i in range(1, count + 1)
        ]
        assert sum(doc["num_jobs"] for doc in shards) == len(jobs)
        merged = merge_result_docs(shards)
        assert docs_equal_modulo_timing(merged, full)
        assert strip_timing(merged) == strip_timing(full)
        assert [r["index"] for r in merged["results"]] == list(
            range(len(jobs))
        )
        assert merged["wall_time_s"] == pytest.approx(0.5 * count)

    def test_merge_of_full_run_is_idempotent(self):
        jobs = suite_jobs()[:3]
        digest = manifest_digest({"jobs": "synthetic-small"})
        full = run_full(jobs, digest)
        assert docs_equal_modulo_timing(merge_result_docs([full]), full)


class TestMergeValidation:
    def _shards(self):
        jobs = suite_jobs()[:4]
        digest = manifest_digest({"jobs": "validation"})
        return jobs, digest, [
            run_shard(jobs, digest, ShardPlan(index=i, count=2))
            for i in (1, 2)
        ]

    def test_missing_shard_rejected(self):
        _, _, shards = self._shards()
        with pytest.raises(ShardError, match="missing"):
            merge_result_docs([shards[0]])

    def test_duplicate_shard_rejected(self):
        _, _, shards = self._shards()
        with pytest.raises(ShardError, match="duplicate job index"):
            merge_result_docs([shards[0], shards[0], shards[1]])

    def test_manifest_mismatch_rejected(self):
        jobs, digest, shards = self._shards()
        other = run_shard(
            jobs,
            manifest_digest({"jobs": "different"}),
            ShardPlan(index=2, count=2),
        )
        with pytest.raises(ShardError, match="manifest digest"):
            merge_result_docs([shards[0], other])

    def test_version_mismatch_rejected(self):
        _, _, shards = self._shards()
        stale = dict(shards[1], version=BATCH_RESULTS_VERSION - 1)
        with pytest.raises(ShardError, match="version"):
            merge_result_docs([shards[0], stale])

    def test_empty_merge_rejected(self):
        with pytest.raises(ShardError, match="nothing to merge"):
            merge_result_docs([])


class TestRecords:
    def test_error_record_shape(self):
        from test_failsoft import poison_job

        engine = CompilationEngine(on_error="collect")
        [result] = engine.run([poison_job()])
        record = job_record(result, 7)
        assert record["index"] == 7
        assert record["status"] == "error"
        assert record["error"]["type"] == "CircuitError"
        assert "out of range" in record["error"]["message"]
        assert "fidelity" not in record

    def test_record_carries_arch_strategies_and_auto_choice(self):
        jobs = [
            CompileJob(
                benchmark="BV-14",
                backend="powermove",
                arch="wide-storage",
                strategies={"placement": "spiral"},
            ),
            CompileJob(
                benchmark="BV-14", backend="auto", arch="no-storage"
            ),
        ]
        results = CompilationEngine(cache=MemoryCache()).run(jobs)
        first = job_record(results[0], 0)
        assert first["arch"] == "wide-storage"
        assert first["strategies"] == {"placement": "spiral"}
        assert "auto_backend" not in first
        second = job_record(results[1], 1)
        assert second["arch"] == "no-storage"
        assert second["auto_backend"] == "powermove-nonstorage"

    def test_strip_timing_ignores_only_volatile_fields(self):
        jobs = suite_jobs()[:1]
        digest = manifest_digest({"jobs": "timing"})
        a = run_full(jobs, digest)
        # Timing and cache-occupancy differences (a warm rerun on a
        # shared cache) must not break the equivalence...
        b = {**a, "wall_time_s": 99.0, "cache_hits": 1, "cache_misses": 0}
        b["results"] = [
            {**record, "compile_time_s": 99.0, "cache_hit": True}
            for record in a["results"]
        ]
        assert docs_equal_modulo_timing(a, b)
        # ...but any compiled-output difference must.
        c = {**a, "results": [
            {**record, "fidelity": 0.0} for record in a["results"]
        ]}
        assert not docs_equal_modulo_timing(a, c)


class TestTraceVolatility:
    def test_strip_timing_drops_the_service_trace(self):
        """Service records carry a per-job span document; it is pure
        wall-clock measurement, so batch-vs-service doc equivalence
        must hold with and without it."""
        record = {
            "index": 0,
            "status": "ok",
            "benchmark": "BV-14",
            "compile_time_s": 0.5,
            "cache_hit": False,
            "trace": {
                "format": "repro-trace",
                "version": 1,
                "duration_s": 0.5,
                "spans": [],
            },
        }
        bare = {"index": 0, "status": "ok", "benchmark": "BV-14"}
        with_trace = {"results": [record]}
        without = {"results": [bare]}
        assert strip_timing(with_trace) == strip_timing(without)
        assert "trace" not in strip_timing(with_trace)["results"][0]
        assert docs_equal_modulo_timing(with_trace, without)
