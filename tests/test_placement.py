"""Unit tests for initial placement (row-major and annealed)."""

import random

import pytest

from repro.baselines.placement import (
    annealed_layout,
    interaction_weights,
    row_major_layout,
)
from repro.circuits import Circuit
from repro.circuits.generators import qaoa_regular
from repro.hardware import Zone, ZonedArchitecture


@pytest.fixture
def arch():
    return ZonedArchitecture(4, 4, 4, 8)


def layout_cost(layout, weights):
    import math

    total = 0.0
    for (a, b), w in weights.items():
        xa, ya = layout.position_of(a)
        xb, yb = layout.position_of(b)
        total += w * math.hypot(xa - xb, ya - yb)
    return total


class TestInteractionWeights:
    def test_counts_multiplicity(self):
        qc = Circuit(3)
        qc.cz(0, 1)
        qc.cz(1, 0)
        qc.cz(1, 2)
        weights = interaction_weights(qc)
        assert weights[(0, 1)] == 2
        assert weights[(1, 2)] == 1

    def test_empty_for_1q_circuit(self):
        qc = Circuit(2)
        qc.h(0)
        assert interaction_weights(qc) == {}


class TestRowMajor:
    def test_places_in_requested_zone(self, arch):
        layout = row_major_layout(arch, 5, Zone.STORAGE)
        assert all(layout.zone_of(q) is Zone.STORAGE for q in range(5))


class TestAnnealed:
    def test_all_qubits_placed_distinctly(self, arch):
        qc = qaoa_regular(10, degree=3, seed=0)
        layout = annealed_layout(
            arch, qc, rng=random.Random(0), iterations_per_qubit=30
        )
        assert layout.num_qubits == 10
        sites = [layout.site_of(q) for q in range(10)]
        assert len(set(sites)) == 10
        layout.validate()

    def test_annealing_improves_over_row_major(self, arch):
        """On a structured instance annealing should not be worse."""
        qc = Circuit(16)
        # A ring: row-major placement leaves the wrap-around edge long.
        for q in range(16):
            qc.cz(q, (q + 1) % 16)
        weights = interaction_weights(qc)
        base = layout_cost(row_major_layout(arch, 16), weights)
        annealed = layout_cost(
            annealed_layout(
                arch, qc, rng=random.Random(1), iterations_per_qubit=200
            ),
            weights,
        )
        assert annealed <= base

    def test_gate_free_circuit_falls_back(self, arch):
        qc = Circuit(4)
        qc.h(0)
        layout = annealed_layout(arch, qc, rng=random.Random(0))
        assert layout == row_major_layout(arch, 4)

    def test_too_many_qubits_rejected(self):
        arch = ZonedArchitecture(2, 2)
        qc = Circuit(9)
        qc.cz(0, 1)
        with pytest.raises(ValueError):
            annealed_layout(arch, qc)

    def test_deterministic_with_seed(self, arch):
        qc = qaoa_regular(8, degree=3, seed=2)
        a = annealed_layout(
            arch, qc, rng=random.Random(5), iterations_per_qubit=20
        )
        b = annealed_layout(
            arch, qc, rng=random.Random(5), iterations_per_qubit=20
        )
        assert a == b
