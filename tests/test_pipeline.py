"""Tests for the pass pipeline, the backend registry and the facades."""

import pytest

from repro.baselines import (
    AtomiqueConfig,
    AtomiqueLikeCompiler,
    EnolaCompiler,
    EnolaConfig,
)
from repro.circuits.generators import bernstein_vazirani, qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.engine import CompileJob, JobError, effective_config
from repro.pipeline import (
    REGISTRY,
    BackendError,
    BackendRegistry,
    BackendSpec,
    CompileContext,
    Pipeline,
    create_compiler,
    get_backend,
)
from repro.schedule.serialize import program_digest

FAST_ENOLA = EnolaConfig(seed=0, mis_restarts=1, sa_iterations_per_qubit=5)
FAST_ATOMIQUE = AtomiqueConfig(seed=0, sa_iterations_per_qubit=5)


class _AddOne:
    name = "add_one"

    def run(self, ctx):
        ctx.counters["value"] = ctx.counters.get("value", 0) + 1


class TestPipeline:
    def test_runs_passes_in_order_with_timings(self):
        class First:
            name = "first"

            def run(self, ctx):
                ctx.counters["order"] = ["first"]

        class Second:
            name = "second"

            def run(self, ctx):
                ctx.counters["order"].append("second")

        pipeline = Pipeline([First(), Second()], name="demo")
        ctx = CompileContext(circuit=None, config=None)
        ctx = pipeline.run(ctx)
        assert ctx.counters["order"] == ["first", "second"]
        assert list(ctx.pass_timings) == ["first", "second"]
        assert all(t >= 0.0 for t in ctx.pass_timings.values())

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError, match="at least one pass"):
            Pipeline([])
        with pytest.raises(ValueError, match="duplicate pass name"):
            Pipeline([_AddOne(), _AddOne()])

    def test_pass_names_property(self):
        pipeline = Pipeline([_AddOne()])
        assert pipeline.pass_names == ("add_one",)
        assert len(pipeline) == 1

    def test_context_require_names_missing_field(self):
        ctx = CompileContext(circuit=None, config=None)
        with pytest.raises(ValueError, match="native"):
            ctx.require("native")


class TestRegistry:
    def test_default_backends_registered(self):
        names = REGISTRY.names()
        for expected in (
            "powermove",
            "powermove-nonstorage",
            "powermove-noreorder",
            "powermove-fifo-grouping",
            "powermove-nointra",
            "enola",
            "enola-naive-storage",
            "atomique",
        ):
            assert expected in names

    def test_unknown_backend_error_lists_known(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("warp-drive")

    def test_no_silent_reregistration(self):
        registry = BackendRegistry()
        spec = get_backend("powermove")
        registry.register(spec)
        with pytest.raises(BackendError, match="already registered"):
            registry.register(spec)
        registry.register(spec, replace=True)
        assert len(registry) == 1

    def test_create_rejects_wrong_config_type(self):
        with pytest.raises(BackendError, match="expects a"):
            create_compiler("powermove", FAST_ENOLA)

    def test_explicit_config_is_normalised_to_backend(self):
        # The backend name wins over contradicting override fields; the
        # caller's seed/num_aods survive.
        compiler = create_compiler(
            "powermove-nonstorage",
            PowerMoveConfig(use_storage=True, seed=7, num_aods=2),
        )
        assert compiler.config.use_storage is False
        assert compiler.config.seed == 7
        assert compiler.config.num_aods == 2
        assert (
            create_compiler(
                "powermove-noreorder", PowerMoveConfig(seed=1)
            ).config.reorder_stages
            is False
        )
        assert (
            create_compiler(
                "enola-naive-storage", EnolaConfig(seed=2)
            ).config.naive_storage
            is True
        )

    def test_config_knobs_reflect_forced_fields(self):
        knobs = get_backend("powermove-noreorder").config_knobs
        assert knobs["reorder_stages"] is False
        assert knobs["use_storage"] is True
        assert get_backend("enola-naive-storage").config_knobs[
            "naive_storage"
        ]

    def test_ablation_backend_differs_from_plain(self):
        # BV circuits are too sequential for the ablations to matter;
        # QAOA has enough parallel structure that each one changes the
        # schedule.
        circuit = qaoa_regular(12, degree=3, seed=1)
        plain = create_compiler("powermove").compile(circuit)
        ablated = create_compiler("powermove-noreorder").compile(circuit)
        assert plain.program.num_stages == ablated.program.num_stages
        assert (
            program_digest(plain.program)
            != program_digest(ablated.program)
        )


class TestFacadeEquivalence:
    """The facades and the registry produce bit-identical programs."""

    def test_powermove_facade_matches_registry(self):
        circuit = qaoa_regular(10, degree=3, seed=1)
        for use_storage, backend in (
            (True, "powermove"),
            (False, "powermove-nonstorage"),
        ):
            config = PowerMoveConfig(use_storage=use_storage, seed=0)
            facade = PowerMoveCompiler(config).compile(circuit)
            direct = create_compiler(backend, config).compile(circuit)
            assert program_digest(facade.program) == program_digest(
                direct.program
            )

    def test_enola_facade_matches_registry(self):
        circuit = bernstein_vazirani(8, seed=0)
        facade = EnolaCompiler(FAST_ENOLA).compile(circuit)
        direct = create_compiler("enola", FAST_ENOLA).compile(circuit)
        assert program_digest(facade.program) == program_digest(
            direct.program
        )

    def test_atomique_facade_matches_registry(self):
        circuit = bernstein_vazirani(6, seed=0)
        facade = AtomiqueLikeCompiler(FAST_ATOMIQUE).compile(circuit)
        direct = create_compiler("atomique", FAST_ATOMIQUE).compile(
            circuit
        )
        assert program_digest(facade.program) == program_digest(
            direct.program
        )

    def test_facade_backend_names(self):
        assert PowerMoveCompiler().backend_name == "powermove"
        assert (
            PowerMoveCompiler(
                PowerMoveConfig(use_storage=False)
            ).backend_name
            == "powermove-nonstorage"
        )
        assert EnolaCompiler().backend_name == "enola"
        assert (
            EnolaCompiler(
                EnolaConfig(naive_storage=True)
            ).backend_name
            == "enola-naive-storage"
        )
        assert AtomiqueLikeCompiler().backend_name == "atomique"


class TestBackendJobs:
    def test_job_accepts_backend_name(self):
        job = CompileJob(backend="atomique", benchmark="BV-14")
        assert job.backend_name == "atomique"
        assert job.scenario_key == "atomique"
        assert job.label.startswith("BV-14:atomique")

    def test_job_scenario_maps_to_backend(self):
        job = CompileJob(scenario="pm_with_storage", benchmark="BV-14")
        assert job.backend_name == "powermove"
        assert (
            CompileJob(
                scenario="pm_non_storage", benchmark="BV-14"
            ).backend_name
            == "powermove-nonstorage"
        )

    def test_job_needs_exactly_one_of_scenario_backend(self):
        with pytest.raises(JobError, match="scenario or backend"):
            CompileJob(benchmark="BV-14")
        with pytest.raises(JobError, match="scenario or backend"):
            CompileJob(
                scenario="enola", backend="enola", benchmark="BV-14"
            )

    def test_job_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            CompileJob(backend="warp", benchmark="BV-14")

    def test_effective_config_for_backend_jobs(self):
        job = CompileJob(
            backend="powermove-nointra", benchmark="BV-14", seed=4
        )
        config = effective_config(job)
        assert isinstance(config, PowerMoveConfig)
        assert config.intra_stage_ordering is False
        assert config.seed == 4
        atomique = effective_config(
            CompileJob(backend="atomique", benchmark="BV-14", seed=9)
        )
        assert isinstance(atomique, AtomiqueConfig)
        assert atomique.seed == 9

    def test_per_pass_timings_in_stats(self):
        circuit = bernstein_vazirani(6, seed=0)
        result = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(
            circuit
        )
        timings = result.stats["pass_timings"]
        assert list(timings) == [
            "transpile",
            "block_partition",
            "architecture",
            "initial_layout",
            "stage_schedule",
            "continuous_route",
            "collmove_batch",
            "emit_program",
        ]
        assert all(value >= 0.0 for value in timings.values())


class TestCustomBackend:
    def test_registering_a_variant_end_to_end(self):
        spec = get_backend("powermove")
        registry = BackendRegistry()
        registry.register(
            BackendSpec(
                name="powermove-degree",
                description="static degree-ordered colouring",
                config_cls=spec.config_cls,
                pipeline=spec.pipeline,
                variant_name=spec.variant_name,
                effective_config=lambda override, seed, num_aods: (
                    PowerMoveConfig(
                        seed=seed,
                        num_aods=num_aods,
                        stage_ordering="degree",
                    )
                ),
            )
        )
        compiler = registry.create("powermove-degree")
        assert compiler.config.stage_ordering == "degree"
        result = compiler.compile(bernstein_vazirani(6, seed=0))
        assert result.program.num_stages > 0
