"""Tests for the Atomique-style fixed-array SWAP-insertion baseline."""

import numpy as np
import pytest

from repro.baselines import (
    AtomiqueConfig,
    AtomiqueLikeCompiler,
    EnolaCompiler,
    EnolaConfig,
)
from repro.circuits import Circuit, transpile_to_native
from repro.circuits.generators import qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import evaluate_program
from repro.schedule import validate_program
from repro.verify.statevector import (
    StateVector,
    simulate_circuit,
    simulate_program_gates,
)

FAST = AtomiqueConfig(seed=0, sa_iterations_per_qubit=10)
FAST_ENOLA = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


def permute_state(state: StateVector, mapping: dict[int, int]) -> StateVector:
    """Move logical qubit q's axis onto atom ``mapping[q]``'s axis."""
    n = state.num_qubits
    psi = state.state.reshape([2] * n)
    # numpy axis k <-> qubit n-1-k.
    sources = [n - 1 - logical for logical in range(n)]
    targets = [n - 1 - mapping[logical] for logical in range(n)]
    psi = np.moveaxis(psi, sources, targets)
    return StateVector(n, psi.reshape(-1))


class TestMechanics:
    def test_adjacent_gate_needs_no_swap(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        result = AtomiqueLikeCompiler(FAST).compile(qc)
        assert result.program.metadata["swaps_inserted"] == 0
        validate_program(result.program)

    def test_distant_gate_inserts_swaps(self):
        # Row-major homes on a 3x3 grid: qubits 0 and 8 are far apart.
        qc = Circuit(9)
        qc.cz(0, 8)
        config = AtomiqueConfig(seed=0, sa_iterations_per_qubit=0)
        result = AtomiqueLikeCompiler(config).compile(qc)
        assert result.program.metadata["swaps_inserted"] >= 1
        # Each swap adds 3 physical CZs on top of the logical gate.
        swaps = result.program.metadata["swaps_inserted"]
        assert result.program.num_two_qubit_gates == 1 + 3 * swaps
        validate_program(result.program)

    def test_structurally_valid_on_qaoa(self):
        qc = qaoa_regular(9, degree=4, seed=0)
        result = AtomiqueLikeCompiler(FAST).compile(qc)
        validate_program(result.program)

    def test_final_mapping_is_permutation(self):
        qc = qaoa_regular(9, degree=4, seed=0)
        result = AtomiqueLikeCompiler(FAST).compile(qc)
        mapping = result.program.metadata["final_mapping"]
        assert sorted(mapping) == list(range(9))
        assert sorted(mapping.values()) == list(range(9))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AtomiqueConfig(sa_iterations_per_qubit=-1)


class TestSemantics:
    """Correct up to the final logical->atom permutation."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_equivalent_modulo_mapping(self, seed):
        qc = qaoa_regular(8, degree=3, seed=seed)
        native = transpile_to_native(qc)
        result = AtomiqueLikeCompiler(FAST).compile(qc)
        mapping = result.program.metadata["final_mapping"]

        initial = StateVector.random(8, seed=seed + 10)
        want = permute_state(simulate_circuit(native, initial), mapping)
        got = simulate_program_gates(result.program, 8, initial)
        assert want.fidelity_with(got) == pytest.approx(1.0)

    def test_identity_mapping_when_no_swaps(self):
        qc = Circuit(4)
        qc.cz(0, 1)
        qc.cz(2, 3)
        result = AtomiqueLikeCompiler(FAST).compile(qc)
        mapping = result.program.metadata["final_mapping"]
        if result.program.metadata["swaps_inserted"] == 0:
            assert mapping == {q: q for q in range(4)}


class TestBaselineLadder:
    """Sec. 3.1's argument: SWAP insertion loses to movement, which
    loses to PowerMove."""

    @pytest.fixture(scope="class")
    def ladder(self):
        qc = qaoa_regular(12, degree=3, seed=1)
        atomique = AtomiqueLikeCompiler(FAST).compile(qc)
        enola = EnolaCompiler(FAST_ENOLA).compile(qc)
        pm = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(qc)
        return {
            "atomique": evaluate_program(atomique.program),
            "enola": evaluate_program(enola.program),
            "pm": evaluate_program(pm.program),
            "atomique_g2": atomique.program.num_two_qubit_gates,
            "enola_g2": enola.program.num_two_qubit_gates,
        }

    def test_swaps_inflate_two_qubit_count(self, ladder):
        assert ladder["atomique_g2"] > ladder["enola_g2"]

    def test_two_qubit_fidelity_ladder(self, ladder):
        """Enola's two-qubit fidelity advantage over Atomique (the 779x
        claim, direction and driver)."""
        assert ladder["enola"].two_qubit > ladder["atomique"].two_qubit

    def test_total_fidelity_ladder(self, ladder):
        assert (
            ladder["pm"].total
            > ladder["enola"].total
            > ladder["atomique"].total
        )

    def test_atomique_slowest(self, ladder):
        assert (
            ladder["atomique"].execution_time
            > ladder["enola"].execution_time
        )
