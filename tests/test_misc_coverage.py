"""Coverage of remaining corners: text tables, suite export, report,
rectangular machines, parameter sensitivity."""

import math
import os

import pytest

from repro.analysis.report import full_report
from repro.baselines import EnolaConfig
from repro.benchsuite import export_suite_qasm
from repro.circuits import parse_qasm
from repro.circuits.generators import qaoa_regular, qsim_random
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import FidelityModel, evaluate_program
from repro.hardware import HardwareParams, Layout, Zone, ZonedArchitecture
from repro.schedule import validate_program
from repro.utils.text import format_table

FAST = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(
            ["name", "value"], [["x", 1.5], ["longer", 2]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_float_formatting(self):
        text = format_table(["v"], [[0.0], [1e-9], [123456.0], [1.2345]])
        assert "0" in text
        assert "1e-09" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestSuiteExport:
    def test_exports_parseable_qasm(self, tmp_path):
        paths = export_suite_qasm(
            str(tmp_path), seed=0, keys=("BV-14", "QSIM-rand-0.3-10")
        )
        assert len(paths) == 2
        for path in paths:
            assert os.path.exists(path)
            with open(path) as handle:
                circuit = parse_qasm(handle.read())
            assert circuit.num_two_qubit_gates > 0

    def test_export_names_match_keys(self, tmp_path):
        (path,) = export_suite_qasm(str(tmp_path), keys=("VQE-30",))
        assert path.endswith("VQE-30.qasm")


class TestFullReport:
    def test_quick_report_contains_all_artifacts(self):
        text = full_report(
            keys=("BV-14",),
            enola_config=FAST,
            include_figures=True,
            figure6_families=("BV",),
        )
        assert "Table 2" in text
        assert "Table 3" in text
        assert "Figure 6" in text
        assert "Figure 7" in text

    def test_report_without_figures(self):
        text = full_report(
            keys=("BV-14",), enola_config=FAST, include_figures=False
        )
        assert "Figure" not in text


class TestRectangularMachines:
    """The compiler must not assume square compute zones."""

    @pytest.mark.parametrize("shape", [(2, 8), (8, 2), (3, 5)])
    def test_powermove_on_rectangles(self, shape):
        cols, rows = shape
        arch = ZonedArchitecture(cols, rows, cols, 2 * rows, num_aods=1)
        circuit = qaoa_regular(10, degree=3, seed=2)
        layout = Layout.row_major(arch, 10, Zone.STORAGE)
        result = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(
            circuit, architecture=arch, initial_layout=layout
        )
        validate_program(
            result.program, source_circuit=result.native_circuit
        )

    def test_minimal_machine(self):
        """Two qubits on a 1x2 compute zone with storage."""
        from repro.circuits import Circuit

        arch = ZonedArchitecture(2, 1, 2, 2)
        qc = Circuit(2)
        qc.cz(0, 1)
        result = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(
            qc, architecture=arch
        )
        validate_program(result.program, source_circuit=qc)


class TestParameterSensitivity:
    """Eq. (1) must respond to hardware constants as physics dictates."""

    @pytest.fixture(scope="class")
    def program(self):
        circuit = qsim_random(8, num_strings=4, seed=0)
        return (
            PowerMoveCompiler(PowerMoveConfig(use_storage=False))
            .compile(circuit)
            .program
        )

    def test_infinite_t2_removes_decoherence(self, program):
        forgiving = HardwareParams(t2=1e9)
        report = FidelityModel(forgiving).evaluate(program)
        assert report.decoherence == pytest.approx(1.0, abs=1e-6)

    def test_perfect_excitation_removes_term(self, program):
        perfect = HardwareParams(fidelity_excitation=1.0)
        report = FidelityModel(perfect).evaluate(program)
        assert report.excitation == 1.0

    def test_worse_cz_lowers_total(self, program):
        good = FidelityModel(HardwareParams()).evaluate(program)
        bad = FidelityModel(
            HardwareParams(fidelity_cz=0.98)
        ).evaluate(program)
        assert bad.total < good.total

    def test_t2_monotone(self, program):
        short = FidelityModel(HardwareParams(t2=0.5)).evaluate(program)
        long = FidelityModel(HardwareParams(t2=3.0)).evaluate(program)
        assert long.decoherence > short.decoherence

    def test_custom_acceleration_changes_texe(self):
        """A slower machine (lower a) takes longer and decoheres more."""
        circuit = qaoa_regular(8, degree=3, seed=0)
        fast_params = HardwareParams()
        slow_params = HardwareParams(acceleration=500.0)
        fast_arch = ZonedArchitecture.for_qubits(8, params=fast_params)
        slow_arch = ZonedArchitecture.for_qubits(8, params=slow_params)
        fast = PowerMoveCompiler(
            PowerMoveConfig(seed=0), fast_params
        ).compile(circuit, architecture=fast_arch)
        slow = PowerMoveCompiler(
            PowerMoveConfig(seed=0), slow_params
        ).compile(circuit, architecture=slow_arch)
        t_fast = evaluate_program(fast.program).execution_time
        t_slow = evaluate_program(slow.program).execution_time
        assert t_slow > t_fast
        # Movement time scales as 1/sqrt(a).
        assert t_slow < t_fast * math.sqrt(2750.0 / 500.0) * 1.5


class TestStageOrderingConfig:
    def test_degree_ordering_still_valid(self):
        circuit = qaoa_regular(10, degree=3, seed=0)
        result = PowerMoveCompiler(
            PowerMoveConfig(stage_ordering="degree", seed=0)
        ).compile(circuit)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )

    def test_saturation_never_more_stages_on_suite(self):
        from repro.circuits import partition_into_blocks, transpile_to_native
        from repro.core.stage_scheduler import partition_stages

        for factory in (
            lambda: qaoa_regular(14, degree=3, seed=1),
            lambda: qsim_random(10, num_strings=4, seed=1),
        ):
            native = transpile_to_native(factory())
            for block in partition_into_blocks(native).blocks:
                sat = len(partition_stages(block, ordering="saturation"))
                deg = len(partition_stages(block, ordering="degree"))
                assert sat <= deg

    def test_invalid_ordering_rejected(self):
        from repro.circuits import Circuit, partition_into_blocks
        from repro.core.stage_scheduler import partition_stages

        qc = Circuit(2)
        qc.cz(0, 1)
        block = partition_into_blocks(qc).blocks[0]
        with pytest.raises(ValueError):
            partition_stages(block, ordering="rainbow")
        with pytest.raises(ValueError):
            PowerMoveConfig(stage_ordering="rainbow")
