"""Unit tests for the Table 2 benchmark suite."""

import pytest

from repro.benchsuite import (
    PAPER_ORDER,
    SUITE,
    benchmarks_in_family,
    get_benchmark,
    scaled_suite,
    table2_rows,
)
from repro.hardware import Zone


class TestSuiteShape:
    def test_has_23_rows(self):
        assert len(SUITE) == 23
        assert len(PAPER_ORDER) == 23

    def test_expected_keys_present(self):
        for key in (
            "QAOA-regular3-100",
            "QAOA-regular4-80",
            "QAOA-random-30",
            "QFT-29",
            "BV-70",
            "VQE-50",
            "QSIM-rand-0.3-40",
        ):
            assert key in SUITE

    def test_lookup_by_key(self):
        spec = get_benchmark("BV-50")
        assert spec.num_qubits == 50
        assert spec.family == "BV"

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("NOPE-1")

    def test_families(self):
        rows = benchmarks_in_family("QAOA-regular3")
        assert [r.num_qubits for r in rows] == [30, 40, 50, 60, 80, 100]
        with pytest.raises(KeyError):
            benchmarks_in_family("NOPE")

    def test_scaled_suite(self):
        small = scaled_suite(20)
        assert all(s.num_qubits <= 20 for s in small)
        assert any(s.family == "QSIM-rand-0.3" for s in small)


class TestCircuitConstruction:
    def test_build_sets_row_name(self):
        qc = get_benchmark("VQE-30").build(seed=0)
        assert qc.name == "VQE-30"
        assert qc.num_qubits == 30

    def test_build_deterministic(self):
        spec = get_benchmark("QAOA-regular3-30")
        assert spec.build(seed=1) == spec.build(seed=1)

    @pytest.mark.parametrize("key", ["QSIM-rand-0.3-10", "BV-14", "QFT-18"])
    def test_small_benchmarks_build(self, key):
        spec = get_benchmark(key)
        qc = spec.build(seed=0)
        assert qc.num_qubits == spec.num_qubits
        assert qc.num_two_qubit_gates > 0


class TestArchitectures:
    def test_grid_side(self):
        assert get_benchmark("QAOA-regular3-30").grid_side == 6
        assert get_benchmark("BV-14").grid_side == 4

    def test_architecture_capacity(self):
        for key in ("QAOA-regular3-100", "BV-70", "QSIM-rand-0.3-40"):
            spec = get_benchmark(key)
            arch = spec.architecture(with_storage=True)
            assert len(arch.compute_sites) >= spec.num_qubits
            assert len(arch.storage_sites) >= spec.num_qubits

    def test_architecture_without_storage(self):
        arch = get_benchmark("VQE-30").architecture(with_storage=False)
        assert not arch.has_storage


class TestTable2:
    def test_row_count_and_order(self):
        rows = table2_rows()
        assert len(rows) == 23
        assert rows[0]["name"] == "QAOA-regular3"
        assert rows[-1]["name"] == "QSIM-rand-0.3"

    @pytest.mark.parametrize(
        "index,expected",
        [
            (0, ("QAOA-regular3", 30, "90 x 90", "90 x 30", "90 x 180")),
            (5, ("QAOA-regular3", 100, "150 x 150", "150 x 30", "150 x 300")),
            (13, ("QFT", 18, "75 x 75", "75 x 30", "75 x 150")),
            (15, ("BV", 14, "60 x 60", "60 x 30", "60 x 120")),
        ],
    )
    def test_rows_match_paper(self, index, expected):
        row = table2_rows()[index]
        got = (
            row["name"],
            row["num_qubits"],
            row["compute_zone_um"],
            row["inter_zone_um"],
            row["storage_zone_um"],
        )
        assert got == expected

    def test_bv70_follows_sizing_rule_not_paper_typo(self):
        """Table 2 prints 120x120 for BV-70 but the rule gives 135x135."""
        row = next(
            r
            for r in table2_rows()
            if r["name"] == "BV" and r["num_qubits"] == 70
        )
        assert row["compute_zone_um"] == "135 x 135"

    def test_storage_is_double_compute_height(self):
        arch = get_benchmark("VQE-50").architecture()
        cw, ch = arch.zone_extent_um(Zone.COMPUTE)
        sw, sh = arch.zone_extent_um(Zone.STORAGE)
        assert sw == cw
        assert sh == 2 * ch
