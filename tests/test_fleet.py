"""The multi-daemon fleet: placement, affinity, stealing, loss.

Placement is tested as pure functions (rendezvous ranking, spill);
fleet behaviour runs real in-process daemons under one in-process
coordinator so failure injection (slow compiles, daemon kills) can
monkeypatch the engine and stop servers at will.
"""

import json
import time

import pytest

import repro.engine.engine as engine_module
from repro.engine import (
    CompilationEngine,
    docs_equal_modulo_timing,
    manifest_digest,
    parse_manifest,
    results_doc,
)
from repro.engine.jobs import execute_job_on_circuit
from repro.service import (
    AuthError,
    Coordinator,
    RateLimited,
    ServiceClient,
    ServiceError,
    ServiceServer,
    plan_placement,
    rendezvous_rank,
)

#: Six cheap jobs (two benchmarks x three backends, enola knobs
#: dialled down) -- enough spread for placement to use both daemons.
FLEET_MANIFEST = {
    "defaults": {
        "enola": {"mis_restarts": 1, "sa_iterations_per_qubit": 0}
    },
    "jobs": [
        {
            "benchmark": "BV-14",
            "backends": ["enola", "powermove-nonstorage", "powermove"],
        },
        {
            "benchmark": "QSIM-rand-0.3-10",
            "backends": ["enola", "powermove-nonstorage", "powermove"],
        },
    ],
}


def batch_document(manifest):
    """The reference `repro batch --on-error collect` document."""
    jobs = parse_manifest(manifest)
    results = CompilationEngine(on_error="collect").run(jobs)
    return results_doc(
        results,
        manifest_digest=manifest_digest(manifest),
        total_jobs=len(jobs),
        wall_time_s=0.0,
        on_error="collect",
    )


def start_daemon(tmp_path, name, **kwargs):
    kwargs.setdefault("workers", 2)
    server = ServiceServer(
        str(tmp_path / name), "127.0.0.1:0", **kwargs
    )
    return server.start()


def start_coordinator(daemon_addresses, **kwargs):
    kwargs.setdefault("poll_interval", 0.1)
    coordinator = Coordinator(
        "127.0.0.1:0", daemons=tuple(daemon_addresses), **kwargs
    )
    return coordinator.start()


def stop_all(*servers):
    for server in servers:
        try:
            server.stop(drain=False)
        except Exception:
            pass


class TestPlacement:
    KEYS = [f"cache-key-{i}" for i in range(40)]
    DAEMONS = ["127.0.0.1:7601", "127.0.0.1:7602", "127.0.0.1:7603"]

    def test_rank_is_deterministic_and_total(self):
        for key in self.KEYS:
            first = rendezvous_rank(self.DAEMONS, key)
            assert first == rendezvous_rank(self.DAEMONS, key)
            assert sorted(first) == sorted(self.DAEMONS)

    def test_removing_a_loser_keeps_the_winner(self):
        # The rendezvous property: a daemon leaving only remaps keys
        # *it* owned; every other key keeps its winner.
        removed = self.DAEMONS[-1]
        survivors = self.DAEMONS[:-1]
        for key in self.KEYS:
            winner = rendezvous_rank(self.DAEMONS, key)[0]
            if winner == removed:
                continue
            assert rendezvous_rank(survivors, key)[0] == winner

    def test_affinity_places_each_key_on_its_winner(self):
        depths = {address: 0 for address in self.DAEMONS}
        assignment = plan_placement(list(self.KEYS), depths, 100)
        for key, address in zip(self.KEYS, assignment):
            assert address == rendezvous_rank(self.DAEMONS, key)[0]
        assert sum(depths.values()) == len(self.KEYS)

    def test_deep_winner_spills_to_next_choice(self):
        key = self.KEYS[0]
        ranked = rendezvous_rank(self.DAEMONS, key)
        depths = {address: 0 for address in self.DAEMONS}
        depths[ranked[0]] = 5  # winner already at the spill bound
        [chosen] = plan_placement([key], depths, 5)
        assert chosen == ranked[1]

    def test_planned_jobs_count_toward_depth(self):
        # Forty copies of one key with spill_depth=4: the first four
        # land on the winner, then placement spills -- one submission
        # cannot pile onto a single daemon.
        key = self.KEYS[0]
        ranked = rendezvous_rank(self.DAEMONS, key)
        depths = {address: 0 for address in self.DAEMONS}
        assignment = plan_placement([key] * 40, depths, 4)
        assert assignment[:4] == [ranked[0]] * 4
        assert len(set(assignment)) == len(self.DAEMONS)
        # Past every spill bound the least-loaded daemon takes over,
        # so the final depths are balanced.
        assert max(depths.values()) - min(depths.values()) <= 1

    def test_no_daemons_is_an_error(self):
        with pytest.raises(ServiceError, match="at least one daemon"):
            plan_placement(["k"], {}, 4)


class TestFleet:
    def test_affinity_doc_equality_and_warm_resubmission(
        self, tmp_path
    ):
        daemon_a = start_daemon(tmp_path, "a")
        daemon_b = start_daemon(tmp_path, "b")
        # steal_batch=0: placement stays pure affinity, so the second
        # run's placements are exactly reproducible.
        coordinator = start_coordinator(
            [daemon_a.address, daemon_b.address], steal_batch=0
        )
        try:
            client = ServiceClient(coordinator.address)
            ping = client.wait_ready()
            assert ping["role"] == "coordinator"
            assert len(ping["daemons"]) == 2

            first = client.submit(FLEET_MANIFEST)
            assert first["total_jobs"] == 6
            doc = client.results_document(first["submission"])
            reference = batch_document(FLEET_MANIFEST)
            assert docs_equal_modulo_timing(doc, reference)

            placements = {
                entry["address"]: entry["placements"]
                for entry in client.ping()["daemons"]
            }
            assert sum(placements.values()) == 6
            assert all(count > 0 for count in placements.values())

            # Identical resubmission: same cache keys, same rendezvous
            # winners -- every job returns to the daemon whose cache
            # is warm, and every record is a cache hit.
            second = client.submit(FLEET_MANIFEST)
            records = list(
                client.results(second["submission"], follow=True)
            )
            assert len(records) == 6
            assert all(r["cache_hit"] for r in records)
            doubled = {
                entry["address"]: entry["placements"]
                for entry in client.ping()["daemons"]
            }
            assert doubled == {
                address: 2 * count
                for address, count in placements.items()
            }
            doc2 = client.results_document(second["submission"])
            assert docs_equal_modulo_timing(doc2, reference)
        finally:
            stop_all(coordinator, daemon_a, daemon_b)

    def test_daemon_loss_redispatches_to_survivor(
        self, tmp_path, monkeypatch
    ):
        real = execute_job_on_circuit

        def slow(job, circuit):
            time.sleep(0.25)
            return real(job, circuit)

        monkeypatch.setattr(engine_module, "execute_job_on_circuit", slow)
        daemon_a = start_daemon(tmp_path, "a")
        daemon_b = start_daemon(tmp_path, "b")
        coordinator = start_coordinator(
            [daemon_a.address, daemon_b.address], steal_batch=0
        )
        try:
            client = ServiceClient(coordinator.address)
            client.wait_ready()
            submitted = client.submit(FLEET_MANIFEST)
            # Kill one daemon while its share of the work is still
            # compiling; the coordinator must notice, re-dispatch the
            # lost jobs to the survivor and deliver a complete doc.
            time.sleep(0.3)
            daemon_b.stop(drain=False)
            doc = client.results_document(submitted["submission"])
            assert doc["num_jobs"] == 6
            assert doc["num_failed"] == 0
            monkeypatch.setattr(
                engine_module, "execute_job_on_circuit", real
            )
            assert docs_equal_modulo_timing(
                doc, batch_document(FLEET_MANIFEST)
            )
            alive = {
                entry["address"]: entry["alive"]
                for entry in client.ping()["daemons"]
            }
            assert alive[daemon_a.address] is True
            assert alive[daemon_b.address] is False
        finally:
            stop_all(coordinator, daemon_a, daemon_b)

    def test_idle_daemon_steals_from_straggler(
        self, tmp_path, monkeypatch
    ):
        real = execute_job_on_circuit

        def slow(job, circuit):
            time.sleep(0.3)
            return real(job, circuit)

        monkeypatch.setattr(engine_module, "execute_job_on_circuit", slow)
        # One single-worker daemon gets all six jobs; a second daemon
        # joins at runtime and the monitor moves the queue's tail over.
        daemon_a = start_daemon(tmp_path, "a", workers=1)
        coordinator = start_coordinator(
            [daemon_a.address], steal_batch=2
        )
        daemon_b = None
        try:
            client = ServiceClient(coordinator.address)
            client.wait_ready()
            submitted = client.submit(FLEET_MANIFEST)

            daemon_b = start_daemon(tmp_path, "b", workers=2)
            reply = client.register(daemon_b.address)
            assert reply["daemons"] == 2

            doc = client.results_document(submitted["submission"])
            assert doc["num_jobs"] == 6
            assert doc["num_failed"] == 0
            steals = {
                entry["address"]: entry["steals"]
                for entry in client.ping()["daemons"]
            }
            assert steals[daemon_b.address] >= 2
        finally:
            stop_all(coordinator, daemon_a, *(
                [daemon_b] if daemon_b is not None else []
            ))

    def test_daemon_announces_itself_to_the_coordinator(
        self, tmp_path
    ):
        coordinator = start_coordinator([])
        daemon = None
        try:
            client = ServiceClient(coordinator.address)
            client.wait_ready()
            # No daemons yet: submissions are refused, not parked.
            with pytest.raises(ServiceError, match="dispatch failed"):
                client.submit(FLEET_MANIFEST)

            daemon = start_daemon(
                tmp_path, "a", announce=coordinator.address
            )
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if client.ping()["daemons"]:
                    break
                time.sleep(0.05)
            [entry] = client.ping()["daemons"]
            assert entry["address"] == daemon.address
            assert entry["alive"] is True

            submitted = client.submit(
                {"jobs": [{"benchmark": "BV-14", "backend": "powermove"}]}
            )
            doc = client.results_document(submitted["submission"])
            assert doc["num_failed"] == 0
        finally:
            stop_all(coordinator, *([daemon] if daemon else []))

    def test_fleet_shutdown_stops_every_daemon(self, tmp_path):
        daemon_a = start_daemon(tmp_path, "a")
        daemon_b = start_daemon(tmp_path, "b")
        coordinator = start_coordinator(
            [daemon_a.address, daemon_b.address]
        )
        try:
            client = ServiceClient(coordinator.address)
            client.wait_ready()
            client.shutdown(drain=True, fleet=True)
            assert coordinator.wait_stopped(timeout=30.0)
            assert daemon_a.wait_stopped(timeout=30.0)
            assert daemon_b.wait_stopped(timeout=30.0)
        finally:
            stop_all(coordinator, daemon_a, daemon_b)


class TestFleetObservability:
    def test_fleet_metrics_merge_and_trace_lookup(self, tmp_path):
        from repro.obs.trace import validate_trace_doc

        first = start_daemon(tmp_path, "d1")
        second = start_daemon(tmp_path, "d2")
        coordinator = start_coordinator(
            [first.address, second.address]
        )
        try:
            client = ServiceClient(coordinator.address)
            client.wait_ready()
            submitted = client.submit(FLEET_MANIFEST)
            doc = client.results_document(submitted["submission"])
            assert doc["num_failed"] == 0

            # Fleet metrics are the arithmetic total of the daemons
            # plus the coordinator's own placement counters.
            reply = client.metrics()
            assert reply["role"] == "coordinator"
            assert sorted(reply["daemons"]) == sorted(
                [first.address, second.address]
            )
            families = {
                family["name"]: family
                for family in reply["metrics"]["families"]
            }
            completed = sum(
                sample["value"]
                for sample in families["repro_jobs_completed_total"][
                    "samples"
                ]
            )
            assert completed == 6
            placements = sum(
                sample["value"]
                for sample in families["repro_placements_total"][
                    "samples"
                ]
            )
            assert placements == 6
            daemon_totals = sum(
                ServiceClient(address)
                .metrics()["metrics"]["families"][0]["samples"][0][
                    "value"
                ]
                is not None  # touch both daemons: they answer too
                for address in (first.address, second.address)
            )
            assert daemon_totals == 2

            # Per-job status detail + trace lookup through the fleet
            # front door, by coordinator job id.
            status = client.status(submitted["submission"])
            assert len(status["jobs"]) == 6
            for job in status["jobs"]:
                assert job["status"] == "ok"
                assert job["span_time_s"] > 0.0
            job_id = submitted["job_ids"][0]
            trace_reply = client.trace(job_id)
            validate_trace_doc(trace_reply["trace"])
            names = {
                span["name"]
                for span in trace_reply["trace"]["spans"]
            }
            assert "queue.wait" in names
            with pytest.raises(ServiceError, match="unknown"):
                client.trace("c999999-00000")
        finally:
            stop_all(coordinator, first, second)


class TestTenantedFleet:
    """The coordinator as the fleet's tenancy front door."""

    @staticmethod
    def write_tenants(tmp_path):
        doc = {
            "format": "repro-tenants",
            "version": 1,
            "fleet_token": "fleet-secret",
            "tenants": {
                "alice": {
                    "token": "alice-secret",
                    # Refill so slow the test never sees one: the
                    # burst alone decides which submit is throttled.
                    "rate": {"burst": 2, "per_second": 0.001},
                },
                "bob": {"token": "bob-secret"},
            },
        }
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_auth_isolation_and_metrics_across_the_fleet(
        self, tmp_path
    ):
        tenants = self.write_tenants(tmp_path)
        daemon_a = start_daemon(tmp_path, "a", tenants=tenants)
        daemon_b = start_daemon(tmp_path, "b", tenants=tenants)
        coordinator = start_coordinator(
            [daemon_a.address, daemon_b.address],
            steal_batch=0,
            tenants=tenants,
        )
        try:
            anon = ServiceClient(coordinator.address)
            ping = anon.wait_ready()
            assert ping["auth_required"] is True
            with pytest.raises(AuthError) as rejected:
                anon.submit(FLEET_MANIFEST)
            assert rejected.value.code == "auth_required"

            # alice's work flows through the whole fleet: the legs
            # carry the fleet token plus her tenant attribution, and
            # the merged document equals the batch reference.
            alice = ServiceClient(
                coordinator.address, token="alice-secret"
            )
            receipt = alice.submit(FLEET_MANIFEST)
            assert receipt.submission.startswith("alice-c")
            doc = alice.results_document(receipt.submission)
            assert docs_equal_modulo_timing(
                doc, batch_document(FLEET_MANIFEST)
            )

            # Cross-tenant isolation holds at the coordinator...
            bob = ServiceClient(coordinator.address, token="bob-secret")
            with pytest.raises(ServiceError) as missing:
                bob.status(receipt.submission)
            assert missing.value.code == "not_found"
            with pytest.raises(ServiceError):
                bob.trace(receipt.job_ids[0])
            assert bob.status().submissions == []
            # ...and at the daemons alice's legs landed on.
            for address in (daemon_a.address, daemon_b.address):
                direct = ServiceClient(address, token="bob-secret")
                assert direct.status().counts["done"] == 0

            # Rate limit enforced once, globally, at the front door
            # (burst 2: the first submit spent one token).
            second = alice.submit(FLEET_MANIFEST)
            with pytest.raises(RateLimited) as throttled:
                alice.submit(FLEET_MANIFEST)
            assert throttled.value.retry_after_s > 0.0
            alice.results_document(second.submission)

            # Fleet-summed per-tenant metrics: exactly one client
            # submission counted (daemon legs must not double-count),
            # six placements, one rate-limit throttle.
            ops = ServiceClient(
                coordinator.address, token="fleet-secret"
            )
            families = {
                family["name"]: family
                for family in ops.metrics()["metrics"]["families"]
            }

            def series(name):
                return {
                    tuple(sorted(s["labels"].items())): s["value"]
                    for s in families[name]["samples"]
                }

            submissions = series("repro_tenant_submissions_total")
            assert submissions[(("tenant", "alice"),)] == 2
            placements = series("repro_tenant_placements_total")
            assert placements[(("tenant", "alice"),)] == 12
            throttles = series("repro_tenant_throttles_total")
            assert throttles[
                (("reason", "rate_limit"), ("tenant", "alice"))
            ] == 1
            completed = series("repro_tenant_jobs_completed_total")
            assert completed[
                (("status", "ok"), ("tenant", "alice"))
            ] == 12
        finally:
            stop_all(coordinator, daemon_a, daemon_b)
