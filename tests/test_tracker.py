"""Unit tests for the loose position tracker."""

import pytest

from repro.hardware import Layout, Move, Zone, ZonedArchitecture
from repro.schedule import PositionTracker, TrackerError


@pytest.fixture
def arch():
    return ZonedArchitecture(3, 3, 3, 6)


class TestTracker:
    def test_from_layout(self, arch):
        layout = Layout.row_major(arch, 3)
        tracker = PositionTracker.from_layout(layout)
        assert tracker.qubits == (0, 1, 2)
        assert tracker.site_of(1) == layout.site_of(1)

    def test_untracked_qubit_raises(self, arch):
        tracker = PositionTracker.from_layout(Layout.row_major(arch, 1))
        with pytest.raises(TrackerError):
            tracker.site_of(9)

    def test_apply_moves(self, arch):
        layout = Layout.row_major(arch, 2)
        tracker = PositionTracker.from_layout(layout)
        dest = arch.site(Zone.COMPUTE, 2, 2)
        tracker.apply_moves([Move(0, layout.site_of(0), dest)])
        assert tracker.site_of(0) == dest

    def test_source_mismatch_rejected(self, arch):
        tracker = PositionTracker.from_layout(Layout.row_major(arch, 1))
        wrong = arch.site(Zone.COMPUTE, 2, 2)
        dest = arch.site(Zone.COMPUTE, 1, 1)
        with pytest.raises(TrackerError):
            tracker.apply_moves([Move(0, wrong, dest)])

    def test_duplicate_mover_rejected(self, arch):
        layout = Layout.row_major(arch, 1)
        tracker = PositionTracker.from_layout(layout)
        a = layout.site_of(0)
        b = arch.site(Zone.COMPUTE, 1, 1)
        c = arch.site(Zone.COMPUTE, 2, 2)
        with pytest.raises(TrackerError):
            tracker.apply_moves([Move(0, a, b), Move(0, b, c)])

    def test_transient_over_occupancy_allowed(self, arch):
        """Three qubits may pass through one site between excitations."""
        s0 = arch.site(Zone.COMPUTE, 0, 0)
        s1 = arch.site(Zone.COMPUTE, 1, 0)
        s2 = arch.site(Zone.COMPUTE, 2, 0)
        layout = Layout(arch, {0: s0, 1: s1, 2: s2})
        tracker = PositionTracker.from_layout(layout)
        tracker.apply_moves([Move(0, s0, s1), Move(2, s2, s1)])
        assert len(tracker.occupancy()[s1]) == 3

    def test_zone_of(self, arch):
        layout = Layout.row_major(arch, 1, Zone.STORAGE)
        tracker = PositionTracker.from_layout(layout)
        assert tracker.zone_of(0) is Zone.STORAGE

    def test_occupancy_snapshot(self, arch):
        layout = Layout.row_major(arch, 2)
        tracker = PositionTracker.from_layout(layout)
        occ = tracker.occupancy()
        assert occ[layout.site_of(0)] == {0}

    def test_as_dict_is_copy(self, arch):
        layout = Layout.row_major(arch, 1)
        tracker = PositionTracker.from_layout(layout)
        snapshot = tracker.as_dict()
        snapshot[0] = arch.site(Zone.COMPUTE, 2, 2)
        assert tracker.site_of(0) == layout.site_of(0)
