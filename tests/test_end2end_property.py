"""End-to-end property test: random circuits -> compile -> validate ->
verify.

For arbitrary small native circuits (random 1Q gates + CZs), both
PowerMove variants must produce programs that (a) satisfy every hardware
constraint and (b) are unitarily equivalent to the source circuit.  This
is the strongest single invariant in the suite: it exercises block
partitioning, stage scheduling, routing, grouping, batching and the
instruction stream in one shot, against an independent simulator.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EnolaCompiler, EnolaConfig
from repro.circuits import Circuit
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.schedule import validate_program
from repro.verify import verify_program_semantics

FAST_ENOLA = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=5)


@st.composite
def random_native_circuits(draw):
    n = draw(st.integers(2, 7))
    qc = Circuit(n, name="hyp")
    for _ in range(draw(st.integers(1, 20))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            qc.h(draw(st.integers(0, n - 1)))
        elif kind == 1:
            qc.rz(draw(st.floats(0.1, 3.0)), draw(st.integers(0, n - 1)))
        else:
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1).filter(lambda x, a=a: x != a))
            qc.cz(a, b)
    if qc.num_two_qubit_gates == 0:
        qc.cz(0, 1)
    return qc


class TestCompileValidateVerify:
    @given(random_native_circuits(), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_powermove_with_storage(self, circuit, seed):
        result = PowerMoveCompiler(
            PowerMoveConfig(use_storage=True, seed=seed)
        ).compile(circuit)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )
        overlap = verify_program_semantics(
            result.program, result.native_circuit, seed=seed
        )
        assert abs(overlap - 1.0) < 1e-9

    @given(random_native_circuits(), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_powermove_non_storage(self, circuit, seed):
        result = PowerMoveCompiler(
            PowerMoveConfig(use_storage=False, seed=seed)
        ).compile(circuit)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )
        overlap = verify_program_semantics(
            result.program, result.native_circuit, seed=seed
        )
        assert abs(overlap - 1.0) < 1e-9

    @given(random_native_circuits(), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_powermove_multi_aod(self, circuit, num_aods):
        result = PowerMoveCompiler(
            PowerMoveConfig(num_aods=num_aods, seed=0)
        ).compile(circuit)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )
        for batch in result.program.move_batches:
            assert batch.num_coll_moves <= num_aods

    @given(random_native_circuits())
    @settings(max_examples=15, deadline=None)
    def test_enola_baseline(self, circuit):
        result = EnolaCompiler(FAST_ENOLA).compile(circuit)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )
        overlap = verify_program_semantics(
            result.program, result.native_circuit, seed=0
        )
        assert abs(overlap - 1.0) < 1e-9
