"""Unit tests for commuting CZ block partitioning."""

import pytest

from repro.circuits import Circuit, NonNativeGateError, partition_into_blocks
from repro.circuits.generators import qaoa_regular


class TestBasicPartition:
    def test_single_block_all_commuting(self):
        qc = Circuit(4)
        qc.cz(0, 1)
        qc.cz(2, 3)
        qc.cz(0, 2)
        part = partition_into_blocks(qc)
        assert part.num_blocks == 1
        assert part.blocks[0].num_gates == 3

    def test_hadamard_fences_its_qubit(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        qc.h(1)
        qc.cz(0, 1)
        part = partition_into_blocks(qc)
        assert part.num_blocks == 2

    def test_hadamard_on_other_qubit_does_not_fence(self):
        qc = Circuit(3)
        qc.cz(0, 1)
        qc.h(2)
        qc.cz(0, 1)
        part = partition_into_blocks(qc)
        assert part.num_blocks == 1
        assert part.blocks[0].num_gates == 2

    def test_diagonal_1q_gate_does_not_fence(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        qc.rz(0.4, 1)
        qc.cz(0, 1)
        part = partition_into_blocks(qc)
        assert part.num_blocks == 1

    def test_barrier_fences_all_qubits(self):
        qc = Circuit(3)
        qc.cz(0, 1)
        qc.barrier()
        qc.cz(0, 1)
        part = partition_into_blocks(qc)
        assert part.num_blocks == 2

    def test_barrier_partial_fence(self):
        qc = Circuit(4)
        qc.cz(0, 1)
        qc.barrier(2)
        qc.cz(0, 1)
        part = partition_into_blocks(qc)
        assert part.num_blocks == 1

    def test_non_native_two_qubit_rejected(self):
        qc = Circuit(2)
        qc.cx(0, 1)
        with pytest.raises(NonNativeGateError):
            partition_into_blocks(qc)

    def test_measure_is_ignored(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        qc.measure_all()
        part = partition_into_blocks(qc)
        assert part.num_blocks == 1


class TestGapBookkeeping:
    def test_gap_count_is_blocks_plus_one(self):
        qc = Circuit(2)
        qc.h(0)
        qc.cz(0, 1)
        qc.h(0)
        qc.cz(0, 1)
        qc.h(1)
        part = partition_into_blocks(qc)
        assert part.num_blocks == 2
        assert len(part.one_qubit_gaps) == 3

    def test_leading_1q_gates_in_gap_zero(self):
        qc = Circuit(2)
        qc.h(0)
        qc.h(1)
        qc.cz(0, 1)
        part = partition_into_blocks(qc)
        assert len(part.one_qubit_gaps[0]) == 2

    def test_trailing_1q_gates_in_last_gap(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        qc.h(0)
        part = partition_into_blocks(qc)
        assert len(part.one_qubit_gaps[1]) == 1

    def test_all_gates_preserved(self):
        qc = qaoa_regular(10, degree=3, seed=2)
        from repro.circuits import transpile_to_native

        native = transpile_to_native(qc)
        part = partition_into_blocks(native)
        assert part.num_two_qubit_gates == native.num_two_qubit_gates
        assert part.num_one_qubit_gates == native.num_one_qubit_gates

    def test_gap_depth_counts_sequential_pulses(self):
        qc = Circuit(2)
        qc.h(0)
        qc.x(0)
        qc.h(1)
        qc.cz(0, 1)
        part = partition_into_blocks(qc)
        assert part.gap_depth(0) == 2

    def test_gap_depth_empty_gap(self):
        qc = Circuit(2)
        qc.cz(0, 1)
        part = partition_into_blocks(qc)
        assert part.gap_depth(0) == 0


class TestInteractionGraph:
    def test_conflicts_share_qubits(self):
        qc = Circuit(4)
        qc.cz(0, 1)
        qc.cz(1, 2)
        qc.cz(2, 3)
        block = partition_into_blocks(qc).blocks[0]
        graph = block.interaction_graph()
        assert graph[0] == [1]
        assert graph[1] == [0, 2]
        assert graph[2] == [1]

    def test_disjoint_gates_unconnected(self):
        qc = Circuit(4)
        qc.cz(0, 1)
        qc.cz(2, 3)
        block = partition_into_blocks(qc).blocks[0]
        graph = block.interaction_graph()
        assert graph[0] == [] and graph[1] == []

    def test_interacting_qubits(self):
        qc = Circuit(5)
        qc.cz(0, 1)
        qc.cz(3, 4)
        block = partition_into_blocks(qc).blocks[0]
        assert block.interacting_qubits() == {0, 1, 3, 4}


class TestWorkloadShapes:
    """The block structure drives the paper's Sec. 7.3 analysis."""

    def test_qaoa_layer_is_one_block(self):
        from repro.circuits import transpile_to_native

        qc = qaoa_regular(10, degree=3, seed=1, layers=1)
        part = partition_into_blocks(transpile_to_native(qc))
        assert part.num_blocks == 1

    def test_bv_yields_one_block_per_oracle_bit(self):
        from repro.circuits import transpile_to_native
        from repro.circuits.generators import bernstein_vazirani

        qc = bernstein_vazirani(8, seed=0)
        native = transpile_to_native(qc)
        part = partition_into_blocks(native)
        # CX->H.CZ.H puts a Hadamard on the ancilla between consecutive
        # CZs, so every oracle CZ is fenced into its own block.
        assert part.num_blocks == native.num_two_qubit_gates
        assert all(b.num_gates == 1 for b in part.blocks)

    def test_vqe_layer_is_one_dense_block(self):
        from repro.circuits.generators import vqe_full_entanglement

        qc = vqe_full_entanglement(6, seed=0)
        part = partition_into_blocks(qc)
        assert part.num_blocks == 1
        assert part.blocks[0].num_gates == 6 * 5 // 2
