"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.baselines import EnolaConfig
from repro.circuits import Circuit
from repro.circuits.generators import qaoa_regular
from repro.core import PowerMoveConfig
from repro.hardware import HardwareParams, Layout, Zone, ZonedArchitecture


@pytest.fixture
def params() -> HardwareParams:
    """Paper Table 1 parameters."""
    return HardwareParams()


@pytest.fixture
def small_arch() -> ZonedArchitecture:
    """3x3 compute + 3x6 storage machine (fits 9 qubits)."""
    return ZonedArchitecture(3, 3, 3, 6)


@pytest.fixture
def storageless_arch() -> ZonedArchitecture:
    """3x3 compute-only machine."""
    return ZonedArchitecture(3, 3)


@pytest.fixture
def small_layout(small_arch: ZonedArchitecture) -> Layout:
    """6 qubits row-major in the storage zone."""
    return Layout.row_major(small_arch, 6, Zone.STORAGE)


@pytest.fixture
def tiny_qaoa() -> Circuit:
    """A 8-qubit 3-regular QAOA circuit (fast to compile)."""
    return qaoa_regular(8, degree=3, seed=3)


@pytest.fixture
def fast_enola_config() -> EnolaConfig:
    """Enola knobs light enough for unit tests."""
    return EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


@pytest.fixture
def fast_pm_config() -> PowerMoveConfig:
    """PowerMove defaults used across tests."""
    return PowerMoveConfig(seed=0)
