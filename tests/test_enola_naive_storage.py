"""Tests for the Fig. 3(e)(f) strawman: Enola naively bolted onto a
zoned machine.

The paper's Sec. 3.1 argues that Enola's revert-to-initial-layout scheme
cannot integrate the storage zone efficiently: the initial layout must
live in storage, so every gate costs four inter-zone shuttles.  These
tests pin down both halves of the argument quantitatively: excitation
errors do vanish, but the movement overhead leaves PowerMove's
with-storage scheme strictly ahead.
"""

import pytest

from repro.baselines import EnolaCompiler, EnolaConfig
from repro.circuits.generators import bernstein_vazirani, qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import evaluate_program
from repro.hardware import Zone
from repro.schedule import validate_program

NAIVE = EnolaConfig(
    seed=0, mis_restarts=2, sa_iterations_per_qubit=10, naive_storage=True
)
PLAIN = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


class TestNaiveStorageMechanics:
    def test_compiles_and_validates(self):
        circuit = qaoa_regular(10, degree=3, seed=1)
        result = EnolaCompiler(NAIVE).compile(circuit)
        validate_program(
            result.program, source_circuit=result.native_circuit
        )

    def test_variant_name(self):
        assert (
            EnolaCompiler(NAIVE).variant_name == "enola[naive-storage]"
        )

    def test_initial_layout_in_storage(self):
        circuit = qaoa_regular(8, degree=3, seed=0)
        program = EnolaCompiler(NAIVE).compile(circuit).program
        layout = program.initial_layout
        assert all(
            layout.zone_of(q) is Zone.STORAGE for q in layout.qubits
        )

    def test_reverts_to_storage_layout(self):
        circuit = qaoa_regular(10, degree=3, seed=1)
        program = EnolaCompiler(NAIVE).compile(circuit).program
        assert program.final_layout() == program.initial_layout

    def test_four_moves_per_gate(self):
        circuit = qaoa_regular(10, degree=3, seed=1)
        program = EnolaCompiler(NAIVE).compile(circuit).program
        assert program.num_single_moves == 4 * program.num_two_qubit_gates

    def test_requires_storage_zone(self):
        from repro.hardware import ZonedArchitecture

        circuit = qaoa_regular(8, degree=3, seed=0)
        arch = ZonedArchitecture.for_qubits(8, with_storage=False)
        with pytest.raises(ValueError, match="storage"):
            EnolaCompiler(NAIVE).compile(circuit, architecture=arch)


class TestPaperArgument:
    """The quantitative version of the paper's Sec. 3.1 analysis."""

    @pytest.fixture(scope="class")
    def reports(self):
        circuit = bernstein_vazirani(12, seed=0)
        naive = EnolaCompiler(NAIVE).compile(circuit)
        plain = EnolaCompiler(PLAIN).compile(circuit)
        pm = PowerMoveCompiler(PowerMoveConfig(use_storage=True)).compile(
            circuit
        )
        for result in (naive, plain, pm):
            validate_program(result.program)
        return {
            "naive": evaluate_program(naive.program),
            "plain": evaluate_program(plain.program),
            "pm": evaluate_program(pm.program),
            "naive_program": naive.program,
            "pm_program": pm.program,
        }

    def test_naive_storage_eliminates_excitation(self, reports):
        assert reports["naive"].timeline.idle_excitations == 0
        assert reports["plain"].timeline.idle_excitations > 0

    def test_naive_storage_pays_movement_overhead(self, reports):
        """Inter-zone shuttling makes the strawman slower than plain
        Enola -- the overhead Fig. 3(e)(f) illustrates."""
        assert (
            reports["naive"].execution_time
            > reports["plain"].execution_time
        )

    def test_powermove_beats_the_strawman_on_time(self, reports):
        assert (
            reports["pm"].execution_time < reports["naive"].execution_time
        )

    def test_powermove_beats_the_strawman_on_moves(self, reports):
        assert (
            reports["pm_program"].num_single_moves
            < reports["naive_program"].num_single_moves
        )

    def test_powermove_beats_the_strawman_on_fidelity(self, reports):
        assert reports["pm"].total > reports["naive"].total
