"""Engine retry-with-backoff: attempts, delays, policies, records.

Transient failures are injected by monkeypatching the engine module's
``execute_job_on_circuit`` reference (the serial path resolves it per
call); permanent failures reuse the poison circuit from
``test_failsoft``, which also crashes inside process-pool workers.
"""

import time

import pytest

import repro.engine.engine as engine_module
from repro.engine import CompilationEngine, CompileJob, EngineError
from repro.engine.jobs import execute_job_on_circuit
from repro.engine.shard import job_record, strip_timing

from test_failsoft import good_job, poison_job


class _Flaky:
    """Stand-in worker failing the first ``failures`` calls per job."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls: dict[str, int] = {}

    def __call__(self, job, circuit):
        count = self.calls.get(job.label, 0) + 1
        self.calls[job.label] = count
        if count <= self.failures:
            raise RuntimeError(f"transient failure {count}")
        return execute_job_on_circuit(job, circuit)


class TestSerialRetries:
    def test_transient_failure_recovers(self, monkeypatch):
        flaky = _Flaky(failures=2)
        monkeypatch.setattr(
            engine_module, "execute_job_on_circuit", flaky
        )
        engine = CompilationEngine(retries=2, backoff=0.0)
        [result] = engine.run([good_job(0)])
        assert result.ok
        assert result.attempts == 3
        assert result.retry_wait_s == 0.0
        assert flaky.calls[result.job.label] == 3

    def test_failure_surfaces_only_after_final_attempt(
        self, monkeypatch
    ):
        flaky = _Flaky(failures=2)
        monkeypatch.setattr(
            engine_module, "execute_job_on_circuit", flaky
        )
        # One retry is not enough for two transient failures.
        engine = CompilationEngine(retries=1, backoff=0.0)
        with pytest.raises(EngineError, match="transient failure 2"):
            engine.run([good_job(0)])
        assert flaky.calls[good_job(0).label] == 2

    def test_collect_records_attempt_count(self):
        engine = CompilationEngine(
            on_error="collect", retries=2, backoff=0.0
        )
        [failed, ok] = engine.run([poison_job(), good_job(1)])
        assert not failed.ok
        assert failed.attempts == 3
        assert ok.ok and ok.attempts == 1

    def test_backoff_delays_are_exponential_and_recorded(
        self, monkeypatch
    ):
        flaky = _Flaky(failures=2)
        monkeypatch.setattr(
            engine_module, "execute_job_on_circuit", flaky
        )
        engine = CompilationEngine(retries=2, backoff=0.02)
        start = time.perf_counter()
        [result] = engine.run([good_job(0)])
        elapsed = time.perf_counter() - start
        assert result.ok and result.attempts == 3
        # 0.02 after attempt 1, 0.04 after attempt 2.
        assert result.retry_wait_s == pytest.approx(0.06)
        assert elapsed >= 0.06

    def test_zero_retries_preserves_single_attempt(self):
        engine = CompilationEngine(on_error="collect")
        [failed] = engine.run([poison_job()])
        assert failed.attempts == 1
        assert failed.retry_wait_s == 0.0

    def test_constructor_rejects_bad_values(self):
        with pytest.raises(ValueError, match="retries"):
            CompilationEngine(retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            CompilationEngine(backoff=-0.5)


class TestPoolRetries:
    def test_pool_failure_retried_then_collected(self):
        engine = CompilationEngine(
            workers=2, on_error="collect", retries=2, backoff=0.0
        )
        results = engine.run(
            [poison_job(), good_job(0), good_job(1)]
        )
        failed = results[0]
        assert not failed.ok
        assert failed.attempts == 3
        assert all(r.ok and r.attempts == 1 for r in results[1:])

    def test_pool_raise_after_final_attempt(self):
        engine = CompilationEngine(workers=2, retries=1, backoff=0.0)
        with pytest.raises(EngineError, match="out of range"):
            engine.run([poison_job(), good_job(0), good_job(1)])


class TestRecordSchema:
    def test_attempts_absent_on_single_attempt_records(self):
        engine = CompilationEngine()
        [result] = engine.run([good_job(0)])
        record = job_record(result, 0)
        assert "attempts" not in record
        assert "retry_wait_s" not in record

    def test_attempts_recorded_and_stripped_as_volatile(self):
        engine = CompilationEngine(
            on_error="collect", retries=1, backoff=0.0
        )
        [result] = engine.run([poison_job()])
        record = job_record(result, 0)
        assert record["attempts"] == 2
        assert record["retry_wait_s"] == 0.0
        doc = {
            "results": [record],
            "wall_time_s": 1.0,
            "cache_hits": 0,
            "cache_misses": 1,
        }
        stripped = strip_timing(doc)
        assert "attempts" not in stripped["results"][0]
        assert "retry_wait_s" not in stripped["results"][0]


class TestBatchCli:
    def test_batch_parses_retry_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["batch", "m.json", "--retries", "3", "--backoff", "0.5"]
        )
        assert args.retries == 3
        assert args.backoff == 0.5

    def test_batch_retry_defaults_off(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["batch", "m.json"])
        assert args.retries == 0
