"""Unit tests for moves, the Fig. 5 conflict rule, and grouping."""

import pytest

from repro.hardware import (
    DEFAULT_PARAMS,
    UM,
    CollMove,
    Move,
    Zone,
    ZonedArchitecture,
    group_moves,
    moves_conflict,
)


@pytest.fixture
def arch():
    return ZonedArchitecture(4, 4, 4, 8)


def mk(arch, qubit, src, dst, zone=Zone.COMPUTE):
    return Move(
        qubit,
        arch.site(zone, *src),
        arch.site(zone, *dst),
    )


class TestMove:
    def test_distance(self, arch):
        move = mk(arch, 0, (0, 0), (3, 0))
        assert move.distance == pytest.approx(45 * UM)

    def test_degenerate_move_rejected(self, arch):
        site = arch.site(Zone.COMPUTE, 0, 0)
        with pytest.raises(ValueError):
            Move(0, site, site)

    def test_duration_follows_params(self, arch):
        move = mk(arch, 0, (0, 0), (1, 0))
        assert move.duration(DEFAULT_PARAMS) == pytest.approx(
            DEFAULT_PARAMS.move_duration(15 * UM)
        )

    def test_zone_direction_flags(self, arch):
        into = Move(
            0, arch.site(Zone.COMPUTE, 0, 0), arch.site(Zone.STORAGE, 0, 0)
        )
        out = Move(
            1, arch.site(Zone.STORAGE, 0, 0), arch.site(Zone.COMPUTE, 0, 0)
        )
        lateral = mk(arch, 2, (0, 0), (1, 0))
        assert into.into_storage and not into.out_of_storage
        assert out.out_of_storage and not out.into_storage
        assert not lateral.into_storage and not lateral.out_of_storage


class TestConflictRule:
    """The three panels of Fig. 5 plus order-preserving cases."""

    def test_equal_start_different_end_conflicts(self, arch):
        m1 = mk(arch, 0, (1, 0), (0, 0))
        m2 = mk(arch, 1, (1, 1), (2, 1))
        assert moves_conflict(m1, m2)

    def test_crossing_conflicts(self, arch):
        m1 = mk(arch, 0, (2, 0), (0, 0))
        m2 = mk(arch, 1, (1, 1), (3, 1))
        assert moves_conflict(m1, m2)

    def test_merge_conflicts(self, arch):
        m1 = mk(arch, 0, (2, 0), (1, 0))
        m2 = mk(arch, 1, (0, 1), (1, 1))
        assert moves_conflict(m1, m2)

    def test_order_preserving_is_compatible(self, arch):
        m1 = mk(arch, 0, (0, 0), (1, 0))
        m2 = mk(arch, 1, (2, 1), (3, 1))
        assert not moves_conflict(m1, m2)

    def test_same_column_same_shift_compatible(self, arch):
        m1 = mk(arch, 0, (1, 0), (2, 0))
        m2 = mk(arch, 1, (1, 2), (2, 2))
        assert not moves_conflict(m1, m2)

    def test_y_axis_conflicts_detected(self, arch):
        m1 = mk(arch, 0, (0, 2), (0, 0))
        m2 = mk(arch, 1, (1, 1), (1, 3))
        assert moves_conflict(m1, m2)

    def test_symmetric(self, arch):
        m1 = mk(arch, 0, (2, 0), (0, 0))
        m2 = mk(arch, 1, (1, 1), (3, 1))
        assert moves_conflict(m1, m2) == moves_conflict(m2, m1)

    def test_inter_zone_moves_use_global_coordinates(self, arch):
        # Two parallel vertical drops into storage keep x order: no conflict.
        m1 = Move(
            0, arch.site(Zone.COMPUTE, 0, 0), arch.site(Zone.STORAGE, 0, 0)
        )
        m2 = Move(
            1, arch.site(Zone.COMPUTE, 2, 0), arch.site(Zone.STORAGE, 2, 0)
        )
        assert not moves_conflict(m1, m2)


class TestCollMove:
    def test_max_distance_and_duration(self, arch):
        cm = CollMove(
            moves=[mk(arch, 0, (0, 0), (1, 0)), mk(arch, 1, (0, 1), (3, 1))]
        )
        assert cm.max_distance == pytest.approx(45 * UM)
        assert cm.move_duration(DEFAULT_PARAMS) == pytest.approx(
            DEFAULT_PARAMS.move_duration(45 * UM)
        )

    def test_in_out_counts(self, arch):
        cm = CollMove(
            moves=[
                Move(
                    0,
                    arch.site(Zone.COMPUTE, 0, 0),
                    arch.site(Zone.STORAGE, 0, 0),
                ),
                Move(
                    1,
                    arch.site(Zone.STORAGE, 1, 0),
                    arch.site(Zone.COMPUTE, 1, 0),
                ),
                mk(arch, 2, (2, 0), (3, 0)),
            ]
        )
        assert cm.num_into_storage == 1
        assert cm.num_out_of_storage == 1

    def test_accepts(self, arch):
        cm = CollMove(moves=[mk(arch, 0, (0, 0), (1, 0))])
        assert cm.accepts(mk(arch, 1, (2, 1), (3, 1)))
        assert not cm.accepts(mk(arch, 1, (2, 1), (0, 1)))

    def test_validate_duplicate_qubit(self, arch):
        cm = CollMove(
            moves=[mk(arch, 0, (0, 0), (1, 0)), mk(arch, 0, (2, 2), (3, 2))]
        )
        with pytest.raises(AssertionError):
            cm.validate()

    def test_empty_collmove_properties(self):
        cm = CollMove()
        assert cm.max_distance == 0.0
        assert cm.move_duration(DEFAULT_PARAMS) == 0.0


class TestGrouping:
    def test_compatible_moves_share_group(self, arch):
        moves = [
            mk(arch, 0, (0, 0), (1, 0)),
            mk(arch, 1, (2, 1), (3, 1)),
        ]
        groups = group_moves(moves)
        assert len(groups) == 1

    def test_conflicting_moves_split(self, arch):
        moves = [
            mk(arch, 0, (0, 0), (2, 0)),
            mk(arch, 1, (3, 1), (1, 1)),
        ]
        groups = group_moves(moves)
        assert len(groups) == 2

    def test_all_moves_preserved(self, arch):
        moves = [
            mk(arch, q, (q % 4, q // 4), ((q + 1) % 4, 3 - q // 4))
            for q in range(8)
        ]
        groups = group_moves(moves)
        grouped = sorted(m.qubit for g in groups for m in g.moves)
        assert grouped == list(range(8))

    def test_groups_internally_valid(self, arch):
        moves = [
            mk(arch, q, (q % 4, q // 4), ((q * 3 + 1) % 4, (q * 2 + 1) % 4))
            for q in range(10)
        ]
        for group in group_moves(moves):
            group.validate()

    def test_distance_aware_sorts_ascending(self, arch):
        short = mk(arch, 0, (0, 0), (1, 0))
        long = mk(arch, 1, (0, 1), (3, 1))
        groups = group_moves([long, short], distance_aware=True)
        assert groups[0].moves[0].qubit == 0

    def test_fifo_keeps_input_order(self, arch):
        short = mk(arch, 0, (0, 0), (1, 0))
        long = mk(arch, 1, (0, 1), (3, 1))
        groups = group_moves([long, short], distance_aware=False)
        assert groups[0].moves[0].qubit == 1

    def test_distance_aware_balances_group_times(self, arch):
        """Distance-aware grouping should not increase total move time."""
        moves = []
        q = 0
        for row in range(4):
            moves.append(mk(arch, q, (0, row), (1, row)))
            q += 1
        for row in range(4):
            moves.append(mk(arch, q, (3, row), (0, (row + 1) % 4)))
            q += 1
        aware = group_moves(moves, distance_aware=True)
        fifo = group_moves(moves, distance_aware=False)
        t_aware = sum(g.move_duration(DEFAULT_PARAMS) for g in aware)
        t_fifo = sum(g.move_duration(DEFAULT_PARAMS) for g in fifo)
        assert t_aware <= t_fifo + 1e-12
