"""Golden-digest pin: the default compile path is bit-identical.

``tests/golden/backend_digests_v1.json`` freezes 37 program digests --
every pre-strategy-registry backend over four workload families plus a
seed variant -- produced by the historical code.  Any refactor of the
pipeline internals (strategy registries, architecture catalog, pass
plumbing) must keep every cell byte-identical; a digest change here
means compiled output changed for identical inputs, which requires an
intentional algorithm change *and* a ``CACHE_SCHEMA_VERSION`` bump
*and* a deliberate fixture regeneration
(``tests/golden/gen_backend_digests.py``).
"""

import json
import os
import sys

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
sys.path.insert(0, GOLDEN_DIR)

from gen_backend_digests import digest_for  # noqa: E402

with open(os.path.join(GOLDEN_DIR, "backend_digests_v1.json")) as _handle:
    _FIXTURE = json.load(_handle)

CELLS = [
    (entry["backend"], entry["workload"], entry["seed"], entry["digest"])
    for entry in _FIXTURE["digests"]
]


def test_fixture_has_37_reference_digests():
    assert _FIXTURE["version"] == 1
    assert len(CELLS) == 37
    # Every cell is a distinct (backend, workload, seed) triple.
    assert len({cell[:3] for cell in CELLS}) == 37


@pytest.mark.parametrize(
    "backend,workload,seed,expected",
    CELLS,
    ids=[f"{b}-{w}-s{s}" for b, w, s, _ in CELLS],
)
def test_backend_digest_pinned(backend, workload, seed, expected):
    assert digest_for(backend, workload, seed) == expected
