"""Tests for the dense state-vector verifier.

The headline check: the compiler's aggressive reordering (commuting
blocks, stage re-sequencing, floating diagonal gates) is unitarily sound
on every benchmark family.
"""

import math

import numpy as np
import pytest

from repro.baselines import EnolaCompiler, EnolaConfig
from repro.circuits import Circuit, transpile_to_native
from repro.circuits.gates import Gate
from repro.circuits.generators import (
    bernstein_vazirani,
    qaoa_regular,
    qft,
    qsim_random,
    vqe_linear_entanglement,
)
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.verify import (
    SimulationError,
    StateVector,
    simulate_circuit,
    verify_program_semantics,
)
from repro.verify.statevector import (
    gate_matrix_1q,
    gate_matrix_2q,
)

FAST = EnolaConfig(seed=0, mis_restarts=2, sa_iterations_per_qubit=10)


class TestGateMatrices:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("h", ()),
            ("x", ()),
            ("y", ()),
            ("z", ()),
            ("s", ()),
            ("sdg", ()),
            ("t", ()),
            ("tdg", ()),
            ("sx", ()),
            ("rx", (0.7,)),
            ("ry", (1.2,)),
            ("rz", (0.4,)),
            ("p", (0.9,)),
            ("u2", (0.3, 0.5)),
            ("u3", (0.2, 0.4, 0.6)),
        ],
    )
    def test_1q_matrices_unitary(self, name, params):
        matrix = gate_matrix_1q(Gate(name, (0,), params))
        assert np.allclose(matrix @ matrix.conj().T, np.eye(2))

    @pytest.mark.parametrize(
        "name,params",
        [
            ("cz", ()),
            ("cp", (0.7,)),
            ("rzz", (1.1,)),
            ("cx", ()),
            ("swap", ()),
            ("crz", (0.5,)),
        ],
    )
    def test_2q_matrices_unitary(self, name, params):
        matrix = gate_matrix_2q(Gate(name, (0, 1), params))
        assert np.allclose(matrix @ matrix.conj().T, np.eye(4))

    def test_sdg_inverts_s(self):
        s = gate_matrix_1q(Gate("s", (0,)))
        sdg = gate_matrix_1q(Gate("sdg", (0,)))
        assert np.allclose(s @ sdg, np.eye(2))

    def test_cz_diagonal(self):
        assert np.allclose(
            np.diag(gate_matrix_2q(Gate("cz", (0, 1)))), [1, 1, 1, -1]
        )


class TestStateVector:
    def test_initial_state(self):
        sv = StateVector(2)
        assert sv.state[0] == 1.0
        assert np.allclose(np.linalg.norm(sv.state), 1.0)

    def test_x_flips(self):
        sv = StateVector(2)
        sv.apply_gate(Gate("x", (0,)))
        assert abs(sv.state[1]) == pytest.approx(1.0)  # |01> little-endian

    def test_bell_state(self):
        qc = Circuit(2)
        qc.h(0)
        qc.cx(0, 1)
        sv = simulate_circuit(qc)
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert abs(np.vdot(expected, sv.state)) ** 2 == pytest.approx(1.0)

    def test_cx_decomposition_equivalent(self):
        direct = Circuit(3)
        direct.cx(2, 0)
        sv1 = simulate_circuit(direct, StateVector.random(3, seed=1))
        sv2 = simulate_circuit(
            transpile_to_native(direct), StateVector.random(3, seed=1)
        )
        assert sv1.fidelity_with(sv2) == pytest.approx(1.0)

    def test_swap_decomposition_equivalent(self):
        direct = Circuit(3)
        direct.swap(0, 2)
        sv1 = simulate_circuit(direct, StateVector.random(3, seed=2))
        sv2 = simulate_circuit(
            transpile_to_native(direct), StateVector.random(3, seed=2)
        )
        assert sv1.fidelity_with(sv2) == pytest.approx(1.0)

    def test_crz_decomposition_equivalent(self):
        direct = Circuit(2)
        direct.add_gate("crz", (0, 1), 0.8)
        sv1 = simulate_circuit(direct, StateVector.random(2, seed=3))
        sv2 = simulate_circuit(
            transpile_to_native(direct), StateVector.random(2, seed=3)
        )
        assert sv1.fidelity_with(sv2) == pytest.approx(1.0)

    def test_width_cap(self):
        with pytest.raises(SimulationError):
            StateVector(20)

    def test_random_state_normalised(self):
        sv = StateVector.random(5, seed=4)
        assert np.linalg.norm(sv.state) == pytest.approx(1.0)

    def test_norm_preserved_by_circuit(self):
        qc = qsim_random(6, num_strings=3, seed=0)
        sv = simulate_circuit(transpile_to_native(qc))
        assert np.linalg.norm(sv.state) == pytest.approx(1.0)


class TestCompilerSemantics:
    """The paper-critical check: compiled reordering preserves unitaries."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: qaoa_regular(8, degree=3, seed=1),
            lambda: qft(6),
            lambda: bernstein_vazirani(7, seed=0),
            lambda: vqe_linear_entanglement(7, seed=0),
            lambda: qsim_random(7, num_strings=4, seed=2),
        ],
        ids=["qaoa", "qft", "bv", "vqe", "qsim"],
    )
    @pytest.mark.parametrize("use_storage", [True, False])
    def test_powermove_semantics(self, factory, use_storage):
        circuit = factory()
        result = PowerMoveCompiler(
            PowerMoveConfig(use_storage=use_storage)
        ).compile(circuit)
        native = transpile_to_native(circuit)
        overlap = verify_program_semantics(result.program, native)
        assert overlap == pytest.approx(1.0)

    def test_enola_semantics(self):
        circuit = qaoa_regular(8, degree=3, seed=1)
        result = EnolaCompiler(FAST).compile(circuit)
        native = transpile_to_native(circuit)
        assert verify_program_semantics(
            result.program, native
        ) == pytest.approx(1.0)

    def test_detects_corrupted_program(self):
        circuit = qaoa_regular(6, degree=3, seed=1)
        result = PowerMoveCompiler(PowerMoveConfig()).compile(circuit)
        native = transpile_to_native(circuit)
        # Sabotage: drop one stage's gates.
        for instr in result.program.instructions:
            from repro.schedule import RydbergStage

            if isinstance(instr, RydbergStage):
                instr.gates.pop()
                break
        with pytest.raises(SimulationError, match="NOT equivalent"):
            verify_program_semantics(result.program, native)
