#!/usr/bin/env python3
"""Workload atlas: structural characterisation of the whole suite.

Profiles every Table 2 benchmark before compilation -- blocks, stages,
stage utilisation, idle exposure -- and classifies each into the
excitation-dominated / decoherence-dominated regimes the paper's
Sec. 7.3 uses to explain its results.  Then spot-checks the prediction:
excitation-dominated workloads should gain the most from the storage
zone.

Run:  python examples/workload_atlas.py
"""

from __future__ import annotations

from repro.analysis import run_scenarios
from repro.analysis.workloads import profile_circuit, render_profiles
from repro.baselines import EnolaConfig
from repro.benchsuite import SUITE

ATLAS_KEYS = (
    "QAOA-regular3-30",
    "QAOA-regular4-30",
    "QAOA-random-20",
    "QFT-18",
    "BV-14",
    "BV-50",
    "VQE-30",
    "QSIM-rand-0.3-10",
    "QSIM-rand-0.3-20",
)


def main() -> None:
    profiles = [
        profile_circuit(SUITE[key].build(seed=0)) for key in ATLAS_KEYS
    ]
    print(render_profiles(profiles))

    print("\nPrediction check: storage-zone gain by regime")
    enola_cfg = EnolaConfig(
        seed=0, mis_restarts=3, sa_iterations_per_qubit=40
    )
    print(f"{'workload':20s} {'regime':24s} {'ws/ns fidelity gain':>20s}")
    for key in ("BV-50", "QSIM-rand-0.3-20", "QAOA-regular3-30", "VQE-30"):
        profile = profile_circuit(SUITE[key].build(seed=0))
        result = run_scenarios(
            SUITE[key].build(seed=0), enola_config=enola_cfg
        )
        gain = (
            result["pm_with_storage"].fidelity.total
            / result["pm_non_storage"].fidelity.total
        )
        print(f"{key:20s} {profile.regime:24s} {gain:>19.2f}x")


if __name__ == "__main__":
    main()
