#!/usr/bin/env python3
"""Quickstart: compile a QAOA circuit for a zoned neutral-atom machine.

Builds a 20-qubit MaxCut QAOA circuit, compiles it with PowerMove in both
evaluation scenarios (non-storage / with-storage) and with the Enola
baseline, validates every program against the hardware rules, and prints
the paper's Eq. (1) fidelity analysis.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EnolaCompiler, EnolaConfig, PowerMoveCompiler, PowerMoveConfig
from repro.circuits.generators import qaoa_regular
from repro.fidelity import evaluate_program
from repro.schedule import validate_program


def describe(label: str, compilation) -> None:
    program = compilation.program
    validate_program(program, source_circuit=compilation.native_circuit)
    report = evaluate_program(program)
    print(f"\n=== {label} ===")
    print(f"  Rydberg stages      : {program.num_stages}")
    print(f"  CollMoves / moves   : {program.num_coll_moves} / "
          f"{program.num_single_moves}")
    print(f"  trap transfers      : {program.num_transfers}")
    print(f"  execution time      : {report.execution_time_us:10.1f} us")
    print(f"  compile time        : {compilation.compile_time * 1e3:10.2f} ms")
    print(f"  fidelity (total)    : {report.total:.4f}")
    print(f"    two-qubit         : {report.two_qubit:.4f}")
    print(f"    excitation        : {report.excitation:.4f}")
    print(f"    transfer          : {report.transfer:.4f}")
    print(f"    decoherence       : {report.decoherence:.4f}")


def main() -> None:
    circuit = qaoa_regular(20, degree=3, seed=7)
    print(f"Input circuit: {circuit!r}")

    describe(
        "Enola baseline (revert-to-initial, no storage)",
        EnolaCompiler(EnolaConfig(seed=0)).compile(circuit),
    )
    describe(
        "PowerMove, non-storage (continuous router only)",
        PowerMoveCompiler(PowerMoveConfig(use_storage=False)).compile(circuit),
    )
    describe(
        "PowerMove, with-storage (all three components)",
        PowerMoveCompiler(PowerMoveConfig(use_storage=True)).compile(circuit),
    )


if __name__ == "__main__":
    main()
