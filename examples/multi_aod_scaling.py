#!/usr/bin/env python3
"""Multi-AOD scaling study (the paper's Fig. 7 on laptop-size inputs).

Compiles representative benchmarks with 1-4 independent AOD arrays and
reports execution time and fidelity.  More AODs let conflicting CollMoves
run concurrently, shrinking layout-transition time (and with it
decoherence) without changing the transfer count.

Run:  python examples/multi_aod_scaling.py
"""

from __future__ import annotations

from repro.analysis import figure7_series


def main() -> None:
    keys = ("QAOA-regular3-30", "QSIM-rand-0.3-20", "BV-14", "QFT-18")
    aods = (1, 2, 3, 4)
    print("Compiling PowerMove (with-storage) under 1..4 AOD arrays...\n")
    series = figure7_series(keys=keys, aod_counts=aods, seed=0)
    print(series.render())
    print()
    for key in keys:
        texe = series.texe_us[key]
        print(
            f"{key:18s} speedup with 4 AODs: {texe[0] / texe[-1]:.2f}x "
            f"(T_exe {texe[0]:.0f} -> {texe[-1]:.0f} us)"
        )


if __name__ == "__main__":
    main()
