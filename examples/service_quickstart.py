"""The compilation service, end to end, in one process.

Starts a ``ServiceServer`` on an ephemeral localhost port (exactly
what ``repro serve`` wraps), submits a small manifest twice -- the
second submission is served almost entirely from the shared program
cache and the queue's cache-key dedup -- follows the completion-order
result stream, and reassembles the batch-results document.

Run:
    PYTHONPATH=src python examples/service_quickstart.py

For the multi-process flavour, see docs/service.md:
    python -m repro serve queue/ --workers 4
    python -m repro submit manifest.json --connect queue/service.sock
"""

import tempfile

from repro.service import ServiceClient, ServiceServer

MANIFEST = {
    "defaults": {
        "enola": {"mis_restarts": 1, "sa_iterations_per_qubit": 0}
    },
    "jobs": [
        {"benchmark": "BV-14"},
        {"benchmark": "QSIM-rand-0.3-10", "scenarios": ["pm_with_storage"]},
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as queue_dir:
        server = ServiceServer(
            queue_dir, "127.0.0.1:0", workers=2, retries=1
        ).start()
        try:
            client = ServiceClient(server.address)
            client.wait_ready()
            print(f"daemon up on {server.address}")

            for round_number in (1, 2):
                submitted = client.submit(MANIFEST)
                print(
                    f"\nround {round_number}: submission "
                    f"{submitted['submission']} "
                    f"({submitted['total_jobs']} jobs)"
                )
                for record in client.results(
                    submitted["submission"], follow=True
                ):
                    hit = "cache hit" if record["cache_hit"] else "compiled"
                    print(
                        f"  [{record['index']}] {record['benchmark']:18s} "
                        f"{record['scenario']:16s} {record['status']} "
                        f"({hit}, fidelity "
                        f"{record.get('fidelity', float('nan')):.4f})"
                    )
                doc = client.results_document(submitted["submission"])
                print(
                    f"  document: {doc['num_jobs']} jobs, "
                    f"{doc['cache_hits']} cache hits, "
                    f"{doc['num_failed']} failed"
                )
        finally:
            server.stop(drain=True)
        print("\ndaemon drained and stopped")


if __name__ == "__main__":
    main()
