#!/usr/bin/env python3
"""Regenerate the paper's evaluation artefacts (Tables 2-3, Figs. 6-7).

Modes:
  --quick  (default) small-size subset of every family; finishes in a
           couple of minutes and exercises every code path.
  --full   all 23 Table 3 rows at paper sizes with the heavy Enola
           configuration; expect a long run (Enola's annealing and MIS
           restarts dominate, exactly as in the paper).

Select artefacts with --table2 / --table3 / --fig6 / --fig7 (default: all
selected artefacts of the chosen mode).  Output goes to stdout and,
optionally, to --out FILE.

Examples:
  python examples/reproduce_paper.py --table3
  python examples/reproduce_paper.py --full --out results_full.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    FIGURE6_FAMILIES,
    figure6_panel,
    figure7_series,
    render_table2,
    reproduce_table3,
)
from repro.analysis.tables import PAPER_TABLE3
from repro.baselines import EnolaConfig
from repro.benchsuite import PAPER_ORDER

QUICK_KEYS = (
    "QAOA-regular3-30",
    "QAOA-regular4-30",
    "QAOA-random-20",
    "QFT-18",
    "BV-14",
    "VQE-30",
    "QSIM-rand-0.3-10",
)

QUICK_FIG6_SIZES = {
    "QAOA-regular3": [30, 40],
    "QSIM-rand-0.3": [10, 20],
    "QFT": [18],
    "VQE": [30],
    "BV": [14],
}

QUICK_FIG7_KEYS = ("QAOA-regular3-30", "QSIM-rand-0.3-10", "BV-14")
FULL_FIG7_KEYS = (
    "QAOA-regular3-100",
    "QSIM-rand-0.3-20",
    "QFT-18",
    "VQE-50",
    "BV-70",
)


def paper_comparison_block(keys) -> str:
    lines = [
        "Paper Table 3 reference values (fidelity E/ns/ws, T_exe E/ns/ws "
        "us, T_comp E/ours s):"
    ]
    for key in keys:
        row = PAPER_TABLE3.get(key)
        if row:
            lines.append(f"  {key}: {row}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table2", action="store_true")
    parser.add_argument("--table3", action="store_true")
    parser.add_argument("--fig6", action="store_true")
    parser.add_argument("--fig7", action="store_true")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale run (slow)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args(argv)

    wanted_all = not (args.table2 or args.table3 or args.fig6 or args.fig7)
    parts: list[str] = []
    start = time.perf_counter()

    if args.full:
        enola_cfg = EnolaConfig(
            seed=args.seed, mis_restarts=5, sa_iterations_per_qubit=150
        )
        table3_keys = PAPER_ORDER
        fig6_sizes: dict[str, list[int] | None] = {
            family: None for family in FIGURE6_FAMILIES
        }
        fig7_keys = FULL_FIG7_KEYS
    else:
        enola_cfg = EnolaConfig(
            seed=args.seed, mis_restarts=3, sa_iterations_per_qubit=40
        )
        table3_keys = QUICK_KEYS
        fig6_sizes = dict(QUICK_FIG6_SIZES)
        fig7_keys = QUICK_FIG7_KEYS

    if args.table2 or wanted_all:
        print("[reproduce] Table 2 ...", file=sys.stderr)
        parts.append(render_table2())

    if args.table3 or wanted_all:
        print("[reproduce] Table 3 ...", file=sys.stderr)
        table3 = reproduce_table3(
            keys=tuple(table3_keys), seed=args.seed, enola_config=enola_cfg
        )
        parts.append(table3.render())
        parts.append(paper_comparison_block(table3_keys))

    if args.fig6 or wanted_all:
        for family, sizes in fig6_sizes.items():
            print(f"[reproduce] Figure 6 ({family}) ...", file=sys.stderr)
            panel = figure6_panel(
                family, seed=args.seed, enola_config=enola_cfg, sizes=sizes
            )
            parts.append(panel.render())

    if args.fig7 or wanted_all:
        print("[reproduce] Figure 7 ...", file=sys.stderr)
        series = figure7_series(keys=tuple(fig7_keys), seed=args.seed)
        parts.append(series.render())

    elapsed = time.perf_counter() - start
    parts.append(f"(regenerated in {elapsed:.1f} s, seed={args.seed}, "
                 f"mode={'full' if args.full else 'quick'})")
    text = "\n\n\n".join(parts)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"[reproduce] wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
