#!/usr/bin/env python3
"""Anatomy of a compiled program: metrics, cross-checks, and a trace.

Compiles one QAOA circuit with PowerMove (with-storage) and dissects the
result with every analysis tool in the library:

* structural validation against the hardware rules,
* dense state-vector verification (the schedule is unitarily equivalent
  to the source circuit),
* Monte-Carlo cross-validation of the Eq. (1) fidelity,
* compiler-quality metrics vs the Enola baseline,
* an ASCII instruction trace of the first stages,
* AOD waveform statistics of the largest collective move.

Run:  python examples/compiler_anatomy.py
"""

from __future__ import annotations

from repro import EnolaCompiler, EnolaConfig, PowerMoveCompiler, PowerMoveConfig
from repro.analysis.visualize import program_trace
from repro.circuits import transpile_to_native
from repro.circuits.generators import qaoa_regular
from repro.core.metrics import compare_metrics, compute_metrics
from repro.fidelity import evaluate_program, sample_program_fidelity
from repro.hardware import DEFAULT_PARAMS, coll_move_waveforms
from repro.hardware.kinematics import max_sampled_acceleration
from repro.schedule import validate_program
from repro.verify import verify_program_semantics


def main() -> None:
    circuit = qaoa_regular(10, degree=3, seed=3)
    native = transpile_to_native(circuit)

    pm = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(circuit)
    enola = EnolaCompiler(EnolaConfig(seed=0)).compile(circuit)

    print("== structural validation ==")
    for result in (pm, enola):
        report = validate_program(result.program, raise_on_error=False)
        print(f"  {result.program.compiler_name:24s} ok={report.ok}")

    print("\n== semantic verification (state vector) ==")
    overlap = verify_program_semantics(pm.program, native)
    print(f"  overlap fidelity with source circuit: {overlap:.12f}")

    print("\n== fidelity: analytic vs Monte-Carlo ==")
    analytic = evaluate_program(pm.program)
    sampled = sample_program_fidelity(pm.program, shots=20000, seed=1)
    print(f"  Eq.(1) analytic : {analytic.total:.4f}")
    print(
        f"  sampled         : {sampled.estimate:.4f} "
        f"+/- {sampled.std_error:.4f} ({sampled.shots} shots)"
    )

    print("\n== compiler metrics (PowerMove vs Enola) ==")
    m_pm = compute_metrics(pm.program)
    m_enola = compute_metrics(enola.program)
    print(f"  {'metric':28s} {'powermove':>12s} {'enola':>12s}")
    for name in (
        "num_stages",
        "num_coll_moves",
        "num_single_moves",
        "moves_per_coll_move",
        "storage_dwell_fraction",
        "mean_stage_utilization",
        "movement_time_fraction",
    ):
        a, b = getattr(m_pm, name), getattr(m_enola, name)
        print(f"  {name:28s} {a:12.3f} {b:12.3f}")
    print("  headline ratios:", compare_metrics(m_pm, m_enola))

    print("\n== largest collective move: waveform check ==")
    biggest = max(
        (cm for batch in pm.program.move_batches for cm in batch.coll_moves),
        key=lambda cm: cm.num_moves,
    )
    waveforms = coll_move_waveforms(biggest, DEFAULT_PARAMS, num_samples=101)
    peak = max(max_sampled_acceleration(w) for w in waveforms)
    print(
        f"  {biggest.num_moves} qubits ride one AOD shot for "
        f"{biggest.move_duration(DEFAULT_PARAMS) * 1e6:.0f} us; "
        f"sampled peak acceleration {peak:.0f} m/s^2"
    )

    print("\n== instruction trace (first instructions) ==")
    print(program_trace(pm.program, max_instructions=8))


if __name__ == "__main__":
    main()
