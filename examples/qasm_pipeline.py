#!/usr/bin/env python3
"""OpenQASM pipeline: parse -> transpile -> compile -> validate -> report.

Demonstrates the textual front end: a QFT program written in OpenQASM 2.0
(including a user-defined gate macro) is parsed, rewritten to the native
{1Q, CZ-class} gate set, compiled for the zoned machine and analysed.

Run:  python examples/qasm_pipeline.py
"""

from __future__ import annotations

from repro import PowerMoveCompiler, PowerMoveConfig
from repro.circuits import parse_qasm, to_qasm, transpile_to_native
from repro.fidelity import evaluate_program
from repro.schedule import validate_program

QASM_SOURCE = """
OPENQASM 2.0;
include "qelib1.inc";

// A user-defined macro: controlled phase ladder step.
gate ladder(theta) a,b { cp(theta) a,b; }

qreg q[6];
creg c[6];

h q[0];
ladder(pi/2)  q[1],q[0];
ladder(pi/4)  q[2],q[0];
h q[1];
ladder(pi/2)  q[2],q[1];
ladder(pi/8)  q[3],q[0];
h q[2];
ladder(pi/2)  q[3],q[2];
h q[3];
cx q[4],q[5];
barrier q;
measure q -> c;
"""


def main() -> None:
    circuit = parse_qasm(QASM_SOURCE, name="qasm-demo")
    print(f"Parsed: {circuit!r}")

    native = transpile_to_native(circuit)
    print(
        f"Transpiled to native set: {native.num_one_qubit_gates} x 1Q, "
        f"{native.num_two_qubit_gates} x CZ-class"
    )

    compilation = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(circuit)
    validate_program(
        compilation.program, source_circuit=compilation.native_circuit
    )
    report = evaluate_program(compilation.program)
    print(f"Compiled: {compilation.program!r}")
    print(f"Fidelity {report.total:.4f}, T_exe {report.execution_time_us:.1f} us")

    print("\nRound-tripped back to OpenQASM:\n")
    print(to_qasm(circuit))


if __name__ == "__main__":
    main()
