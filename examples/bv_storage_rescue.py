#!/usr/bin/env python3
"""The storage-zone rescue on Bernstein-Vazirani workloads.

BV circuits decompose (after CX -> H.CZ.H) into many single-gate Rydberg
stages, so without a storage zone nearly every qubit eats the 99.75%
excitation hit at every stage -- the paper's Table 3 shows Enola at
6.9e-4 fidelity on BV-70 while PowerMove-with-storage reaches 0.75.

This example reproduces that cliff at several sizes and prints the
per-component breakdown (the paper's Fig. 6(e) data).

Run:  python examples/bv_storage_rescue.py
"""

from __future__ import annotations

from repro.analysis import run_scenarios
from repro.baselines import EnolaConfig
from repro.circuits.generators import bernstein_vazirani
from repro.fidelity import COMPONENT_NAMES


def main() -> None:
    print("Bernstein-Vazirani: fidelity vs size, three compilers\n")
    header = (
        f"{'n':>4} | {'Enola':>10} | {'PM non-storage':>14} | "
        f"{'PM with-storage':>15} | {'improvement':>11}"
    )
    print(header)
    print("-" * len(header))
    enola_cfg = EnolaConfig(seed=0, mis_restarts=3, sa_iterations_per_qubit=40)
    last = None
    for n in (8, 14, 20, 26):
        result = run_scenarios(
            bernstein_vazirani(n, seed=0), seed=0, enola_config=enola_cfg
        )
        enola = result["enola"].fidelity.total
        ns = result["pm_non_storage"].fidelity.total
        ws = result["pm_with_storage"].fidelity.total
        print(
            f"{n:>4} | {enola:>10.4g} | {ns:>14.4g} | {ws:>15.4g} | "
            f"{result.fidelity_improvement:>10.1f}x"
        )
        last = result

    print("\nComponent breakdown at the largest size (Fig. 6(e) style):")
    for scenario in ("enola", "pm_non_storage", "pm_with_storage"):
        report = last[scenario].fidelity
        parts = "  ".join(
            f"{name}={report.component(name):.4g}"
            for name in COMPONENT_NAMES
        )
        print(f"  {scenario:16s} {parts}")
    print(
        "\nNote how the excitation component collapses to 1.0 only in the "
        "with-storage scenario:\nparking idle qubits in the storage zone "
        "removes them from the Rydberg beam entirely."
    )


if __name__ == "__main__":
    main()
