"""Shim for legacy editable installs in offline environments.

``pip install -e . --no-build-isolation`` needs the ``wheel`` package for
PEP 517 editable builds; environments without it can fall back to
``pip install -e . --no-use-pep517`` through this file.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
