"""The paper's benchmark suite (Table 2)."""

from .suite import (
    PAPER_ORDER,
    SUITE,
    BenchmarkSpec,
    benchmarks_in_family,
    export_suite_qasm,
    get_benchmark,
    scaled_suite,
    table2_rows,
)

__all__ = [
    "BenchmarkSpec",
    "PAPER_ORDER",
    "SUITE",
    "benchmarks_in_family",
    "export_suite_qasm",
    "get_benchmark",
    "scaled_suite",
    "table2_rows",
]
