"""The paper's benchmark suite (Table 2) and the scaling ladder."""

from .scaling import (
    SCALING_BACKENDS,
    SCALING_SIZES,
    ScalingPoint,
    run_scaling,
    scaling_doc,
    scaling_workload,
)
from .suite import (
    PAPER_ORDER,
    SUITE,
    BenchmarkSpec,
    benchmarks_in_family,
    export_suite_qasm,
    get_benchmark,
    scaled_suite,
    table2_rows,
)

__all__ = [
    "BenchmarkSpec",
    "PAPER_ORDER",
    "SCALING_BACKENDS",
    "SCALING_SIZES",
    "SUITE",
    "ScalingPoint",
    "benchmarks_in_family",
    "export_suite_qasm",
    "get_benchmark",
    "run_scaling",
    "scaled_suite",
    "scaling_doc",
    "scaling_workload",
    "table2_rows",
]
