"""Benchmark suite of the paper's evaluation (Table 2).

Each :class:`BenchmarkSpec` names one Table 2 row: a circuit family, a
qubit count, a deterministic circuit builder and the paper-default floor
plan (compute ``ceil(sqrt(n))`` square; storage the same width and twice
the height; 30 um inter-zone gap).

Known paper discrepancy: Table 2 lists BV-70's compute zone as
120x120 um^2, but the paper's own sizing rule ``15*ceil(sqrt(n))`` gives
135x135 for n = 70.  We follow the rule; EXPERIMENTS.md records the
deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..circuits.circuit import Circuit
from ..circuits.generators import (
    bernstein_vazirani,
    qaoa_random,
    qaoa_regular,
    qft,
    qsim_random,
    vqe_linear_entanglement,
)
from ..hardware.geometry import Zone, ZonedArchitecture
from ..hardware.params import DEFAULT_PARAMS, HardwareParams


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark of the evaluation suite.

    Attributes:
        key: Canonical row name, e.g. ``"QAOA-regular3-30"``.
        family: Circuit family name, e.g. ``"QAOA-regular3"``.
        num_qubits: Circuit width ``n``.
        builder: ``builder(seed) -> Circuit`` deterministic constructor.
    """

    key: str
    family: str
    num_qubits: int
    builder: Callable[[int], Circuit]

    def build(self, seed: int = 0) -> Circuit:
        """Construct the benchmark circuit."""
        circuit = self.builder(seed)
        circuit.name = self.key
        return circuit

    def architecture(
        self,
        with_storage: bool = True,
        num_aods: int = 1,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> ZonedArchitecture:
        """Paper-default floor plan for this benchmark."""
        return ZonedArchitecture.for_qubits(
            self.num_qubits,
            with_storage=with_storage,
            num_aods=num_aods,
            params=params,
        )

    @property
    def grid_side(self) -> int:
        """``ceil(sqrt(n))`` -- the compute-zone side in sites."""
        side = math.isqrt(self.num_qubits)
        if side * side < self.num_qubits:
            side += 1
        return side


def _spec(
    family: str, n: int, builder: Callable[[int], Circuit]
) -> BenchmarkSpec:
    return BenchmarkSpec(
        key=f"{family}-{n}", family=family, num_qubits=n, builder=builder
    )


def _make_suite() -> dict[str, BenchmarkSpec]:
    specs: list[BenchmarkSpec] = []
    for n in (30, 40, 50, 60, 80, 100):
        specs.append(
            _spec(
                "QAOA-regular3",
                n,
                lambda seed, n=n: qaoa_regular(n, degree=3, seed=seed),
            )
        )
    for n in (30, 40, 50, 60, 80):
        specs.append(
            _spec(
                "QAOA-regular4",
                n,
                lambda seed, n=n: qaoa_regular(n, degree=4, seed=seed),
            )
        )
    for n in (20, 30):
        specs.append(
            _spec(
                "QAOA-random",
                n,
                lambda seed, n=n: qaoa_random(n, seed=seed),
            )
        )
    for n in (18, 29):
        specs.append(_spec("QFT", n, lambda seed, n=n: qft(n)))
    for n in (14, 50, 70):
        specs.append(
            _spec("BV", n, lambda seed, n=n: bernstein_vazirani(n, seed=seed))
        )
    for n in (30, 50):
        specs.append(
            _spec(
                "VQE",
                n,
                lambda seed, n=n: vqe_linear_entanglement(n, seed=seed),
            )
        )
    for n in (10, 20, 40):
        specs.append(
            _spec(
                "QSIM-rand-0.3",
                n,
                lambda seed, n=n: qsim_random(
                    n, num_strings=10, pauli_probability=0.3, seed=seed
                ),
            )
        )
    return {spec.key: spec for spec in specs}


#: The 23 benchmarks of Table 2, keyed by row name, in paper order.
SUITE: dict[str, BenchmarkSpec] = _make_suite()

#: Paper row order (Table 2 / Table 3).
PAPER_ORDER: tuple[str, ...] = tuple(SUITE)


def get_benchmark(key: str) -> BenchmarkSpec:
    """Look up a Table 2 benchmark by row name."""
    try:
        return SUITE[key]
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {key!r}; known: {', '.join(SUITE)}"
        ) from exc


def benchmarks_in_family(family: str) -> list[BenchmarkSpec]:
    """All suite rows of one circuit family, ascending qubit count."""
    rows = [spec for spec in SUITE.values() if spec.family == family]
    if not rows:
        raise KeyError(f"unknown family {family!r}")
    return sorted(rows, key=lambda spec: spec.num_qubits)


def scaled_suite(max_qubits: int) -> list[BenchmarkSpec]:
    """Suite rows with at most ``max_qubits`` (for fast CI/benchmarks)."""
    return [
        spec for spec in SUITE.values() if spec.num_qubits <= max_qubits
    ]


def table2_rows(
    params: HardwareParams = DEFAULT_PARAMS,
) -> list[dict[str, object]]:
    """Reproduce Table 2: benchmark names, qubits and zone extents."""
    rows: list[dict[str, object]] = []
    for key in PAPER_ORDER:
        spec = SUITE[key]
        arch = spec.architecture(with_storage=True, params=params)
        cw, ch = arch.zone_extent_um(Zone.COMPUTE)
        iw, ih = arch.inter_zone_extent_um()
        sw, sh = arch.zone_extent_um(Zone.STORAGE)
        rows.append(
            {
                "name": spec.family,
                "num_qubits": spec.num_qubits,
                "compute_zone_um": f"{cw:g} x {ch:g}",
                "inter_zone_um": f"{iw:g} x {ih:g}",
                "storage_zone_um": f"{sw:g} x {sh:g}",
            }
        )
    return rows


def export_suite_qasm(
    directory: str, seed: int = 0, keys: tuple[str, ...] | None = None
) -> list[str]:
    """Write every suite circuit as an OpenQASM 2.0 file.

    Args:
        directory: Target directory (must exist).
        seed: Instance seed for the random families.
        keys: Subset of rows (all 23 by default).

    Returns:
        The written file paths, in suite order.
    """
    import os

    from ..circuits.qasm import to_qasm

    paths: list[str] = []
    for key in keys or PAPER_ORDER:
        spec = SUITE[key]
        circuit = spec.build(seed)
        path = os.path.join(directory, f"{key}.qasm")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_qasm(circuit))
        paths.append(path)
    return paths


__all__ = [
    "BenchmarkSpec",
    "PAPER_ORDER",
    "SUITE",
    "benchmarks_in_family",
    "export_suite_qasm",
    "get_benchmark",
    "scaled_suite",
    "table2_rows",
]
