"""The compile-time scaling ladder (``repro bench --scaling``).

Enola's own harness demonstrates compiler scalability by sweeping random
3-regular QAOA graphs up to 10,000 qubits; this module reproduces that
ladder for our backends.  Each rung compiles one
``qaoa_regular(N, degree=3)`` instance and records the wall-clock
compile time plus the per-pass breakdown the pipeline already measures.

The ladder doubles as a regression gate: :func:`scaling_doc` renders the
timings in the slim ``benchmarks/compare_bench.py`` format
(``{"benchmarks": {name: seconds}}``), and a committed baseline in
``benchmarks/scaling_baseline.json`` lets CI fail on >2x compile-time
regressions of the small rungs the same way the smoke bench is gated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..circuits.generators import qaoa_regular
from ..pipeline.registry import create_compiler, get_backend

#: The ladder's default rungs (Enola's harness sweeps to 10,000).
SCALING_SIZES = (64, 256, 1024, 4096, 10000)

#: Default backends: the paper compiler and the baseline in the mode its
#: own harness uses at scale (sliding-window MIS).
SCALING_BACKENDS = ("powermove", "enola-windowed")


@dataclass
class ScalingPoint:
    """One rung of the ladder: a backend at one circuit size."""

    backend: str
    num_qubits: int
    compile_s: float
    pass_timings: dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The compare_bench benchmark name of this rung."""
        return f"scaling/{self.backend}/{self.num_qubits:05d}"


def scaling_workload(num_qubits: int, seed: int = 0):
    """The ladder's workload: one random 3-regular QAOA instance."""
    return qaoa_regular(num_qubits, degree=3, seed=seed)


def run_scaling(
    sizes: Sequence[int] = SCALING_SIZES,
    backends: Sequence[str] = SCALING_BACKENDS,
    seed: int = 0,
    progress: Callable[[ScalingPoint], None] | None = None,
    arch: str | None = None,
) -> list[ScalingPoint]:
    """Compile every (backend, size) rung and time it.

    Backends are resolved through the registry with their default
    configuration at the given seed; unknown names raise the registry's
    usual :class:`~repro.pipeline.registry.BackendError` before any
    work starts.  ``arch`` names an architecture-catalog entry every
    rung targets instead of the backend default floor plan.
    ``progress`` is called after each rung (the big rungs take a while;
    callers stream a line per rung).
    """
    for backend in backends:
        get_backend(backend)  # validate eagerly
    if arch is not None:
        from ..hardware.catalog import ARCHITECTURES

        ARCHITECTURES.get(arch)  # validate eagerly
    points: list[ScalingPoint] = []
    for num_qubits in sizes:
        circuit = scaling_workload(num_qubits, seed)
        for backend in backends:
            spec = get_backend(backend)
            config = spec.effective_config(None, seed, 1)
            compiler = create_compiler(backend, config)
            start = time.perf_counter()
            result = compiler.compile(circuit, arch=arch)
            elapsed = time.perf_counter() - start
            point = ScalingPoint(
                backend=backend,
                num_qubits=num_qubits,
                compile_s=elapsed,
                pass_timings=dict(
                    result.stats.get("pass_timings", {})
                ),
            )
            points.append(point)
            if progress is not None:
                progress(point)
    return points


def scaling_doc(points: Sequence[ScalingPoint]) -> dict[str, Any]:
    """Render rungs as a slim compare_bench document."""
    return {
        "benchmarks": {
            point.name: point.compile_s for point in points
        }
    }


__all__ = [
    "SCALING_BACKENDS",
    "SCALING_SIZES",
    "ScalingPoint",
    "run_scaling",
    "scaling_doc",
    "scaling_workload",
]
