"""PowerMove reproduction: compilation for zoned neutral-atom machines.

Full from-scratch reproduction of *PowerMove: Optimizing Compilation for
Neutral Atom Quantum Computers with Zoned Architecture* (ASPLOS 2025),
including the Enola baseline, the hardware/fidelity model, the benchmark
suite and the evaluation harness.

Quickstart:
    >>> import repro
    >>> circuit = repro.generators.qaoa_regular(12, seed=1)
    >>> result = repro.compile_circuit(circuit, use_storage=True)
    >>> report = repro.evaluate_program(result.program)
    >>> 0.0 < report.total <= 1.0
    True
"""

from . import (
    analysis,
    baselines,
    benchsuite,
    circuits,
    core,
    engine,
    fidelity,
    hardware,
    pipeline,
    schedule,
    verify,
)
from .engine import CompilationEngine, CompileJob
from .baselines import (
    AtomiqueConfig,
    AtomiqueLikeCompiler,
    EnolaCompiler,
    EnolaConfig,
)
from .pipeline import (
    BackendRegistry,
    BackendSpec,
    Pipeline,
    available_backends,
    create_compiler,
    get_backend,
)
from .circuits import (
    Circuit,
    Gate,
    load_qasm,
    parse_qasm,
    partition_into_blocks,
    to_qasm,
    transpile_to_native,
)
from .circuits import generators
from .core import (
    CompilationResult,
    PowerMoveCompiler,
    PowerMoveConfig,
    compile_circuit,
)
from .fidelity import FidelityModel, FidelityReport, evaluate_program
from .hardware import (
    DEFAULT_PARAMS,
    HardwareParams,
    Layout,
    Site,
    Zone,
    ZonedArchitecture,
)
from .schedule import NAProgram, validate_program

__version__ = "1.0.0"

__all__ = [
    "AtomiqueConfig",
    "AtomiqueLikeCompiler",
    "BackendRegistry",
    "BackendSpec",
    "Circuit",
    "CompilationEngine",
    "CompilationResult",
    "CompileJob",
    "DEFAULT_PARAMS",
    "EnolaCompiler",
    "EnolaConfig",
    "FidelityModel",
    "FidelityReport",
    "Gate",
    "HardwareParams",
    "Layout",
    "NAProgram",
    "Pipeline",
    "PowerMoveCompiler",
    "PowerMoveConfig",
    "Site",
    "Zone",
    "ZonedArchitecture",
    "analysis",
    "available_backends",
    "baselines",
    "benchsuite",
    "circuits",
    "compile_circuit",
    "core",
    "create_compiler",
    "engine",
    "evaluate_program",
    "fidelity",
    "generators",
    "get_backend",
    "hardware",
    "load_qasm",
    "parse_qasm",
    "partition_into_blocks",
    "pipeline",
    "schedule",
    "to_qasm",
    "transpile_to_native",
    "validate_program",
    "verify",
]
