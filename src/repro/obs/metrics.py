"""Process-wide metrics: counters, gauges, histograms, exposition.

A :class:`MetricsRegistry` owns a set of named metric *families*
(counter, gauge, or fixed-bucket histogram), each fanning out into
labeled series.  Everything is thread-safe behind one registry lock --
instrument points are worker threads, the asyncio loop thread, and the
maintenance sweep, all mutating concurrently with scrapes.

Two expositions of the same state:

* :meth:`MetricsRegistry.render_prometheus` -- Prometheus text
  exposition format v0.0.4 (``# HELP`` / ``# TYPE`` lines, cumulative
  ``_bucket{le=...}`` histogram series), what ``GET /metrics`` serves.
* :meth:`MetricsRegistry.to_doc` -- a JSON document for the ``metrics``
  service op, mergeable across a fleet with
  :meth:`MetricsRegistry.from_docs` (counters, gauges and histograms
  sum element-wise, so the coordinator's fleet view is the arithmetic
  total of its daemons' registries).

:class:`MetricsServer` is a stdlib ``ThreadingHTTPServer`` wrapper (the
``RemoteCacheServer`` pattern) mounting any render callable at
``GET /metrics``; ``repro serve --metrics`` and ``repro cache serve``
both use it/its handler.
"""

from __future__ import annotations

import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable, Mapping, Sequence

#: Schema identity of the JSON exposition (``metrics`` op payload).
METRICS_DOC_FORMAT = "repro-metrics"
METRICS_DOC_VERSION = 1

#: Content type of the Prometheus text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram edges, tuned for compile/queue durations in
#: seconds (sub-millisecond cache hits up to minute-long compiles).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class MetricError(ValueError):
    """Raised on malformed metric declarations or unmergeable docs."""


def _format_value(value: float) -> str:
    """Prometheus sample rendering: integral floats without ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(
    names: Sequence[str], values: Sequence[str], extra: str = ""
) -> str:
    parts = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Family:
    """One named metric family: kind + label schema + series states.

    Series state is ``float`` for counters/gauges and
    ``[bucket_counts..., +Inf_count, sum, count]``-shaped dicts for
    histograms.  All mutation happens under the owning registry's lock.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> None:
        self._registry = registry
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self.buckets = None if buckets is None else tuple(buckets)
        self._series: dict[tuple[str, ...], Any] = {}

    # -- series addressing -------------------------------------------

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: labels {sorted(labels)} != declared "
                f"{sorted(self.labelnames)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _blank(self) -> Any:
        if self.kind == "histogram":
            return {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
        return 0.0

    def _state(self, labels: Mapping[str, Any]) -> Any:
        key = self._key(labels)
        if key not in self._series:
            self._series[key] = self._blank()
        return key

    # -- instrumentation ---------------------------------------------

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (counters must move forward)."""
        if self.kind == "counter" and amount < 0:
            raise MetricError(f"{self.name}: counter increment < 0")
        with self._registry._lock:
            key = self._state(labels)
            self._series[key] += amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        """Gauges only: subtract ``amount``."""
        if self.kind != "gauge":
            raise MetricError(f"{self.name}: dec() on a {self.kind}")
        self.set(self.value(**labels) - amount, **labels)

    def set(self, value: float, **labels: Any) -> None:
        """Overwrite a series.

        Gauges use this for sampled values; counters use it to mirror
        an external monotonic total (queue counts, cache stats docs)
        maintained elsewhere -- callers own the monotonicity there.
        """
        if self.kind == "histogram":
            raise MetricError(f"{self.name}: set() on a histogram")
        with self._registry._lock:
            key = self._state(labels)
            self._series[key] = float(value)

    def observe(self, value: float, **labels: Any) -> None:
        """Histograms only: record one sample."""
        if self.kind != "histogram":
            raise MetricError(f"{self.name}: observe() on a {self.kind}")
        with self._registry._lock:
            key = self._state(labels)
            state = self._series[key]
            position = len(self.buckets)
            for index, edge in enumerate(self.buckets):
                if value <= edge:
                    position = index
                    break
            state["counts"][position] += 1
            state["sum"] += value
            state["count"] += 1

    # -- reads --------------------------------------------------------

    def value(self, **labels: Any) -> float:
        """Current value of one counter/gauge series (0 if unseen)."""
        if self.kind == "histogram":
            raise MetricError(f"{self.name}: value() on a histogram")
        key = self._key(labels)
        with self._registry._lock:
            return float(self._series.get(key, 0.0))

    def sample_doc(self) -> list[dict[str, Any]]:
        with self._registry._lock:
            samples = []
            for key in sorted(self._series):
                state = self._series[key]
                doc: dict[str, Any] = {
                    "labels": dict(zip(self.labelnames, key))
                }
                if self.kind == "histogram":
                    doc["counts"] = list(state["counts"])
                    doc["sum"] = state["sum"]
                    doc["count"] = state["count"]
                else:
                    doc["value"] = state
                samples.append(doc)
            return samples


class MetricsRegistry:
    """A set of metric families with JSON + Prometheus expositions.

    Declarations are idempotent: re-declaring a family with the same
    kind/labels/buckets returns the existing one (so independent
    components can share ``global_registry()`` without coordination);
    a conflicting re-declaration raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- declaration --------------------------------------------------

    def _declare(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> _Family:
        if buckets is not None:
            buckets = tuple(sorted(float(edge) for edge in buckets))
            if not buckets:
                raise MetricError(f"{name}: histogram needs buckets")
            if len(set(buckets)) != len(buckets):
                raise MetricError(f"{name}: duplicate bucket edges")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    existing.kind != kind
                    or existing.labelnames != tuple(labelnames)
                    or existing.buckets != buckets
                ):
                    raise MetricError(
                        f"metric {name!r} re-declared with a different "
                        f"kind/labels/buckets"
                    )
                return existing
            family = _Family(
                self, name, kind, help_text, labelnames, buckets
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _Family:
        """Declare (or fetch) a monotonically-increasing counter."""
        return self._declare(name, "counter", help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _Family:
        """Declare (or fetch) a set-anytime gauge."""
        return self._declare(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _Family:
        """Declare (or fetch) a fixed-bucket histogram."""
        return self._declare(
            name, "histogram", help_text, labelnames, buckets
        )

    # -- exposition ---------------------------------------------------

    def to_doc(self) -> dict[str, Any]:
        """JSON exposition (the ``metrics`` service-op payload)."""
        with self._lock:
            families = []
            for name in sorted(self._families):
                family = self._families[name]
                doc: dict[str, Any] = {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help_text,
                    "labels": list(family.labelnames),
                    "samples": family.sample_doc(),
                }
                if family.buckets is not None:
                    doc["buckets"] = list(family.buckets)
                families.append(doc)
            return {
                "format": METRICS_DOC_FORMAT,
                "version": METRICS_DOC_VERSION,
                "families": families,
            }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format v0.0.4."""
        return render_prometheus_doc(self.to_doc())

    # -- fleet merge --------------------------------------------------

    @classmethod
    def from_docs(cls, docs: Iterable[dict[str, Any]]) -> "MetricsRegistry":
        """Rebuild one registry from :meth:`to_doc` payloads, summing.

        The coordinator's fleet view: counters, gauges and histogram
        buckets add element-wise across daemons (queue depths and
        connection gauges therefore read as fleet totals).  Families
        present on only some daemons merge fine; one family declared
        with different kinds/labels/buckets raises
        :class:`MetricError`.
        """
        merged = cls()
        for doc in docs:
            if doc.get("format") != METRICS_DOC_FORMAT:
                raise MetricError("not a repro-metrics document")
            for family_doc in doc.get("families", []):
                family = merged._declare(
                    family_doc["name"],
                    family_doc["kind"],
                    family_doc.get("help", ""),
                    tuple(family_doc.get("labels", ())),
                    family_doc.get("buckets"),
                )
                for sample in family_doc.get("samples", []):
                    labels = sample.get("labels", {})
                    with merged._lock:
                        key = family._state(labels)
                        state = family._series[key]
                        if family.kind == "histogram":
                            counts = sample.get("counts", [])
                            if len(counts) != len(state["counts"]):
                                raise MetricError(
                                    f"{family.name}: bucket count mismatch"
                                )
                            for index, count in enumerate(counts):
                                state["counts"][index] += count
                            state["sum"] += sample.get("sum", 0.0)
                            state["count"] += sample.get("count", 0)
                        else:
                            family._series[key] = state + sample.get(
                                "value", 0.0
                            )
        return merged


def render_prometheus_doc(doc: dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.to_doc` payload as v0.0.4 text."""
    lines: list[str] = []
    for family in doc.get("families", []):
        name = family["name"]
        labelnames = tuple(family.get("labels", ()))
        if family.get("help"):
            help_text = str(family["help"]).replace("\n", " ")
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for sample in family.get("samples", []):
            values = tuple(
                str(sample.get("labels", {}).get(label, ""))
                for label in labelnames
            )
            if family["kind"] == "histogram":
                edges = [*family.get("buckets", []), math.inf]
                cumulative = 0
                for edge, count in zip(edges, sample.get("counts", [])):
                    cumulative += count
                    le = _render_labels(
                        labelnames,
                        values,
                        f'le="{_format_value(edge)}"',
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                label_str = _render_labels(labelnames, values)
                lines.append(
                    f"{name}_sum{label_str} "
                    f"{_format_value(sample.get('sum', 0.0))}"
                )
                lines.append(
                    f"{name}_count{label_str} {sample.get('count', 0)}"
                )
            else:
                label_str = _render_labels(labelnames, values)
                lines.append(
                    f"{name}{label_str} "
                    f"{_format_value(sample.get('value', 0.0))}"
                )
    return "\n".join(lines) + "\n" if lines else ""


#: The process-wide default registry, for instrumentation points that
#: are not handed a registry explicitly.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


# ----------------------------------------------------------------------
# HTTP exposition (the RemoteCacheServer pattern)
# ----------------------------------------------------------------------


class _MetricsRequestHandler(BaseHTTPRequestHandler):
    """``GET /metrics`` -> the server's render callable, as text."""

    server_version = "repro-metrics/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        if self.path.split("?", 1)[0] != "/metrics":
            body = b"not found\n"
            self.send_response(404)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        try:
            body = self.server.render_metrics().encode("utf-8")
        except Exception as exc:  # render must never kill the scrape
            body = f"# metrics render failed: {exc}\n".encode("utf-8")
            self.send_response(500)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class MetricsServer:
    """A threaded stdlib HTTP listener serving ``GET /metrics``.

    Args:
        render: Zero-argument callable returning the exposition text
            (typically a bound ``registry.render_prometheus`` -- but a
            server can snapshot gauges first in a wrapper).
        host: Bind host.
        port: Bind port (0 picks a free one).
        quiet: Suppress per-request logging.
    """

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        self._httpd = ThreadingHTTPServer(
            (host, port), _MetricsRequestHandler
        )
        self._httpd.daemon_threads = True
        self._httpd.render_metrics = render
        self._httpd.quiet = quiet
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """``http://host:port/metrics``."""
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()


__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS_DOC_FORMAT",
    "METRICS_DOC_VERSION",
    "PROMETHEUS_CONTENT_TYPE",
    "MetricError",
    "MetricsRegistry",
    "MetricsServer",
    "global_registry",
    "render_prometheus_doc",
]
