"""Per-job traces: span recording, ``trace-v1`` documents, rendering.

A :class:`Trace` is a tree of :class:`Span` objects over one monotonic
timeline; offsets are seconds relative to the trace origin (for a
service job, the moment the job was enqueued, so span ``0.0`` is the
start of queue wait).  Spans come from three sources:

* live recording (``with trace.span("attempt"):``) on the worker
  thread,
* rebased external measurements (:meth:`Trace.add_span` with explicit
  offsets -- the engine records ``time.perf_counter()`` pairs which the
  server shifts onto the job timeline),
* the pass-timing bridge (:func:`pass_spans_from_timings` lays the
  pipeline's per-pass durations end-to-end when real per-pass offsets
  were not recorded, e.g. results compiled in a process pool).

The serialized form (:meth:`Trace.to_doc`) is the ``trace-v1`` document
that rides on service result records (volatile: ``strip_timing`` drops
it) and is returned by the ``trace`` service op:

.. code-block:: json

    {"format": "repro-trace", "version": 1, "job": "s000001-00003",
     "duration_s": 1.25,
     "spans": [{"id": 1, "parent": null, "name": "job",
                "start_s": 0.0, "end_s": 1.25,
                "attrs": {"benchmark": "BV-14"}}, ...]}
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Mapping

#: Schema identity of a trace document.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Tolerance when checking child-within-parent containment: spans are
#: measured by separate clock reads, so boundaries can disagree by a
#: few microseconds without being wrong.
_EPSILON_S = 1e-4


class TraceError(ValueError):
    """Raised on malformed trace documents."""


class Span:
    """One timed operation inside a :class:`Trace`.

    Usable as a context manager (enter is a no-op -- the span started
    when it was created; exit closes it).  Offsets are seconds from the
    trace origin.
    """

    __slots__ = ("trace", "id", "parent_id", "name", "start_s",
                 "end_s", "attrs")

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        parent_id: int | None,
        name: str,
        start_s: float,
        attrs: Mapping[str, Any] | None = None,
    ) -> None:
        self.trace = trace
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.attrs: dict[str, Any] = dict(attrs or {})

    @property
    def duration_s(self) -> float:
        """Span length (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def end(self, at_s: float | None = None) -> "Span":
        """Close the span (now, or at an explicit offset)."""
        self.end_s = self.trace.now_s() if at_s is None else at_s
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.end_s is None:
            self.end()
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__


class Trace:
    """A span recorder over one monotonic timeline.

    Args:
        name: Root span name.
        attrs: Root span attributes.
        origin: The ``time.perf_counter()`` instant that maps to offset
            ``0.0``.  Defaults to "now"; the service worker back-dates
            it to the enqueue wall-clock instant so queue wait is on
            the timeline.
        clock: Monotonic clock (injected by tests).
    """

    def __init__(
        self,
        name: str,
        attrs: Mapping[str, Any] | None = None,
        origin: float | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._clock = clock
        self._origin = clock() if origin is None else origin
        self._next_id = 1
        self.spans: list[Span] = []
        self.root = self._new_span(None, name, 0.0, attrs)

    def _new_span(
        self,
        parent_id: int | None,
        name: str,
        start_s: float,
        attrs: Mapping[str, Any] | None,
    ) -> Span:
        span = Span(self, self._next_id, parent_id, name, start_s, attrs)
        self._next_id += 1
        self.spans.append(span)
        return span

    def now_s(self) -> float:
        """Current offset from the trace origin, in seconds."""
        return self._clock() - self._origin

    def offset_of(self, perf_counter_value: float) -> float:
        """Rebase an external ``time.perf_counter()`` reading."""
        return perf_counter_value - self._origin

    def span(
        self,
        name: str,
        parent: Span | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> Span:
        """Open a live span starting now (close via ``with`` / ``end``)."""
        parent = parent or self.root
        return self._new_span(parent.id, name, self.now_s(), attrs)

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Span | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> Span:
        """Record an already-measured span at explicit offsets."""
        parent = parent or self.root
        span = self._new_span(parent.id, name, start_s, attrs)
        span.end_s = end_s
        return span

    def finish(self) -> None:
        """Close the root (and any span left open) at "now"."""
        now = self.now_s()
        for span in self.spans:
            if span.end_s is None:
                span.end_s = now

    def to_doc(self, job: str | None = None) -> dict[str, Any]:
        """The ``trace-v1`` document (closes open spans first)."""
        self.finish()
        spans = []
        for span in sorted(
            self.spans, key=lambda s: (s.start_s, s.id)
        ):
            doc: dict[str, Any] = {
                "id": span.id,
                "parent": span.parent_id,
                "name": span.name,
                "start_s": round(span.start_s, 6),
                "end_s": round(span.end_s, 6),
            }
            if span.attrs:
                doc["attrs"] = span.attrs
            spans.append(doc)
        out: dict[str, Any] = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "duration_s": round(self.root.duration_s, 6),
            "spans": spans,
        }
        if job is not None:
            out["job"] = job
        return out


# ----------------------------------------------------------------------
# The pass-timing -> span bridge
# ----------------------------------------------------------------------


def pass_spans_from_timings(
    pass_timings: Mapping[str, float], start_s: float = 0.0
) -> list[tuple[str, float, float]]:
    """Synthesize ``(name, start_s, end_s)`` spans from durations.

    Pipeline passes run strictly sequentially, so laying the recorded
    per-pass durations end-to-end from ``start_s`` reconstructs their
    real offsets modulo inter-pass overhead.  Used when only
    ``pass_timings`` survived (pool workers, cached artifacts recorded
    before per-pass offsets existed); live serial compiles carry exact
    ``pass_spans`` instead.
    """
    spans = []
    cursor = start_s
    for name, duration in pass_timings.items():
        duration = max(0.0, float(duration))
        spans.append((name, cursor, cursor + duration))
        cursor += duration
    return spans


# ----------------------------------------------------------------------
# Document-side helpers (validation, totals, rendering)
# ----------------------------------------------------------------------


def validate_trace_doc(doc: Mapping[str, Any]) -> None:
    """Raise :class:`TraceError` unless ``doc`` is a well-formed tree.

    Checks: schema identity, exactly one root, every parent exists and
    precedes its children in the span list, offsets monotonic
    (``start <= end``), and children contained in their parent's bounds
    (within a small measurement epsilon).
    """
    if doc.get("format") != TRACE_FORMAT:
        raise TraceError("not a repro-trace document")
    if doc.get("version") != TRACE_VERSION:
        raise TraceError(f"unsupported trace version {doc.get('version')!r}")
    spans = doc.get("spans", [])
    if not spans:
        raise TraceError("trace has no spans")
    by_id: dict[int, Mapping[str, Any]] = {}
    roots = 0
    for span in spans:
        if span["id"] in by_id:
            raise TraceError(f"duplicate span id {span['id']}")
        if span["end_s"] < span["start_s"]:
            raise TraceError(
                f"span {span['name']!r}: end {span['end_s']} before "
                f"start {span['start_s']}"
            )
        if span["parent"] is None:
            roots += 1
        else:
            parent = by_id.get(span["parent"])
            if parent is None:
                raise TraceError(
                    f"span {span['name']!r}: parent {span['parent']} "
                    "missing or out of order"
                )
            if (
                span["start_s"] < parent["start_s"] - _EPSILON_S
                or span["end_s"] > parent["end_s"] + _EPSILON_S
            ):
                raise TraceError(
                    f"span {span['name']!r} "
                    f"[{span['start_s']}, {span['end_s']}] outside "
                    f"parent {parent['name']!r} "
                    f"[{parent['start_s']}, {parent['end_s']}]"
                )
        by_id[span["id"]] = span
    if roots != 1:
        raise TraceError(f"expected exactly one root span, found {roots}")


def trace_duration_s(doc: Mapping[str, Any]) -> float:
    """Total traced time: the root span's duration."""
    for span in doc.get("spans", []):
        if span.get("parent") is None:
            return span["end_s"] - span["start_s"]
    return float(doc.get("duration_s", 0.0))


def span_seconds(
    doc: Mapping[str, Any], name: str
) -> float:
    """Summed duration of every span called ``name`` (0.0 if absent)."""
    return sum(
        span["end_s"] - span["start_s"]
        for span in doc.get("spans", [])
        if span.get("name") == name
    )


def render_trace_tree(doc: Mapping[str, Any]) -> str:
    """ASCII tree of a trace document (the ``repro trace`` rendering).

    One line per span: name, ``[start - end]`` window, duration, and
    attributes; children indented under their parent in start order.
    """
    spans = list(doc.get("spans", []))
    children: dict[int | None, list[Mapping[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s["start_s"], s["id"]))

    lines: list[str] = []
    if doc.get("job"):
        lines.append(f"trace {doc['job']}  ({doc.get('duration_s', 0.0):.3f}s)")

    def walk(span: Mapping[str, Any], prefix: str, is_last: bool) -> None:
        connector = "" if span.get("parent") is None else (
            "└─ " if is_last else "├─ "
        )
        attrs = span.get("attrs") or {}
        attr_str = (
            "  " + " ".join(f"{k}={v}" for k, v in attrs.items())
            if attrs
            else ""
        )
        duration = span["end_s"] - span["start_s"]
        lines.append(
            f"{prefix}{connector}{span['name']}  "
            f"[{span['start_s']:.3f}s - {span['end_s']:.3f}s]  "
            f"{duration * 1e3:.1f}ms{attr_str}"
        )
        child_prefix = prefix
        if span.get("parent") is not None:
            child_prefix += "   " if is_last else "│  "
        kids = children.get(span["id"], [])
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1)

    for root in children.get(None, []):
        walk(root, "", True)
    return "\n".join(lines)


def rebase_spans(
    spans: Iterable[Mapping[str, Any]],
    trace: Trace,
    parent: Span,
    shift_s: float,
) -> None:
    """Attach engine-recorded spans (perf-counter pairs) to a trace.

    The engine stores spans as ``{"name", "start", "end", "attrs"}``
    with raw ``time.perf_counter()`` values plus a ``children`` list of
    already-relative pass spans; ``shift_s`` maps that clock onto the
    trace timeline (``trace_offset = perf_value + shift_s``).
    """
    for span in spans:
        start = span["start"] + shift_s
        end = span["end"] + shift_s
        recorded = trace.add_span(
            span["name"], start, end,
            parent=parent, attrs=span.get("attrs"),
        )
        for name, child_start, child_end in span.get("children", ()):
            trace.add_span(
                name,
                min(max(start + child_start, start), end),
                min(start + child_end, end),
                parent=recorded,
            )


__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Span",
    "Trace",
    "TraceError",
    "pass_spans_from_timings",
    "rebase_spans",
    "render_trace_tree",
    "span_seconds",
    "trace_duration_s",
    "validate_trace_doc",
]
