"""Observability: metrics registry + exposition, per-job tracing.

See :mod:`repro.obs.metrics` for the counter/gauge/histogram registry
(Prometheus text exposition v0.0.4 + mergeable JSON docs, stdlib HTTP
``/metrics`` listener) and :mod:`repro.obs.trace` for the ``trace-v1``
span recorder the service threads through every job's lifecycle.
Catalog and deployment recipes: ``docs/observability.md``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    METRICS_DOC_FORMAT,
    METRICS_DOC_VERSION,
    PROMETHEUS_CONTENT_TYPE,
    MetricError,
    MetricsRegistry,
    MetricsServer,
    global_registry,
    render_prometheus_doc,
)
from .trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    Span,
    Trace,
    TraceError,
    pass_spans_from_timings,
    rebase_spans,
    render_trace_tree,
    span_seconds,
    trace_duration_s,
    validate_trace_doc,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS_DOC_FORMAT",
    "METRICS_DOC_VERSION",
    "PROMETHEUS_CONTENT_TYPE",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "MetricError",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "Trace",
    "TraceError",
    "global_registry",
    "pass_spans_from_timings",
    "rebase_spans",
    "render_prometheus_doc",
    "render_trace_tree",
    "span_seconds",
    "trace_duration_s",
    "validate_trace_doc",
]
