"""Loose qubit-position tracking for program replay.

Between two Rydberg stages a layout transition is a *set* of collective
moves; while it is in flight, a site may transiently be the destination of
two qubits whose current tenant leaves in a later batch (the atoms ride
the AOD, not the site).  Occupancy and clustering constraints are physical
only at excitation time, so replay uses this tracker -- a plain
qubit -> site map that checks move *sources* but not transient capacity --
and the validator enforces site rules exactly at each
:class:`~repro.schedule.instructions.RydbergStage`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..hardware.geometry import Site, Zone
from ..hardware.layout import Layout
from ..hardware.moves import Move


class TrackerError(ValueError):
    """Raised when a replayed move does not match the tracked state."""


class PositionTracker:
    """Minimal qubit -> site map for replaying instruction streams."""

    def __init__(self, positions: Mapping[int, Site]) -> None:
        self._positions: dict[int, Site] = dict(positions)

    @classmethod
    def from_layout(cls, layout: Layout) -> "PositionTracker":
        """Start from a layout's current assignment."""
        return cls(layout.as_dict())

    @property
    def qubits(self) -> tuple[int, ...]:
        """Tracked qubits, ascending."""
        return tuple(sorted(self._positions))

    def site_of(self, qubit: int) -> Site:
        """Current site of ``qubit``."""
        try:
            return self._positions[qubit]
        except KeyError as exc:
            raise TrackerError(f"qubit {qubit} is not tracked") from exc

    def zone_of(self, qubit: int) -> Zone:
        """Current zone of ``qubit``."""
        return self.site_of(qubit).zone

    def apply_moves(self, moves: Iterable[Move]) -> None:
        """Apply a batch of moves; validates sources and duplicate movers."""
        batch = list(moves)
        seen: set[int] = set()
        for move in batch:
            if move.qubit in seen:
                raise TrackerError(
                    f"qubit {move.qubit} moved twice in one batch"
                )
            seen.add(move.qubit)
            actual = self.site_of(move.qubit)
            if actual != move.source:
                raise TrackerError(
                    f"move source mismatch for qubit {move.qubit}: "
                    f"at {actual}, move says {move.source}"
                )
        for move in batch:
            self._positions[move.qubit] = move.destination

    def occupancy(self) -> dict[Site, set[int]]:
        """Site -> tenants snapshot (built on demand)."""
        occ: dict[Site, set[int]] = {}
        for qubit, site in self._positions.items():
            occ.setdefault(site, set()).add(qubit)
        return occ

    def as_dict(self) -> dict[int, Site]:
        """Copy of the current assignment."""
        return dict(self._positions)


__all__ = ["PositionTracker", "TrackerError"]
