"""Compiled NAQC program: initial layout plus an instruction stream."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..hardware.geometry import ZonedArchitecture
from ..hardware.layout import Layout
from .instructions import Instruction, MoveBatch, OneQubitLayer, RydbergStage


@dataclass
class NAProgram:
    """A compiled program for a zoned neutral-atom machine.

    Attributes:
        architecture: The machine the program targets.
        initial_layout: Qubit placement before the first instruction.
        instructions: Straight-line instruction stream.
        source_name: Name of the source circuit (for reports).
        compiler_name: Which compiler produced the program.
        metadata: Free-form compiler statistics (stage counts, etc.).
    """

    architecture: ZonedArchitecture
    initial_layout: Layout
    instructions: list[Instruction] = field(default_factory=list)
    source_name: str = ""
    compiler_name: str = ""
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Stream accessors
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def rydberg_stages(self) -> list[RydbergStage]:
        """All Rydberg excitation instructions, in order."""
        return [i for i in self.instructions if isinstance(i, RydbergStage)]

    @property
    def move_batches(self) -> list[MoveBatch]:
        """All movement batches, in order."""
        return [i for i in self.instructions if isinstance(i, MoveBatch)]

    @property
    def one_qubit_layers(self) -> list[OneQubitLayer]:
        """All 1Q layers, in order."""
        return [i for i in self.instructions if isinstance(i, OneQubitLayer)]

    # ------------------------------------------------------------------
    # Aggregate counts (inputs to the fidelity model)
    # ------------------------------------------------------------------

    @property
    def num_stages(self) -> int:
        """Number of Rydberg excitations ``S``."""
        return len(self.rydberg_stages)

    @property
    def num_two_qubit_gates(self) -> int:
        """Executed CZ-class gate count ``g2``."""
        return sum(stage.num_gates for stage in self.rydberg_stages)

    @property
    def num_one_qubit_gates(self) -> int:
        """Executed 1Q gate count ``g1``."""
        return sum(layer.num_gates for layer in self.one_qubit_layers)

    @property
    def num_transfers(self) -> int:
        """Total trap transfers ``N_trans`` (2 per moved qubit per batch)."""
        return sum(batch.num_transfers for batch in self.move_batches)

    @property
    def num_coll_moves(self) -> int:
        """Total CollMoves across all batches."""
        return sum(batch.num_coll_moves for batch in self.move_batches)

    @property
    def num_single_moves(self) -> int:
        """Total 1Q moves across all batches."""
        return sum(len(batch.all_moves) for batch in self.move_batches)

    def total_move_distance(self) -> float:
        """Sum of all 1Q move distances (metres)."""
        return sum(
            move.distance
            for batch in self.move_batches
            for move in batch.all_moves
        )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def final_layout(self) -> Layout:
        """Replay all move batches to obtain the terminal placement."""
        from .tracker import PositionTracker

        tracker = PositionTracker.from_layout(self.initial_layout)
        for batch in self.move_batches:
            tracker.apply_moves(batch.all_moves)
        return Layout(self.architecture, tracker.as_dict())

    def __repr__(self) -> str:
        return (
            f"NAProgram({self.compiler_name or 'unknown'}: "
            f"{self.source_name or 'circuit'}, "
            f"{self.num_stages} stages, {self.num_coll_moves} coll-moves, "
            f"{self.num_transfers} transfers)"
        )


__all__ = ["NAProgram"]
