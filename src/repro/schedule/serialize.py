"""JSON (de)serialisation of compiled programs.

The export format is a plain-dict schema, stable across versions, so
compiled programs can be persisted, diffed, or consumed by other tools
(e.g. a pulse-level translator or a visualiser):

    {
      "format": "repro-naprogram",
      "version": 1,
      "architecture": {...},
      "initial_layout": {"0": ["compute", 0, 0], ...},
      "instructions": [
        {"kind": "layer_1q", "gates": [["h", [0], []], ...]},
        {"kind": "move_batch", "coll_moves": [
            {"aod": 0, "moves": [[qubit, [zone, col, row], [zone, col, row]], ...]}]},
        {"kind": "rydberg", "gates": [["cz", [0, 1], []], ...]}
      ],
      ...
    }

Round-trip: ``program_from_dict(program_to_dict(p))`` reproduces an
equivalent program (same machine, layout, instruction stream).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..circuits.gates import Gate
from ..hardware.geometry import Site, Zone, ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.moves import CollMove, Move
from ..hardware.params import HardwareParams
from .instructions import MoveBatch, OneQubitLayer, RydbergStage
from .program import NAProgram

FORMAT_NAME = "repro-naprogram"
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised on malformed program documents."""


def _gate_to_json(gate: Gate) -> list:
    return [gate.name, list(gate.qubits), list(gate.params)]


def _gate_from_json(doc: list) -> Gate:
    name, qubits, params = doc
    return Gate(name, tuple(qubits), tuple(params))


def _site_to_json(site: Site) -> list:
    return [site.zone.value, site.col, site.row]


def _site_from_json(doc: list, arch: ZonedArchitecture) -> Site:
    zone, col, row = doc
    return arch.site(Zone(zone), col, row)


def _params_to_json(params: HardwareParams) -> dict:
    return {
        "fidelity_1q": params.fidelity_1q,
        "fidelity_cz": params.fidelity_cz,
        "fidelity_excitation": params.fidelity_excitation,
        "fidelity_transfer": params.fidelity_transfer,
        "duration_1q": params.duration_1q,
        "duration_cz": params.duration_cz,
        "duration_transfer": params.duration_transfer,
        "acceleration": params.acceleration,
        "t2": params.t2,
        "site_pitch": params.site_pitch,
        "zone_gap": params.zone_gap,
    }


def _architecture_to_json(arch: ZonedArchitecture) -> dict:
    compute_cols, compute_rows = arch.compute_shape
    storage_cols, storage_rows = arch.storage_shape
    return {
        "compute_cols": compute_cols,
        "compute_rows": compute_rows,
        "storage_cols": storage_cols,
        "storage_rows": storage_rows,
        "num_aods": arch.num_aods,
        "params": _params_to_json(arch.params),
    }


def _architecture_from_json(doc: dict) -> ZonedArchitecture:
    params = HardwareParams(**doc["params"])
    return ZonedArchitecture(
        doc["compute_cols"],
        doc["compute_rows"],
        doc["storage_cols"],
        doc["storage_rows"],
        num_aods=doc["num_aods"],
        params=params,
    )


def program_to_dict(program: NAProgram) -> dict[str, Any]:
    """Export a program to the plain-dict schema."""
    instructions: list[dict] = []
    for instr in program.instructions:
        if isinstance(instr, OneQubitLayer):
            instructions.append(
                {
                    "kind": "layer_1q",
                    "gates": [_gate_to_json(g) for g in instr.gates],
                }
            )
        elif isinstance(instr, MoveBatch):
            instructions.append(
                {
                    "kind": "move_batch",
                    "coll_moves": [
                        {
                            "aod": cm.aod_index,
                            "moves": [
                                [
                                    m.qubit,
                                    _site_to_json(m.source),
                                    _site_to_json(m.destination),
                                ]
                                for m in cm.moves
                            ],
                        }
                        for cm in instr.coll_moves
                    ],
                }
            )
        elif isinstance(instr, RydbergStage):
            instructions.append(
                {
                    "kind": "rydberg",
                    "gates": [_gate_to_json(g) for g in instr.gates],
                }
            )
        else:  # pragma: no cover - defensive
            raise SerializationError(f"unknown instruction {instr!r}")
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "source_name": program.source_name,
        "compiler_name": program.compiler_name,
        "architecture": _architecture_to_json(program.architecture),
        "initial_layout": {
            str(q): _site_to_json(program.initial_layout.site_of(q))
            for q in program.initial_layout.qubits
        },
        "instructions": instructions,
        "metadata": dict(program.metadata),
    }


def program_from_dict(doc: dict[str, Any]) -> NAProgram:
    """Rebuild a program from the plain-dict schema."""
    if doc.get("format") != FORMAT_NAME:
        raise SerializationError(
            f"not a {FORMAT_NAME} document: {doc.get('format')!r}"
        )
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported version {doc.get('version')!r}"
        )
    arch = _architecture_from_json(doc["architecture"])
    layout = Layout(
        arch,
        {
            int(q): _site_from_json(site_doc, arch)
            for q, site_doc in doc["initial_layout"].items()
        },
    )
    instructions = []
    for entry in doc["instructions"]:
        kind = entry.get("kind")
        if kind == "layer_1q":
            instructions.append(
                OneQubitLayer(
                    gates=[_gate_from_json(g) for g in entry["gates"]]
                )
            )
        elif kind == "move_batch":
            coll_moves = []
            for cm_doc in entry["coll_moves"]:
                moves = [
                    Move(
                        qubit,
                        _site_from_json(src, arch),
                        _site_from_json(dst, arch),
                    )
                    for qubit, src, dst in cm_doc["moves"]
                ]
                coll_moves.append(
                    CollMove(moves=moves, aod_index=cm_doc["aod"])
                )
            instructions.append(MoveBatch(coll_moves=coll_moves))
        elif kind == "rydberg":
            instructions.append(
                RydbergStage(
                    gates=[_gate_from_json(g) for g in entry["gates"]]
                )
            )
        else:
            raise SerializationError(f"unknown instruction kind {kind!r}")
    return NAProgram(
        architecture=arch,
        initial_layout=layout,
        instructions=instructions,
        source_name=doc.get("source_name", ""),
        compiler_name=doc.get("compiler_name", ""),
        metadata=dict(doc.get("metadata", {})),
    )


def program_digest(program: NAProgram) -> str:
    """SHA-256 over the canonical JSON encoding of a program.

    Two programs share a digest iff their serialized documents are
    bit-identical (same machine, layout, instruction stream, metadata).
    Computed with :mod:`hashlib` over sorted-key, no-whitespace JSON --
    never Python's salted ``hash()`` -- so digests are stable across
    processes and interpreter runs.
    """
    payload = json.dumps(
        program_to_dict(program), separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dump_program(program: NAProgram, path: str, indent: int = 1) -> None:
    """Write a program to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(program_to_dict(program), handle, indent=indent)


def load_program(path: str) -> NAProgram:
    """Read a program from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return program_from_dict(json.load(handle))


__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "SerializationError",
    "dump_program",
    "load_program",
    "program_digest",
    "program_from_dict",
    "program_to_dict",
]
