"""Compiled-program IR: instructions, program container, validator."""

from .instructions import Instruction, MoveBatch, OneQubitLayer, RydbergStage
from .program import NAProgram
from .serialize import (
    SerializationError,
    dump_program,
    load_program,
    program_from_dict,
    program_to_dict,
)
from .tracker import PositionTracker, TrackerError
from .validator import ValidationError, ValidationReport, validate_program

__all__ = [
    "Instruction",
    "MoveBatch",
    "NAProgram",
    "OneQubitLayer",
    "PositionTracker",
    "RydbergStage",
    "SerializationError",
    "TrackerError",
    "ValidationError",
    "ValidationReport",
    "dump_program",
    "load_program",
    "program_from_dict",
    "program_to_dict",
    "validate_program",
]
