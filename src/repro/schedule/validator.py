"""Structural validation of compiled NAQC programs.

The validator replays a program against its machine and checks every
physical constraint the paper's hardware model imposes:

* AOD order preservation inside each CollMove (Fig. 5 conflict rule);
* at most one CollMove per AOD array per batch, distinct AOD indices, and
  no qubit moved twice within a batch;
* every move departs from the qubit's actual current site and lands on a
  real site of the machine;
* at each Rydberg stage: gates are CZ-class and pairwise qubit-disjoint,
  both partners of each gate are co-located on one *computation-zone* site,
  no site holds more than two qubits, and no two qubits share a site unless
  they are a gate pair of this stage (the "clustering" rule -- co-located
  non-pairs would blockade-interact);
* at program end, no site holds more than two qubits.

Site capacity is deliberately *not* checked between batches of one layout
transition: while a transition is in flight a destination may be reached
before its previous tenant departs (see :mod:`repro.schedule.tracker`).

Both compilers run their outputs through ``validate_program`` in tests, so
any scheduling bug that breaks physics fails loudly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..hardware.geometry import Zone
from ..hardware.moves import moves_conflict
from .instructions import MoveBatch, OneQubitLayer, RydbergStage
from .program import NAProgram
from .tracker import PositionTracker, TrackerError


class ValidationError(AssertionError):
    """Raised when a compiled program violates a hardware constraint."""


@dataclass
class ValidationReport:
    """Outcome of a validation run.

    Attributes:
        ok: True when no violations were found.
        errors: Human-readable violation descriptions (empty when ok).
        num_instructions_checked: Instructions examined.
    """

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    num_instructions_checked: int = 0

    def fail(self, message: str) -> None:
        """Record one violation."""
        self.ok = False
        self.errors.append(message)

    def raise_if_failed(self) -> None:
        """Raise :class:`ValidationError` when violations were recorded."""
        if not self.ok:
            raise ValidationError(
                f"{len(self.errors)} violation(s):\n" + "\n".join(self.errors)
            )


def _gate_key(gate: Gate) -> tuple:
    qubits = tuple(sorted(gate.qubits)) if gate.is_two_qubit else gate.qubits
    params = tuple(round(p, 9) for p in gate.params)
    return (gate.name, qubits, params)


def _check_move_batch(
    report: ValidationReport, program: NAProgram, index: int, batch: MoveBatch
) -> None:
    arch = program.architecture
    if batch.num_coll_moves == 0:
        report.fail(f"instr {index}: empty MoveBatch")
    if batch.num_coll_moves > arch.num_aods:
        report.fail(
            f"instr {index}: {batch.num_coll_moves} CollMoves exceed "
            f"{arch.num_aods} AOD array(s)"
        )
    aod_indices = [cm.aod_index for cm in batch.coll_moves]
    if len(set(aod_indices)) != len(aod_indices):
        report.fail(f"instr {index}: duplicate AOD index in batch")
    for aod in aod_indices:
        if not 0 <= aod < arch.num_aods:
            report.fail(f"instr {index}: AOD index {aod} out of range")
    for cm in batch.coll_moves:
        for i, a in enumerate(cm.moves):
            for b in cm.moves[i + 1:]:
                if moves_conflict(a, b):
                    report.fail(
                        f"instr {index}: AOD order violation within "
                        f"CollMove: ({a}) vs ({b})"
                    )
    for move in batch.all_moves:
        if not arch.contains(move.source) or not arch.contains(
            move.destination
        ):
            report.fail(f"instr {index}: move off-machine: {move}")


def _check_rydberg_stage(
    report: ValidationReport,
    index: int,
    stage: RydbergStage,
    tracker: PositionTracker,
) -> None:
    if stage.num_gates == 0:
        report.fail(f"instr {index}: empty RydbergStage")
    seen: set[int] = set()
    pair_sites = {}
    for gate in stage.gates:
        if not gate.is_cz_class:
            report.fail(f"instr {index}: non-CZ-class gate {gate} in stage")
            continue
        a, b = gate.qubits
        if a in seen or b in seen:
            report.fail(
                f"instr {index}: stage gates overlap on qubit "
                f"{a if a in seen else b}"
            )
        seen.update((a, b))
        site_a = tracker.site_of(a)
        site_b = tracker.site_of(b)
        if site_a != site_b:
            report.fail(
                f"instr {index}: gate {gate} pair not co-located "
                f"({site_a} vs {site_b})"
            )
            continue
        if site_a.zone is not Zone.COMPUTE:
            report.fail(
                f"instr {index}: gate {gate} executed outside the "
                f"computation zone ({site_a})"
            )
        pair_sites[site_a] = set(gate.qubits)
    # Site rules at excitation time: capacity everywhere; clustering in the
    # computation zone (any co-located group must be a gate pair of THIS
    # stage, otherwise the blockade produces an unwanted interaction).
    for site, tenants in tracker.occupancy().items():
        if len(tenants) > 2:
            report.fail(
                f"instr {index}: site {site} holds {len(tenants)} qubits "
                f"at excitation time"
            )
        if site.zone is Zone.COMPUTE and len(tenants) > 1:
            if tenants != pair_sites.get(site):
                report.fail(
                    f"instr {index}: clustering -- qubits {sorted(tenants)} "
                    f"share {site} but are not an interacting pair of this "
                    f"stage"
                )
        if site.zone is Zone.STORAGE and len(tenants) > 1:
            report.fail(
                f"instr {index}: storage site {site} holds "
                f"{sorted(tenants)} (storage sites are single-occupancy)"
            )


def validate_program(
    program: NAProgram,
    source_circuit: Circuit | None = None,
    raise_on_error: bool = True,
) -> ValidationReport:
    """Replay ``program`` and check every hardware constraint.

    Args:
        program: The compiled program.
        source_circuit: When given, additionally require that the executed
            gate multiset equals the circuit's native gate multiset.
        raise_on_error: Raise :class:`ValidationError` instead of returning
            a failing report.

    Returns:
        The :class:`ValidationReport` (always ``ok`` if ``raise_on_error``).
    """
    report = ValidationReport()
    tracker = PositionTracker.from_layout(program.initial_layout)

    for index, instr in enumerate(program.instructions):
        report.num_instructions_checked += 1
        if isinstance(instr, OneQubitLayer):
            for gate in instr.gates:
                if gate.is_two_qubit:
                    report.fail(
                        f"instr {index}: two-qubit gate {gate} in 1Q layer"
                    )
        elif isinstance(instr, MoveBatch):
            _check_move_batch(report, program, index, instr)
            try:
                tracker.apply_moves(instr.all_moves)
            except TrackerError as exc:
                report.fail(f"instr {index}: replay failed: {exc}")
        elif isinstance(instr, RydbergStage):
            _check_rydberg_stage(report, index, instr, tracker)
        else:  # pragma: no cover - defensive
            report.fail(f"instr {index}: unknown instruction {instr!r}")

    for site, tenants in tracker.occupancy().items():
        if len(tenants) > 2:
            report.fail(
                f"final layout: site {site} holds {len(tenants)} qubits"
            )

    if source_circuit is not None:
        expected_2q = Counter(
            _gate_key(g) for g in source_circuit.two_qubit_gates
        )
        executed_2q = Counter(
            _gate_key(g)
            for stage in program.rydberg_stages
            for g in stage.gates
        )
        if expected_2q != executed_2q:
            missing = expected_2q - executed_2q
            extra = executed_2q - expected_2q
            report.fail(
                f"2Q gate multiset mismatch: missing={dict(missing)} "
                f"extra={dict(extra)}"
            )
        expected_1q = Counter(
            _gate_key(g) for g in source_circuit.one_qubit_gates
        )
        executed_1q = Counter(
            _gate_key(g)
            for layer in program.one_qubit_layers
            for g in layer.gates
        )
        if expected_1q != executed_1q:
            report.fail("1Q gate multiset mismatch against source circuit")

    if raise_on_error:
        report.raise_if_failed()
    return report


__all__ = ["ValidationError", "ValidationReport", "validate_program"]
