"""Instruction set of a compiled NAQC program.

A compiled program is a straight-line sequence of three instruction kinds:

* :class:`OneQubitLayer` -- a layer of parallel Raman pulses (chains on the
  same qubit execute sequentially, so the layer's wall-clock time is its
  *depth* times the 1Q gate duration);
* :class:`MoveBatch` -- up to ``num_aods`` CollMoves executed concurrently
  on independent AOD arrays, book-ended by SLM<->AOD transfers;
* :class:`RydbergStage` -- one global Rydberg excitation executing all
  co-located CZ-class gate pairs of the stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.gates import Gate
from ..hardware.moves import CollMove, Move
from ..hardware.params import HardwareParams


@dataclass
class OneQubitLayer:
    """A layer of one-qubit gates executed by parallel Raman pulses.

    Attributes:
        gates: All one-qubit gates of the layer, in program order.
    """

    gates: list[Gate] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        """Number of 1Q gates in the layer."""
        return len(self.gates)

    def pulse_counts(self) -> dict[int, int]:
        """Sequential pulse count per qubit."""
        counts: dict[int, int] = {}
        for gate in self.gates:
            q = gate.qubits[0]
            counts[q] = counts.get(q, 0) + 1
        return counts

    @property
    def depth(self) -> int:
        """Longest per-qubit pulse chain (sets the layer duration)."""
        return max(self.pulse_counts().values(), default=0)

    def duration(self, params: HardwareParams) -> float:
        """Wall-clock time of the layer (seconds)."""
        return self.depth * params.duration_1q


@dataclass
class MoveBatch:
    """CollMoves executed in parallel on distinct AOD arrays.

    A batch picks all its qubits up (one transfer), moves every CollMove
    concurrently, and drops the qubits back into static traps (a second
    transfer); its wall-clock time is ``2 * t_transfer + max(move time)``.

    Attributes:
        coll_moves: Member CollMoves; at most one per AOD array.
    """

    coll_moves: list[CollMove] = field(default_factory=list)

    @property
    def num_coll_moves(self) -> int:
        """Number of CollMoves in this batch."""
        return len(self.coll_moves)

    @property
    def all_moves(self) -> list[Move]:
        """Every member 1Q move across the batch's CollMoves."""
        return [m for cm in self.coll_moves for m in cm.moves]

    @property
    def moved_qubits(self) -> tuple[int, ...]:
        """All qubits moved by the batch, ascending."""
        return tuple(sorted(m.qubit for m in self.all_moves))

    @property
    def num_transfers(self) -> int:
        """Trap transfers charged to the batch (2 per moved qubit)."""
        return 2 * len(self.all_moves)

    def duration(self, params: HardwareParams) -> float:
        """Wall-clock time: pickup + slowest collective move + drop."""
        if not self.coll_moves:
            return 0.0
        longest = max(cm.move_duration(params) for cm in self.coll_moves)
        return 2.0 * params.duration_transfer + longest


@dataclass
class RydbergStage:
    """One global Rydberg excitation executing a stage of CZ-class gates.

    Attributes:
        gates: The CZ-class gates executed in this excitation; pairwise
            qubit-disjoint.
    """

    gates: list[Gate] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        """Number of two-qubit gates executed."""
        return len(self.gates)

    def interacting_qubits(self) -> set[int]:
        """Qubits participating in a CZ this stage."""
        qubits: set[int] = set()
        for gate in self.gates:
            qubits.update(gate.qubits)
        return qubits

    def duration(self, params: HardwareParams) -> float:
        """Wall-clock time of the excitation (seconds)."""
        return params.duration_cz


Instruction = OneQubitLayer | MoveBatch | RydbergStage


__all__ = ["Instruction", "MoveBatch", "OneQubitLayer", "RydbergStage"]
