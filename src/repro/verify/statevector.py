"""Dense state-vector simulation for semantic verification.

The compiler reorders gates aggressively: CZ-class gates commute into
blocks, stages are re-sequenced by the Stage Scheduler, and diagonal 1Q
gates float across blocks.  This module provides an independent check
that all of that is *unitarily sound*: simulate the original circuit and
the compiled program's gate order and compare final states on a random
input, up to global phase.

Dense simulation is exponential; the verifier is meant for circuits of
up to ~12 qubits (tests use <= 10).
"""

from __future__ import annotations

import math

import numpy as np

from ..circuits.circuit import Barrier, Circuit, Measure
from ..circuits.gates import Gate
from ..schedule.instructions import OneQubitLayer, RydbergStage
from ..schedule.program import NAProgram

#: Refuse dense simulation beyond this width (2^16 amplitudes).
MAX_SIM_QUBITS = 16


class SimulationError(ValueError):
    """Raised for unsimulable circuits (too wide, unknown gate...)."""


def _u(theta: float, phi: float, lam: float) -> np.ndarray:
    half = theta / 2.0
    return np.array(
        [
            [math.cos(half), -np.exp(1j * lam) * math.sin(half)],
            [
                np.exp(1j * phi) * math.sin(half),
                np.exp(1j * (phi + lam)) * math.cos(half),
            ],
        ],
        dtype=complex,
    )


_SQRT2 = 1.0 / math.sqrt(2.0)

_FIXED_1Q: dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.diag([1, -1]).astype(complex),
    "h": np.array([[_SQRT2, _SQRT2], [_SQRT2, -_SQRT2]], dtype=complex),
    "s": np.diag([1, 1j]).astype(complex),
    "sdg": np.diag([1, -1j]).astype(complex),
    "t": np.diag([1, np.exp(1j * math.pi / 4)]).astype(complex),
    "tdg": np.diag([1, np.exp(-1j * math.pi / 4)]).astype(complex),
    "sx": 0.5 * np.array(
        [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
    ),
}


def gate_matrix_1q(gate: Gate) -> np.ndarray:
    """2x2 unitary of a one-qubit gate."""
    name = gate.name
    if name in _FIXED_1Q:
        return _FIXED_1Q[name]
    if name == "rx":
        (theta,) = gate.params
        return _u(theta, -math.pi / 2, math.pi / 2)
    if name == "ry":
        (theta,) = gate.params
        return _u(theta, 0.0, 0.0)
    if name == "rz":
        (theta,) = gate.params
        return np.diag(
            [np.exp(-1j * theta / 2), np.exp(1j * theta / 2)]
        ).astype(complex)
    if name in ("p", "u1"):
        (lam,) = gate.params
        return np.diag([1, np.exp(1j * lam)]).astype(complex)
    if name == "u2":
        phi, lam = gate.params
        return _u(math.pi / 2, phi, lam)
    if name in ("u3", "u"):
        theta, phi, lam = gate.params
        return _u(theta, phi, lam)
    raise SimulationError(f"no 1Q matrix for gate {gate}")


def gate_diagonal_2q(gate: Gate) -> np.ndarray:
    """Length-4 diagonal of a CZ-class gate (order |00>,|01>,|10>,|11>)."""
    name = gate.name
    if name == "cz":
        return np.array([1, 1, 1, -1], dtype=complex)
    if name in ("cp", "cu1"):
        (lam,) = gate.params
        return np.array([1, 1, 1, np.exp(1j * lam)], dtype=complex)
    if name == "rzz":
        (theta,) = gate.params
        half = np.exp(-1j * theta / 2)
        conj = np.exp(1j * theta / 2)
        return np.array([half, conj, conj, half], dtype=complex)
    raise SimulationError(f"no diagonal for gate {gate}")


def gate_matrix_2q(gate: Gate) -> np.ndarray:
    """4x4 unitary of a two-qubit gate (control = first qubit)."""
    if gate.is_cz_class:
        return np.diag(gate_diagonal_2q(gate))
    if gate.name == "cx":
        return np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        )
    if gate.name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )
    if gate.name == "crz":
        (theta,) = gate.params
        return np.diag(
            [1, 1, np.exp(-1j * theta / 2), np.exp(1j * theta / 2)]
        ).astype(complex)
    raise SimulationError(f"no 2Q matrix for gate {gate}")


class StateVector:
    """A dense n-qubit state with little-endian qubit indexing."""

    def __init__(self, num_qubits: int, state: np.ndarray | None = None):
        if num_qubits > MAX_SIM_QUBITS:
            raise SimulationError(
                f"{num_qubits} qubits exceed the dense-simulation cap "
                f"({MAX_SIM_QUBITS})"
            )
        self.num_qubits = num_qubits
        if state is None:
            self.state = np.zeros(2**num_qubits, dtype=complex)
            self.state[0] = 1.0
        else:
            state = np.asarray(state, dtype=complex)
            if state.shape != (2**num_qubits,):
                raise SimulationError("state vector has wrong dimension")
            self.state = state.copy()

    @classmethod
    def random(cls, num_qubits: int, seed: int = 0) -> "StateVector":
        """Haar-ish random normalised state (Gaussian amplitudes)."""
        rng = np.random.default_rng(seed)
        raw = rng.normal(size=2**num_qubits) + 1j * rng.normal(
            size=2**num_qubits
        )
        return cls(num_qubits, raw / np.linalg.norm(raw))

    def apply_gate(self, gate: Gate) -> None:
        """Apply one gate in place."""
        if gate.num_qubits == 1:
            self._apply_1q(gate_matrix_1q(gate), gate.qubits[0])
        else:
            self._apply_2q(gate_matrix_2q(gate), *gate.qubits)

    def apply_circuit(self, circuit: Circuit) -> None:
        """Apply every gate of a circuit in order (barriers ignored)."""
        for op in circuit.operations:
            if isinstance(op, (Barrier, Measure)):
                continue
            self.apply_gate(op)

    def _apply_1q(self, matrix: np.ndarray, qubit: int) -> None:
        psi = self.state.reshape(
            2 ** (self.num_qubits - qubit - 1), 2, 2**qubit
        )
        self.state = np.einsum(
            "ab,ibj->iaj", matrix, psi
        ).reshape(-1)

    def _apply_2q(self, matrix: np.ndarray, q0: int, q1: int) -> None:
        # Build the permuted tensor axes so (q0, q1) become a joint index.
        n = self.num_qubits
        psi = self.state.reshape([2] * n)
        # numpy axis k corresponds to qubit n-1-k (big-endian reshape).
        a0, a1 = n - 1 - q0, n - 1 - q1
        psi = np.moveaxis(psi, (a0, a1), (0, 1))
        shape = psi.shape
        psi = psi.reshape(4, -1)
        psi = matrix @ psi
        psi = psi.reshape(shape)
        psi = np.moveaxis(psi, (0, 1), (a0, a1))
        self.state = psi.reshape(-1)

    def fidelity_with(self, other: "StateVector") -> float:
        """|<self|other>|^2 (1.0 iff equal up to global phase)."""
        return float(abs(np.vdot(self.state, other.state)) ** 2)


def simulate_circuit(
    circuit: Circuit, initial: StateVector | None = None
) -> StateVector:
    """Run a circuit on ``initial`` (|0...0> by default)."""
    state = initial or StateVector(circuit.num_qubits)
    state = StateVector(circuit.num_qubits, state.state)
    state.apply_circuit(circuit)
    return state


def simulate_program_gates(
    program: NAProgram,
    num_qubits: int,
    initial: StateVector | None = None,
) -> StateVector:
    """Apply a compiled program's gates in scheduled order.

    Movement batches carry no unitary action; 1Q layers and Rydberg
    stages apply their gates in instruction order.
    """
    state = initial or StateVector(num_qubits)
    state = StateVector(num_qubits, state.state)
    for instr in program.instructions:
        if isinstance(instr, OneQubitLayer):
            for gate in instr.gates:
                state.apply_gate(gate)
        elif isinstance(instr, RydbergStage):
            for gate in instr.gates:
                state.apply_gate(gate)
    return state


def verify_program_semantics(
    program: NAProgram,
    circuit: Circuit,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> float:
    """Check the compiled schedule is unitarily equivalent to the circuit.

    Simulates both on the same random input state and returns the overlap
    fidelity (asserting it is within ``tolerance`` of 1).

    Raises:
        SimulationError: On failure or unsimulable inputs.
    """
    initial = StateVector.random(circuit.num_qubits, seed=seed)
    want = simulate_circuit(circuit, initial)
    got = simulate_program_gates(program, circuit.num_qubits, initial)
    overlap = want.fidelity_with(got)
    if abs(overlap - 1.0) > tolerance:
        raise SimulationError(
            f"compiled schedule is NOT equivalent to the circuit: "
            f"overlap fidelity {overlap:.12f}"
        )
    return overlap


__all__ = [
    "MAX_SIM_QUBITS",
    "SimulationError",
    "StateVector",
    "gate_diagonal_2q",
    "gate_matrix_1q",
    "gate_matrix_2q",
    "simulate_circuit",
    "simulate_program_gates",
    "verify_program_semantics",
]
