"""Independent semantic verification (dense state-vector simulation)."""

from .statevector import (
    MAX_SIM_QUBITS,
    SimulationError,
    StateVector,
    simulate_circuit,
    simulate_program_gates,
    verify_program_semantics,
)

__all__ = [
    "MAX_SIM_QUBITS",
    "SimulationError",
    "StateVector",
    "simulate_circuit",
    "simulate_program_gates",
    "verify_program_semantics",
]
