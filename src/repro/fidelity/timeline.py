"""Timeline simulation of a compiled program.

Replays the instruction stream to produce everything the paper's fidelity
formula (Eq. 1) consumes:

* the execution time ``T_exe`` (1Q layers + movement batches + excitations);
* per-qubit *decoherence exposure* ``T_q``: wall-clock time during which the
  qubit is neither in the storage zone nor actively being gated.  Movement
  and transfer time counts as exposure (the qubit is in flight); storage
  dwell does not (Sec. 2.2: coherence decay in storage is negligible);
* the idle-excitation count ``sum_i n_i``: how many times a non-interacting
  qubit sat in the computation zone during a Rydberg excitation;
* gate and transfer counts (``g1``, ``g2``, ``N_trans``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.geometry import Zone
from ..schedule.instructions import MoveBatch, OneQubitLayer, RydbergStage
from ..schedule.program import NAProgram
from ..schedule.tracker import PositionTracker


@dataclass
class ExecutionTimeline:
    """Aggregates produced by replaying a program.

    Attributes:
        total_time: Execution time ``T_exe`` in seconds.
        exposure: Per-qubit decoherence exposure ``T_q`` in seconds.
        num_one_qubit_gates: ``g1``.
        num_two_qubit_gates: ``g2``.
        num_transfers: ``N_trans``.
        idle_excitations: ``sum_i n_i`` across all Rydberg stages.
        idle_per_stage: ``n_i`` for each stage, in order.
        num_stages: Number of Rydberg excitations ``S``.
        move_time: Seconds spent in movement batches (incl. transfers).
        storage_dwell: Per-qubit seconds protected in the storage zone.
    """

    total_time: float = 0.0
    exposure: dict[int, float] = field(default_factory=dict)
    num_one_qubit_gates: int = 0
    num_two_qubit_gates: int = 0
    num_transfers: int = 0
    idle_excitations: int = 0
    idle_per_stage: list[int] = field(default_factory=list)
    num_stages: int = 0
    move_time: float = 0.0
    storage_dwell: dict[int, float] = field(default_factory=dict)

    def max_exposure(self) -> float:
        """Largest per-qubit exposure (seconds)."""
        return max(self.exposure.values(), default=0.0)

    def total_exposure(self) -> float:
        """Sum of per-qubit exposures (seconds)."""
        return sum(self.exposure.values())


def simulate_timeline(program: NAProgram) -> ExecutionTimeline:
    """Replay ``program`` and accumulate the Eq. (1) inputs."""
    params = program.architecture.params
    layout = PositionTracker.from_layout(program.initial_layout)
    timeline = ExecutionTimeline()
    qubits = layout.qubits
    timeline.exposure = {q: 0.0 for q in qubits}
    timeline.storage_dwell = {q: 0.0 for q in qubits}

    def expose_resting(duration: float, busy: dict[int, float]) -> None:
        """Charge ``duration`` to every qubit, minus protection and work."""
        for q in qubits:
            work = busy.get(q, 0.0)
            if layout.zone_of(q) is Zone.STORAGE:
                timeline.storage_dwell[q] += duration - work
            else:
                timeline.exposure[q] += duration - work

    for instr in program.instructions:
        if isinstance(instr, OneQubitLayer):
            duration = instr.duration(params)
            busy = {
                q: count * params.duration_1q
                for q, count in instr.pulse_counts().items()
            }
            expose_resting(duration, busy)
            timeline.total_time += duration
            timeline.num_one_qubit_gates += instr.num_gates
        elif isinstance(instr, MoveBatch):
            duration = instr.duration(params)
            movers = set(instr.moved_qubits)
            # Movers are in flight for the full batch: exposed regardless of
            # their start/end zone.  Resting qubits are protected iff parked
            # in storage.
            for q in qubits:
                if q in movers:
                    timeline.exposure[q] += duration
                elif layout.zone_of(q) is Zone.STORAGE:
                    timeline.storage_dwell[q] += duration
                else:
                    timeline.exposure[q] += duration
            layout.apply_moves(instr.all_moves)
            timeline.total_time += duration
            timeline.move_time += duration
            timeline.num_transfers += instr.num_transfers
        elif isinstance(instr, RydbergStage):
            duration = instr.duration(params)
            interacting = instr.interacting_qubits()
            idle_here = 0
            for q in qubits:
                if q in interacting:
                    continue
                if layout.zone_of(q) is Zone.STORAGE:
                    timeline.storage_dwell[q] += duration
                else:
                    timeline.exposure[q] += duration
                    idle_here += 1
            timeline.total_time += duration
            timeline.num_stages += 1
            timeline.num_two_qubit_gates += instr.num_gates
            timeline.idle_excitations += idle_here
            timeline.idle_per_stage.append(idle_here)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown instruction {instr!r}")

    return timeline


__all__ = ["ExecutionTimeline", "simulate_timeline"]
