"""Fidelity and execution-time analysis (paper Sec. 2.2, Eq. 1)."""

from .model import (
    COMPONENT_NAMES,
    FidelityModel,
    FidelityReport,
    evaluate_program,
)
from .montecarlo import (
    MonteCarloResult,
    crosscheck_fidelity,
    sample_program_fidelity,
)
from .timeline import ExecutionTimeline, simulate_timeline

__all__ = [
    "COMPONENT_NAMES",
    "ExecutionTimeline",
    "FidelityModel",
    "FidelityReport",
    "MonteCarloResult",
    "crosscheck_fidelity",
    "evaluate_program",
    "sample_program_fidelity",
    "simulate_timeline",
]
