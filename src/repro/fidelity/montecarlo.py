"""Monte-Carlo cross-validation of the analytic fidelity model.

Eq. (1) multiplies per-event success probabilities.  An equivalent
stochastic reading samples every error event independently:

* each executed 1Q / CZ gate fails with probability ``1 - f``;
* each idle compute-zone qubit at a Rydberg shot fails with
  probability ``1 - f_exc``;
* each trap transfer fails with probability ``1 - f_trans``;
* each qubit suffers a decoherence event with probability
  ``T_q / T2`` (the paper's linear decay model).

A run *succeeds* when no event fired; the success rate over many shots
estimates ``f_output``.  Agreement between the sampled rate and the
analytic product is a strong end-to-end check that the timeline
accounting (exposure, idle counts, transfer counts) feeds Eq. (1)
consistently -- any double-counting or missed term shows up as a
systematic gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..schedule.program import NAProgram
from ..utils.rng import make_rng
from .model import FidelityModel
from .timeline import ExecutionTimeline, simulate_timeline


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a sampling run.

    Attributes:
        shots: Number of sampled executions.
        successes: Shots with zero error events.
        estimate: ``successes / shots``.
        std_error: Binomial standard error of the estimate.
        analytic: The Eq. (1) fidelity it estimates.
    """

    shots: int
    successes: int
    estimate: float
    std_error: float
    analytic: float

    def within(self, num_sigmas: float = 4.0) -> bool:
        """Is the analytic value inside ``num_sigmas`` of the estimate?"""
        slack = max(self.std_error, 1e-12) * num_sigmas
        return abs(self.estimate - self.analytic) <= slack


def _success_probability_events(
    timeline: ExecutionTimeline, model: FidelityModel
) -> list[tuple[float, int]]:
    """(per-event success probability, event count) pairs of a program."""
    p = model.params
    events = [
        (p.fidelity_cz, timeline.num_two_qubit_gates),
        (p.fidelity_excitation, timeline.idle_excitations),
        (p.fidelity_transfer, timeline.num_transfers),
    ]
    for exposure in timeline.exposure.values():
        survival = max(0.0, 1.0 - exposure / p.t2)
        events.append((survival, 1))
    return events


def sample_program_fidelity(
    program: NAProgram,
    shots: int = 20000,
    seed: int = 0,
    include_1q: bool = False,
) -> MonteCarloResult:
    """Estimate Eq. (1) by independent per-event Bernoulli sampling.

    Args:
        program: The compiled program.
        shots: Sampled executions (binomial error ~ 1/sqrt(shots)).
        seed: RNG seed.
        include_1q: Also sample 1Q-gate failures (off to match the
            paper's comparison convention).

    Returns:
        The :class:`MonteCarloResult`; ``analytic`` carries the matching
        closed-form value.
    """
    if shots <= 0:
        raise ValueError("need a positive number of shots")
    model = FidelityModel(program.architecture.params)
    timeline = simulate_timeline(program)
    report = model.from_timeline(timeline)
    analytic = report.total_with_1q if include_1q else report.total

    events = _success_probability_events(timeline, model)
    if include_1q:
        events.append(
            (model.params.fidelity_1q, timeline.num_one_qubit_gates)
        )

    rng = make_rng(seed)
    successes = 0
    for _ in range(shots):
        ok = True
        for probability, count in events:
            if count == 0 or probability >= 1.0:
                continue
            if probability <= 0.0:
                ok = False
                break
            # Sample "no failure among `count` iid events" directly from
            # the binomial survival: faster and exactly equivalent.
            if rng.random() >= probability**count:
                ok = False
                break
        if ok:
            successes += 1

    estimate = successes / shots
    std_error = math.sqrt(max(estimate * (1.0 - estimate), 1e-12) / shots)
    return MonteCarloResult(
        shots=shots,
        successes=successes,
        estimate=estimate,
        std_error=std_error,
        analytic=analytic,
    )


def crosscheck_fidelity(
    program: NAProgram,
    shots: int = 20000,
    seed: int = 0,
    num_sigmas: float = 4.0,
) -> MonteCarloResult:
    """Run the sampler and assert agreement with Eq. (1).

    Raises:
        AssertionError: When the analytic value falls outside the
            ``num_sigmas`` confidence band.
    """
    result = sample_program_fidelity(program, shots=shots, seed=seed)
    assert result.within(num_sigmas), (
        f"Monte-Carlo {result.estimate:.5f} +/- {result.std_error:.5f} "
        f"disagrees with analytic {result.analytic:.5f}"
    )
    return result


__all__ = [
    "MonteCarloResult",
    "crosscheck_fidelity",
    "sample_program_fidelity",
]
