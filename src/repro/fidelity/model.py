"""The paper's output-fidelity model (Eq. 1, Sec. 2.2).

    f_output = f1^g1 * f2^g2 * f_exc^(sum_i n_i) * f_trans^N_trans
               * prod_q (1 - T_q / T2)

The one-qubit term is computed but excluded from ``total`` by default,
matching the paper's convention ("the 1Q term is often omitted in fidelity
comparisons").  Component infidelities feed the Fig. 6 ablation plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.program import NAProgram
from .timeline import ExecutionTimeline, simulate_timeline

#: Order in which Fig. 6 stacks the fidelity components.
COMPONENT_NAMES = ("two_qubit", "excitation", "transfer", "decoherence")


@dataclass(frozen=True)
class FidelityReport:
    """Fidelity components and the quantities they derive from.

    Attributes:
        one_qubit: ``f1^g1`` (excluded from ``total`` by convention).
        two_qubit: ``f2^g2``.
        excitation: ``f_exc^(sum n_i)``.
        transfer: ``f_trans^N_trans``.
        decoherence: ``prod_q (1 - T_q/T2)``, clamped at 0.
        total: Product of all components except ``one_qubit``.
        total_with_1q: Product including the 1Q term.
        execution_time: ``T_exe`` in seconds.
        timeline: The full replay aggregate for deeper inspection.
    """

    one_qubit: float
    two_qubit: float
    excitation: float
    transfer: float
    decoherence: float
    total: float
    total_with_1q: float
    execution_time: float
    timeline: ExecutionTimeline

    @property
    def execution_time_us(self) -> float:
        """``T_exe`` in microseconds (the unit Table 3 reports)."""
        return self.execution_time * 1e6

    def component(self, name: str) -> float:
        """Fidelity component by Fig. 6 name."""
        if name not in COMPONENT_NAMES:
            raise KeyError(f"unknown component {name!r}")
        return getattr(self, name)

    def infidelity_breakdown(self) -> dict[str, float]:
        """Per-component infidelity ``1 - f_component`` (Fig. 6 areas)."""
        return {name: 1.0 - self.component(name) for name in COMPONENT_NAMES}

    def log_breakdown(self) -> dict[str, float]:
        """Per-component ``-log10`` contribution; additive on Fig. 6's
        log-scale stacks and robust when components underflow toward 0."""
        import math

        out: dict[str, float] = {}
        for name in COMPONENT_NAMES:
            value = self.component(name)
            out[name] = math.inf if value <= 0.0 else -math.log10(value)
        return out


class FidelityModel:
    """Evaluates Eq. (1) for compiled programs.

    Args:
        params: Hardware constants; defaults to the paper's Table 1.
    """

    def __init__(self, params: HardwareParams = DEFAULT_PARAMS) -> None:
        self._params = params

    @property
    def params(self) -> HardwareParams:
        """Hardware constants in force."""
        return self._params

    def evaluate(self, program: NAProgram) -> FidelityReport:
        """Replay ``program`` and compute all fidelity components."""
        timeline = simulate_timeline(program)
        return self.from_timeline(timeline)

    def from_timeline(self, timeline: ExecutionTimeline) -> FidelityReport:
        """Compute Eq. (1) from a pre-computed timeline."""
        p = self._params
        one_qubit = p.fidelity_1q**timeline.num_one_qubit_gates
        two_qubit = p.fidelity_cz**timeline.num_two_qubit_gates
        excitation = p.fidelity_excitation**timeline.idle_excitations
        transfer = p.fidelity_transfer**timeline.num_transfers
        decoherence = 1.0
        for exposure in timeline.exposure.values():
            decoherence *= max(0.0, 1.0 - exposure / p.t2)
        total = two_qubit * excitation * transfer * decoherence
        return FidelityReport(
            one_qubit=one_qubit,
            two_qubit=two_qubit,
            excitation=excitation,
            transfer=transfer,
            decoherence=decoherence,
            total=total,
            total_with_1q=total * one_qubit,
            execution_time=timeline.total_time,
            timeline=timeline,
        )


def evaluate_program(
    program: NAProgram, params: HardwareParams | None = None
) -> FidelityReport:
    """One-shot convenience: Eq. (1) for ``program``.

    Uses the program's own architecture parameters unless overridden.
    """
    effective = params or program.architecture.params
    return FidelityModel(effective).evaluate(program)


__all__ = [
    "COMPONENT_NAMES",
    "FidelityModel",
    "FidelityReport",
    "evaluate_program",
]
