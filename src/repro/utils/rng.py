"""Deterministic randomness helpers.

Every stochastic choice in the library (random benchmark instances, the
random mobile/static pick in the continuous router's case 4, Enola's
randomised MIS restarts and annealing) flows through a seeded
``random.Random`` so whole experiments replay bit-identically.
"""

from __future__ import annotations

import random


def make_rng(seed: int | None) -> random.Random:
    """Create an isolated ``random.Random``; ``None`` means OS entropy."""
    return random.Random(seed)


def derive_rng(rng: random.Random, salt: str) -> random.Random:
    """Fork a child generator so sibling phases don't share a stream."""
    return random.Random(f"{rng.random()}::{salt}")


__all__ = ["derive_rng", "make_rng"]
