"""Shared utilities (seeded RNG, text tables)."""

from .rng import derive_rng, make_rng
from .text import format_table

__all__ = ["derive_rng", "format_table", "make_rng"]
