"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table (markdown-ish pipes)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1e4 or abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:.4g}"
    return str(cell)


__all__ = ["format_table"]
