"""Initial qubit placement.

Enola optimises an initial layout with simulated annealing and keeps
returning to it; PowerMove adopts the same initial layout (Sec. 4.2) but
its continuous router never returns to it, so the layout's quality matters
much less -- PowerMove defaults to the fast row-major grid, Enola to the
annealed one (one of the reasons its compile time is orders of magnitude
larger, Table 3's ``T_comp`` columns).

The annealing objective is the summed Euclidean distance between the
partners of every two-qubit gate (weighted by multiplicity), the standard
interaction-proximity objective used by movement-based NAQC compilers.
"""

from __future__ import annotations

import math
import random
from collections import Counter

from ..circuits.circuit import Circuit
from ..hardware.geometry import Zone, ZonedArchitecture
from ..hardware.layout import Layout


def interaction_weights(circuit: Circuit) -> dict[tuple[int, int], int]:
    """Multiplicity of each (min, max) interacting qubit pair."""
    return dict(Counter(circuit.interaction_pairs()))


def row_major_layout(
    architecture: ZonedArchitecture,
    num_qubits: int,
    zone: Zone = Zone.COMPUTE,
) -> Layout:
    """Fast default: qubit ``i`` on the i-th site of ``zone``."""
    return Layout.row_major(architecture, num_qubits, zone)


def spiral_layout(
    architecture: ZonedArchitecture,
    circuit: Circuit,
    zone: Zone = Zone.COMPUTE,
) -> Layout:
    """Interaction-weighted centre-out placement (no randomness).

    Sites of ``zone`` are ordered centre-out (squared distance from the
    zone centroid, ties broken row-major) and qubits are ordered by
    total interaction weight descending (ties by qubit id), so the most
    heavily interacting qubits land nearest the zone centre where every
    partner is cheap to reach -- a deterministic, O(n log n) alternative
    to the annealed placement in the spirit of routing-aware placement
    (Stade et al., arXiv:2505.22715).
    """
    n = circuit.num_qubits
    sites = architecture.sites_in(zone)
    if n > len(sites):
        raise ValueError(f"{n} qubits exceed {len(sites)} {zone.value} sites")
    load = {q: 0 for q in range(n)}
    for (a, b), weight in interaction_weights(circuit).items():
        load[a] += weight
        load[b] += weight
    cx = sum(site.x for site in sites) / len(sites)
    cy = sum(site.y for site in sites) / len(sites)
    centre_out = sorted(
        sites,
        key=lambda s: ((s.x - cx) ** 2 + (s.y - cy) ** 2, s.row, s.col),
    )
    hot_first = sorted(range(n), key=lambda q: (-load[q], q))
    return Layout(
        architecture,
        {q: centre_out[rank] for rank, q in enumerate(hot_first)},
    )


class _AnnealingState:
    """Assignment with incremental (per-qubit delta) cost evaluation."""

    def __init__(
        self,
        positions: list[tuple[float, float]],
        num_qubits: int,
        num_slots: int,
        weights: dict[tuple[int, int], int],
    ) -> None:
        self.positions = positions
        self.assignment = list(range(num_qubits))
        self.free_slots = list(range(num_qubits, num_slots))
        self.adjacency: dict[int, list[tuple[int, int]]] = {
            q: [] for q in range(num_qubits)
        }
        for (a, b), weight in weights.items():
            self.adjacency[a].append((b, weight))
            self.adjacency[b].append((a, weight))
        self.cost = sum(
            weight * self._distance(a, b) for (a, b), weight in weights.items()
        )

    def _distance(self, a: int, b: int) -> float:
        xa, ya = self.positions[self.assignment[a]]
        xb, yb = self.positions[self.assignment[b]]
        return math.hypot(xa - xb, ya - yb)

    def local_cost(self, qubit: int, skip: int | None = None) -> float:
        """Cost of all interaction terms incident to ``qubit``."""
        total = 0.0
        for other, weight in self.adjacency[qubit]:
            if other == skip:
                continue
            total += weight * self._distance(qubit, other)
        return total

    def swap_delta(self, a: int, b: int) -> float:
        """Cost change if qubits ``a`` and ``b`` traded slots."""
        before = self.local_cost(a) + self.local_cost(b, skip=a)
        self.assignment[a], self.assignment[b] = (
            self.assignment[b],
            self.assignment[a],
        )
        after = self.local_cost(a) + self.local_cost(b, skip=a)
        self.assignment[a], self.assignment[b] = (
            self.assignment[b],
            self.assignment[a],
        )
        return after - before

    def swap(self, a: int, b: int, delta: float) -> None:
        """Commit a previously evaluated swap."""
        self.assignment[a], self.assignment[b] = (
            self.assignment[b],
            self.assignment[a],
        )
        self.cost += delta

    def relocate_delta(self, qubit: int, slot_index: int) -> float:
        """Cost change if ``qubit`` moved to ``free_slots[slot_index]``."""
        before = self.local_cost(qubit)
        old_slot = self.assignment[qubit]
        self.assignment[qubit] = self.free_slots[slot_index]
        after = self.local_cost(qubit)
        self.assignment[qubit] = old_slot
        return after - before

    def relocate(self, qubit: int, slot_index: int, delta: float) -> None:
        """Commit a previously evaluated relocation."""
        old_slot = self.assignment[qubit]
        self.assignment[qubit] = self.free_slots[slot_index]
        self.free_slots[slot_index] = old_slot
        self.cost += delta


def annealed_layout(
    architecture: ZonedArchitecture,
    circuit: Circuit,
    zone: Zone = Zone.COMPUTE,
    rng: random.Random | None = None,
    iterations_per_qubit: int = 150,
    initial_temperature: float | None = None,
    cooling: float = 0.999,
) -> Layout:
    """Simulated-annealing placement minimising weighted pair distance.

    Args:
        architecture: Target machine.
        circuit: Source circuit whose interaction pairs drive the cost.
        zone: Zone to place into.
        rng: Random source (fresh seed-0 generator when omitted).
        iterations_per_qubit: Annealing steps scale as
            ``iterations_per_qubit * num_qubits`` -- deliberately
            super-linear in circuit size, mirroring Enola's heavier
            compile-time profile.
        initial_temperature: Starting temperature; defaults to two site
            pitches of cost.
        cooling: Geometric cooling factor per step.

    Returns:
        The annealed layout; falls back to row-major ordering for
        gate-free circuits.
    """
    rng = rng or random.Random(0)
    n = circuit.num_qubits
    sites = architecture.sites_in(zone)
    if n > len(sites):
        raise ValueError(f"{n} qubits exceed {len(sites)} {zone.value} sites")
    weights = interaction_weights(circuit)
    if not weights:
        return row_major_layout(architecture, n, zone)

    positions = [site.position for site in sites]
    state = _AnnealingState(positions, n, len(sites), weights)
    temperature = initial_temperature or 2.0 * architecture.params.site_pitch
    steps = iterations_per_qubit * n

    def accept(delta: float) -> bool:
        if delta <= 0:
            return True
        return rng.random() < math.exp(-delta / max(temperature, 1e-15))

    for _ in range(steps):
        qubit = rng.randrange(n)
        if state.free_slots and rng.random() < 0.3:
            slot_index = rng.randrange(len(state.free_slots))
            delta = state.relocate_delta(qubit, slot_index)
            if accept(delta):
                state.relocate(qubit, slot_index, delta)
        else:
            other = rng.randrange(n)
            if other != qubit:
                delta = state.swap_delta(qubit, other)
                if accept(delta):
                    state.swap(qubit, other, delta)
        temperature *= cooling

    return Layout(
        architecture, {q: sites[state.assignment[q]] for q in range(n)}
    )


__all__ = [
    "annealed_layout",
    "interaction_weights",
    "row_major_layout",
    "spiral_layout",
]
