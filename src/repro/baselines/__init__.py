"""Baseline compilers the paper compares against (Enola, Atomique-style)."""

from .atomique import AtomiqueConfig, AtomiqueLikeCompiler
from .enola import EnolaCompiler, EnolaConfig
from .mis import best_mis, greedy_mis, mis_stage_partition
from .placement import annealed_layout, interaction_weights, row_major_layout

__all__ = [
    "AtomiqueConfig",
    "AtomiqueLikeCompiler",
    "EnolaCompiler",
    "EnolaConfig",
    "annealed_layout",
    "best_mis",
    "greedy_mis",
    "interaction_weights",
    "mis_stage_partition",
    "row_major_layout",
]
