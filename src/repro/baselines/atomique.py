"""Atomique-style fixed-array SWAP-insertion baseline.

The generation of NAQC compilers before movement-centric designs
(Atomique, Q-Pilot, and the earlier fixed-atom-array work) kept qubits on
*fixed home sites* and created connectivity by inserting SWAP gates --
each SWAP costing three CZs.  The PowerMove paper's Sec. 3.1 dismisses
this family in one line ("introduces additional two-qubit gates ...
which significantly reduces fidelity") and cites Enola's 779x two-qubit
fidelity advantage over Atomique; this module makes that argument
reproducible inside the same hardware model.

Model:

* logical qubits start on annealed (or row-major) home sites, one per
  site, computation zone only;
* a logical CZ between distant qubits is routed by swapping the logical
  states along a shortest grid path until the partners are neighbours --
  every SWAP is three physical CZs (plus the CX-decomposition Hadamards)
  between two *atoms*;
* each physical CZ executes exactly like one Enola stage: one atom moves
  onto its partner's site (one site pitch), the Rydberg laser fires, the
  atom moves back.

The resulting program is valid under the standard validator, and its
fidelity collapse relative to Enola/PowerMove comes from exactly the two
effects the papers describe: the inflated two-qubit gate count
(``f2^g2``) and the extra Rydberg excitations exposing idle qubits.

Because SWAPs permute the logical->atom mapping, the executed gate
stream is *not* gate-for-gate the source circuit; semantic equivalence
holds up to the final mapping permutation (verified in tests with the
state-vector simulator).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..circuits.blocks import partition_into_blocks
from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..circuits.transpile import transpile_to_native
from ..core.compiler import CompilationResult
from ..hardware.geometry import Site, Zone, ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.moves import CollMove, Move
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.instructions import MoveBatch, OneQubitLayer, RydbergStage
from ..schedule.program import NAProgram
from ..utils.rng import make_rng
from .placement import annealed_layout, row_major_layout


@dataclass(frozen=True)
class AtomiqueConfig:
    """Knobs of the fixed-array baseline.

    Attributes:
        seed: Seed for the annealed placement.
        sa_iterations_per_qubit: Annealing budget; 0 = row-major homes.
    """

    seed: int = 0
    sa_iterations_per_qubit: int = 50

    def __post_init__(self) -> None:
        if self.sa_iterations_per_qubit < 0:
            raise ValueError("annealing budget must be non-negative")


class AtomiqueLikeCompiler:
    """Fixed-home-site compiler creating connectivity via SWAP chains."""

    name = "atomique-like"

    def __init__(
        self,
        config: AtomiqueConfig | None = None,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> None:
        self._config = config or AtomiqueConfig()
        self._params = params

    @property
    def config(self) -> AtomiqueConfig:
        """Active configuration."""
        return self._config

    @property
    def variant_name(self) -> str:
        """Label used in reports."""
        return self.name

    # ------------------------------------------------------------------

    def compile(
        self,
        circuit: Circuit,
        architecture: ZonedArchitecture | None = None,
        initial_layout: Layout | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` with SWAP-insertion routing.

        Returns a :class:`CompilationResult` whose program executes the
        circuit up to the final logical->atom permutation recorded in
        ``program.metadata["final_mapping"]`` (atom holding each logical
        qubit at program end).
        """
        start = time.perf_counter()
        cfg = self._config
        native = transpile_to_native(circuit)
        partition = partition_into_blocks(native)
        arch = architecture or ZonedArchitecture.for_qubits(
            native.num_qubits, with_storage=False, params=self._params
        )
        rng = make_rng(cfg.seed)
        if initial_layout is None:
            if cfg.sa_iterations_per_qubit > 0:
                initial_layout = annealed_layout(
                    arch,
                    native,
                    zone=Zone.COMPUTE,
                    rng=rng,
                    iterations_per_qubit=cfg.sa_iterations_per_qubit,
                )
            else:
                initial_layout = row_major_layout(
                    arch, native.num_qubits, Zone.COMPUTE
                )

        state = _RoutingState(arch, initial_layout)
        instructions: list = []
        total_stages = 0
        swaps_inserted = 0

        for block in partition.blocks:
            gap = partition.one_qubit_gaps[block.index]
            if gap:
                instructions.append(
                    OneQubitLayer(
                        [state.physical_1q(g) for g in gap]
                    )
                )
            # Cheap heuristic: route the currently-closest pairs first so
            # earlier swaps do not stretch later ones more than needed.
            gates = sorted(
                block.gates, key=lambda g: state.logical_distance(g)
            )
            for gate in gates:
                swaps_inserted += state.route_and_execute(
                    gate, instructions
                )
                total_stages = sum(
                    1
                    for instr in instructions
                    if isinstance(instr, RydbergStage)
                )
        trailing = partition.one_qubit_gaps[partition.num_blocks]
        if trailing:
            instructions.append(
                OneQubitLayer([state.physical_1q(g) for g in trailing])
            )

        program = NAProgram(
            architecture=arch,
            initial_layout=initial_layout,
            instructions=instructions,
            source_name=circuit.name,
            compiler_name=self.variant_name,
            metadata={
                "num_blocks": partition.num_blocks,
                "num_stages": total_stages,
                "swaps_inserted": swaps_inserted,
                "use_storage": False,
                "num_aods": 1,
                "final_mapping": dict(state.logical_to_atom),
            },
        )
        compile_time = time.perf_counter() - start
        return CompilationResult(
            program=program,
            compile_time=compile_time,
            native_circuit=native,
            stats=dict(program.metadata),
        )


class _RoutingState:
    """Logical->atom mapping plus SWAP/physical-gate emission."""

    def __init__(self, arch: ZonedArchitecture, layout: Layout) -> None:
        self.arch = arch
        # Atoms never change homes; identify atom i with qubit index i of
        # the program and track which atom holds each logical state.
        self.home: dict[int, Site] = {
            q: layout.site_of(q) for q in layout.qubits
        }
        self.logical_to_atom: dict[int, int] = {
            q: q for q in layout.qubits
        }
        self._site_to_atom: dict[tuple[int, int], int] = {
            (s.col, s.row): q for q, s in self.home.items()
        }

    # -- geometry ----------------------------------------------------------

    def atom_at(self, col: int, row: int) -> int | None:
        """Atom whose home is compute site (col, row), if any."""
        return self._site_to_atom.get((col, row))

    def logical_distance(self, gate: Gate) -> int:
        """Chebyshev grid distance between a gate's logical partners."""
        a, b = gate.qubits
        sa = self.home[self.logical_to_atom[a]]
        sb = self.home[self.logical_to_atom[b]]
        return max(abs(sa.col - sb.col), abs(sa.row - sb.row))

    def _step_toward(self, source: Site, target: Site) -> Site:
        """The neighbouring *occupied* site one step from source toward
        target (greedy Chebyshev descent over atom homes)."""
        best: Site | None = None
        best_key: tuple | None = None
        for dc in (-1, 0, 1):
            for dr in (-1, 0, 1):
                if dc == 0 and dr == 0:
                    continue
                col, row = source.col + dc, source.row + dr
                atom = self.atom_at(col, row)
                if atom is None:
                    continue
                site = self.home[atom]
                dist = max(
                    abs(site.col - target.col), abs(site.row - target.row)
                )
                key = (dist, abs(dc) + abs(dr), col, row)
                if best_key is None or key < best_key:
                    best_key = key
                    best = site
        if best is None:  # pragma: no cover - grid always has neighbours
            raise RuntimeError("isolated atom in fixed array")
        return best

    # -- gate emission -------------------------------------------------------

    def physical_1q(self, gate: Gate) -> Gate:
        """Retarget a logical 1Q gate onto the atom holding its state."""
        return Gate(
            gate.name,
            (self.logical_to_atom[gate.qubits[0]],),
            gate.params,
        )

    def _emit_physical_cz_class(
        self, gate_name: str, params: tuple, atom_a: int, atom_b: int,
        instructions: list,
    ) -> None:
        """One physical CZ-class gate: move-in, excite, move-back."""
        site_a = self.home[atom_a]
        site_b = self.home[atom_b]
        out = Move(atom_a, site_a, site_b)
        instructions.append(MoveBatch(coll_moves=[CollMove(moves=[out])]))
        instructions.append(
            RydbergStage(gates=[Gate(gate_name, (atom_a, atom_b), params)])
        )
        back = Move(atom_a, site_b, site_a)
        instructions.append(MoveBatch(coll_moves=[CollMove(moves=[back])]))

    def _emit_swap(
        self, atom_a: int, atom_b: int, instructions: list
    ) -> None:
        """SWAP the logical states of two neighbouring atoms: 3 CX, each
        as H-CZ-H (the standard native decomposition)."""
        for control, target in (
            (atom_a, atom_b),
            (atom_b, atom_a),
            (atom_a, atom_b),
        ):
            instructions.append(
                OneQubitLayer(gates=[Gate("h", (target,))])
            )
            self._emit_physical_cz_class("cz", (), control, target, instructions)
            instructions.append(
                OneQubitLayer(gates=[Gate("h", (target,))])
            )
        # Update the logical mapping (atoms always hold exactly one
        # logical state, so both lookups succeed).
        logical_a = next(
            l for l, a in self.logical_to_atom.items() if a == atom_a
        )
        logical_b = next(
            l for l, a in self.logical_to_atom.items() if a == atom_b
        )
        self.logical_to_atom[logical_a] = atom_b
        self.logical_to_atom[logical_b] = atom_a

    def route_and_execute(self, gate: Gate, instructions: list) -> int:
        """Route a logical CZ-class gate with SWAPs, then execute it.

        Returns the number of SWAPs inserted.
        """
        logical_a, logical_b = gate.qubits
        swaps = 0
        while True:
            atom_a = self.logical_to_atom[logical_a]
            atom_b = self.logical_to_atom[logical_b]
            site_a = self.home[atom_a]
            site_b = self.home[atom_b]
            distance = max(
                abs(site_a.col - site_b.col), abs(site_a.row - site_b.row)
            )
            if distance <= 1:
                break
            step_site = self._step_toward(site_a, site_b)
            step_atom = self.atom_at(step_site.col, step_site.row)
            assert step_atom is not None
            self._emit_swap(atom_a, step_atom, instructions)
            swaps += 1
        atom_a = self.logical_to_atom[logical_a]
        atom_b = self.logical_to_atom[logical_b]
        self._emit_physical_cz_class(
            gate.name, gate.params, atom_a, atom_b, instructions
        )
        return swaps


__all__ = ["AtomiqueConfig", "AtomiqueLikeCompiler"]
