"""Atomique-style fixed-array SWAP-insertion baseline.

The generation of NAQC compilers before movement-centric designs
(Atomique, Q-Pilot, and the earlier fixed-atom-array work) kept qubits on
*fixed home sites* and created connectivity by inserting SWAP gates --
each SWAP costing three CZs.  The PowerMove paper's Sec. 3.1 dismisses
this family in one line ("introduces additional two-qubit gates ...
which significantly reduces fidelity") and cites Enola's 779x two-qubit
fidelity advantage over Atomique; this module makes that argument
reproducible inside the same hardware model.

Model:

* logical qubits start on annealed (or row-major) home sites, one per
  site, computation zone only;
* a logical CZ between distant qubits is routed by swapping the logical
  states along a shortest grid path until the partners are neighbours --
  every SWAP is three physical CZs (plus the CX-decomposition Hadamards)
  between two *atoms*;
* each physical CZ executes exactly like one Enola stage: one atom moves
  onto its partner's site (one site pitch), the Rydberg laser fires, the
  atom moves back.

The resulting program is valid under the standard validator, and its
fidelity collapse relative to Enola/PowerMove comes from exactly the two
effects the papers describe: the inflated two-qubit gate count
(``f2^g2``) and the extra Rydberg excitations exposing idle qubits.

Because SWAPs permute the logical->atom mapping, the executed gate
stream is *not* gate-for-gate the source circuit; semantic equivalence
holds up to the final mapping permutation (verified in tests with the
state-vector simulator).

:class:`AtomiqueLikeCompiler` is a facade over the ``atomique`` backend
of the pass-pipeline registry (:mod:`repro.pipeline`); the SWAP-routing
state machine lives in :mod:`repro.pipeline.atomique_passes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..core.compiler import CompilationResult
from ..hardware.geometry import ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.params import DEFAULT_PARAMS, HardwareParams


@dataclass(frozen=True)
class AtomiqueConfig:
    """Knobs of the fixed-array baseline.

    Attributes:
        seed: Seed for the annealed placement.
        sa_iterations_per_qubit: Annealing budget; 0 = row-major homes.
    """

    seed: int = 0
    sa_iterations_per_qubit: int = 50

    def __post_init__(self) -> None:
        if self.sa_iterations_per_qubit < 0:
            raise ValueError("annealing budget must be non-negative")


class AtomiqueLikeCompiler:
    """Fixed-home-site compiler creating connectivity via SWAP chains."""

    name = "atomique-like"

    def __init__(
        self,
        config: AtomiqueConfig | None = None,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> None:
        self._config = config or AtomiqueConfig()
        self._params = params

    @property
    def config(self) -> AtomiqueConfig:
        """Active configuration."""
        return self._config

    @property
    def variant_name(self) -> str:
        """Label used in reports."""
        return self.name

    @property
    def backend_name(self) -> str:
        """The registry backend this facade resolves to."""
        return "atomique"

    # ------------------------------------------------------------------

    def compile(
        self,
        circuit: Circuit,
        architecture: ZonedArchitecture | None = None,
        initial_layout: Layout | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` with SWAP-insertion routing.

        Returns a :class:`CompilationResult` whose program executes the
        circuit up to the final logical->atom permutation recorded in
        ``program.metadata["final_mapping"]`` (atom holding each logical
        qubit at program end).
        """
        from ..pipeline.registry import create_compiler

        return create_compiler(
            self.backend_name, self._config, self._params
        ).compile(circuit, architecture, initial_layout)


__all__ = ["AtomiqueConfig", "AtomiqueLikeCompiler"]
