"""Reimplementation of the Enola baseline compiler.

Enola (Tan, Lin & Cong 2024) is the strongest published NAQC movement
compiler and the paper's primary baseline.  As characterised in Sec. 3 of
the PowerMove paper, its pipeline is:

* **Scheduling**: near-optimal stage construction via repeated maximal-
  independent-set extraction (randomised, best-of-R restarts) -- heavier
  than PowerMove's single-pass greedy colouring;
* **Placement**: a simulated-annealing initial layout minimising weighted
  interaction distance;
* **Routing**: per stage, one qubit of each gate moves to its partner's
  site, the Rydberg laser fires, and the moved qubits *revert* to their
  initial-layout sites before the next stage (avoiding clustering at the
  price of roughly doubling movement);
* **No storage zone**: every qubit stays in the computation zone, so every
  non-interacting qubit eats the 99.75% excitation-fidelity hit at every
  Rydberg stage.

The mover choice inside a gate is the qubit whose vacated site frees the
smaller conflict (we use the lower qubit id; the travel distance is
symmetric so the choice does not affect timing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..circuits.blocks import partition_into_blocks
from ..circuits.circuit import Circuit
from ..circuits.transpile import transpile_to_native
from ..core.compiler import CompilationResult
from ..hardware.geometry import Zone, ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.moves import Move, group_moves
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.instructions import OneQubitLayer, RydbergStage
from ..schedule.program import NAProgram
from ..utils.rng import make_rng
from .mis import mis_stage_partition
from .placement import annealed_layout, row_major_layout


@dataclass(frozen=True)
class EnolaConfig:
    """Knobs of the Enola baseline.

    Attributes:
        seed: Seed for annealing and MIS restarts.
        mis_restarts: Randomised MIS attempts per extracted stage.
        sa_iterations_per_qubit: Annealing budget (per qubit) of the
            initial placement; 0 falls back to row-major placement.
        num_aods: AOD arrays available (Enola's evaluation uses one).
        merge_moves: Group order-compatible 1Q moves into shared
            CollMoves.  Off by default: the Enola execution times the
            PowerMove paper reports (e.g. 13,198 us for QAOA-regular3-30,
            which is 90 moves x ~146 us = one transfer-move-transfer cycle
            per move) correspond to individually executed movements, and
            the aggressive grouping is precisely PowerMove's Sec. 5.3
            contribution.  Enable for a stronger-baseline sensitivity
            analysis.
        naive_storage: The Fig. 3(e)(f) strawman: Enola's revert scheme
            bolted onto a zoned machine.  The initial layout lives
            entirely in the storage zone; for every stage each
            interacting qubit shuttles out to a computation-zone home
            site and back afterwards.  Excitation errors vanish (idle
            qubits never enter the Rydberg beam) but every gate now costs
            four inter-zone moves -- the movement overhead the paper's
            Sec. 3.1 argues makes this integration a dead end.
    """

    seed: int = 0
    mis_restarts: int = 5
    sa_iterations_per_qubit: int = 150
    num_aods: int = 1
    merge_moves: bool = False
    naive_storage: bool = False

    def __post_init__(self) -> None:
        if self.mis_restarts < 1:
            raise ValueError("need at least one MIS restart")
        if self.sa_iterations_per_qubit < 0:
            raise ValueError("annealing budget must be non-negative")
        if self.num_aods < 1:
            raise ValueError("need at least one AOD array")


class EnolaCompiler:
    """Enola-style revert-to-initial-layout compiler (no storage zone)."""

    name = "enola"

    def __init__(
        self,
        config: EnolaConfig | None = None,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> None:
        self._config = config or EnolaConfig()
        self._params = params

    @property
    def config(self) -> EnolaConfig:
        """Active configuration."""
        return self._config

    @property
    def variant_name(self) -> str:
        """Label used in reports."""
        if self._config.naive_storage:
            return f"{self.name}[naive-storage]"
        return self.name

    # ------------------------------------------------------------------

    def compile(
        self,
        circuit: Circuit,
        architecture: ZonedArchitecture | None = None,
        initial_layout: Layout | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` with the revert-to-initial-layout scheme.

        Args:
            circuit: Input circuit (non-native 2Q gates are transpiled).
            architecture: Target machine; defaults to the storage-free
                paper floor plan (Enola ignores any storage zone present).
            initial_layout: Starting placement; annealed by default.

        Returns:
            The :class:`~repro.core.compiler.CompilationResult`.
        """
        start = time.perf_counter()
        cfg = self._config
        native = transpile_to_native(circuit)
        partition = partition_into_blocks(native)
        arch = architecture or ZonedArchitecture.for_qubits(
            native.num_qubits,
            with_storage=cfg.naive_storage,
            num_aods=cfg.num_aods,
            params=self._params,
        )
        if cfg.naive_storage and not arch.has_storage:
            raise ValueError("naive_storage needs a storage zone")
        home_zone = Zone.STORAGE if cfg.naive_storage else Zone.COMPUTE
        rng = make_rng(cfg.seed)
        if initial_layout is None:
            if cfg.sa_iterations_per_qubit > 0:
                initial_layout = annealed_layout(
                    arch,
                    native,
                    zone=home_zone,
                    rng=rng,
                    iterations_per_qubit=cfg.sa_iterations_per_qubit,
                )
            else:
                initial_layout = row_major_layout(
                    arch, native.num_qubits, home_zone
                )
        # Fig. 3(e)(f) strawman: interacting qubits execute on fixed
        # computation-zone home sites and shuttle back to storage.
        compute_home = (
            row_major_layout(arch, native.num_qubits, Zone.COMPUTE)
            if cfg.naive_storage
            else None
        )

        instructions = []
        total_stages = 0
        total_moves = 0
        total_coll_moves = 0
        for block in partition.blocks:
            gap = partition.one_qubit_gaps[block.index]
            if gap:
                instructions.append(OneQubitLayer(list(gap)))
            stages = mis_stage_partition(block, rng, cfg.mis_restarts)
            for stage in stages:
                moves_out: list[Move] = []
                for gate in stage.gates:
                    mover, anchor = sorted(gate.qubits)
                    if compute_home is not None:
                        target = compute_home.site_of(mover)
                        for q in (mover, anchor):
                            moves_out.append(
                                Move(q, initial_layout.site_of(q), target)
                            )
                    else:
                        source = initial_layout.site_of(mover)
                        destination = initial_layout.site_of(anchor)
                        if source != destination:
                            moves_out.append(
                                Move(mover, source, destination)
                            )
                out_batches = self._into_batches(moves_out)
                instructions.extend(out_batches)
                instructions.append(RydbergStage(gates=list(stage.gates)))
                moves_back = [
                    Move(m.qubit, m.destination, m.source) for m in moves_out
                ]
                back_batches = self._into_batches(moves_back)
                instructions.extend(back_batches)
                total_stages += 1
                total_moves += len(moves_out) + len(moves_back)
                total_coll_moves += sum(
                    b.num_coll_moves for b in out_batches + back_batches
                )
        trailing = partition.one_qubit_gaps[partition.num_blocks]
        if trailing:
            instructions.append(OneQubitLayer(list(trailing)))

        program = NAProgram(
            architecture=arch,
            initial_layout=initial_layout,
            instructions=instructions,
            source_name=circuit.name,
            compiler_name=self.variant_name,
            metadata={
                "num_blocks": partition.num_blocks,
                "num_stages": total_stages,
                "num_single_moves": total_moves,
                "num_coll_moves": total_coll_moves,
                "use_storage": cfg.naive_storage,
                "num_aods": cfg.num_aods,
            },
        )
        compile_time = time.perf_counter() - start
        return CompilationResult(
            program=program,
            compile_time=compile_time,
            native_circuit=native,
            stats=dict(program.metadata),
        )

    # ------------------------------------------------------------------

    def _into_batches(self, moves: list[Move]):
        """Movement scheduling: one CollMove per move (default) or FIFO
        grouping (``merge_moves=True``); one CollMove per AOD per batch."""
        from ..core.collmove_scheduler import schedule_coll_moves
        from ..hardware.moves import CollMove

        if self._config.merge_moves:
            groups = group_moves(moves, distance_aware=False)
        else:
            groups = [CollMove(moves=[move]) for move in moves]
        return schedule_coll_moves(
            groups,
            num_aods=self._config.num_aods,
            prioritize_move_ins=False,
        )


__all__ = ["EnolaCompiler", "EnolaConfig"]
