"""Reimplementation of the Enola baseline compiler.

Enola (Tan, Lin & Cong 2024) is the strongest published NAQC movement
compiler and the paper's primary baseline.  As characterised in Sec. 3 of
the PowerMove paper, its pipeline is:

* **Scheduling**: near-optimal stage construction via repeated maximal-
  independent-set extraction (randomised, best-of-R restarts) -- heavier
  than PowerMove's single-pass greedy colouring;
* **Placement**: a simulated-annealing initial layout minimising weighted
  interaction distance;
* **Routing**: per stage, one qubit of each gate moves to its partner's
  site, the Rydberg laser fires, and the moved qubits *revert* to their
  initial-layout sites before the next stage (avoiding clustering at the
  price of roughly doubling movement);
* **No storage zone**: every qubit stays in the computation zone, so every
  non-interacting qubit eats the 99.75% excitation-fidelity hit at every
  Rydberg stage.

The mover choice inside a gate is the qubit whose vacated site frees the
smaller conflict (we use the lower qubit id; the travel distance is
symmetric so the choice does not affect timing).

:class:`EnolaCompiler` is a facade over the ``enola`` backend of the
pass-pipeline registry (:mod:`repro.pipeline`); the MIS scheduling and
revert routing live in :mod:`repro.pipeline.enola_passes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..core.compiler import CompilationResult
from ..hardware.geometry import ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.params import DEFAULT_PARAMS, HardwareParams


@dataclass(frozen=True)
class EnolaConfig:
    """Knobs of the Enola baseline.

    Attributes:
        seed: Seed for annealing and MIS restarts.
        mis_restarts: Randomised MIS attempts per extracted stage.
        sa_iterations_per_qubit: Annealing budget (per qubit) of the
            initial placement; 0 falls back to row-major placement.
        num_aods: AOD arrays available (Enola's evaluation uses one).
        merge_moves: Group order-compatible 1Q moves into shared
            CollMoves.  Off by default: the Enola execution times the
            PowerMove paper reports (e.g. 13,198 us for QAOA-regular3-30,
            which is 90 moves x ~146 us = one transfer-move-transfer cycle
            per move) correspond to individually executed movements, and
            the aggressive grouping is precisely PowerMove's Sec. 5.3
            contribution.  Enable for a stronger-baseline sensitivity
            analysis.
        use_window: Cap each MIS conflict graph to a sliding window of
            ``window_size`` gates, the scaling device of Enola's own
            10k-qubit harness (its ``--window`` flag).  Off by default so
            reference digests stay bit-identical; blocks at or below the
            window keep the exhaustive extraction even when enabled (the
            exactness threshold).
        window_size: Gates per MIS window when ``use_window`` is set.
        naive_storage: The Fig. 3(e)(f) strawman: Enola's revert scheme
            bolted onto a zoned machine.  The initial layout lives
            entirely in the storage zone; for every stage each
            interacting qubit shuttles out to a computation-zone home
            site and back afterwards.  Excitation errors vanish (idle
            qubits never enter the Rydberg beam) but every gate now costs
            four inter-zone moves -- the movement overhead the paper's
            Sec. 3.1 argues makes this integration a dead end.
    """

    seed: int = 0
    mis_restarts: int = 5
    sa_iterations_per_qubit: int = 150
    num_aods: int = 1
    merge_moves: bool = False
    use_window: bool = False
    window_size: int = 1000
    naive_storage: bool = False

    def __post_init__(self) -> None:
        if self.mis_restarts < 1:
            raise ValueError("need at least one MIS restart")
        if self.sa_iterations_per_qubit < 0:
            raise ValueError("annealing budget must be non-negative")
        if self.num_aods < 1:
            raise ValueError("need at least one AOD array")
        if self.window_size < 1:
            raise ValueError("MIS window size must be positive")


class EnolaCompiler:
    """Enola-style revert-to-initial-layout compiler (no storage zone)."""

    name = "enola"

    def __init__(
        self,
        config: EnolaConfig | None = None,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> None:
        self._config = config or EnolaConfig()
        self._params = params

    @property
    def config(self) -> EnolaConfig:
        """Active configuration."""
        return self._config

    @property
    def variant_name(self) -> str:
        """Label used in reports."""
        if self._config.naive_storage:
            return f"{self.name}[naive-storage]"
        return self.name

    @property
    def backend_name(self) -> str:
        """The registry backend this facade resolves to."""
        return (
            "enola-naive-storage"
            if self._config.naive_storage
            else "enola"
        )

    # ------------------------------------------------------------------

    def compile(
        self,
        circuit: Circuit,
        architecture: ZonedArchitecture | None = None,
        initial_layout: Layout | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` with the revert-to-initial-layout scheme.

        Args:
            circuit: Input circuit (non-native 2Q gates are transpiled).
            architecture: Target machine; defaults to the storage-free
                paper floor plan (Enola ignores any storage zone present).
            initial_layout: Starting placement; annealed by default.

        Returns:
            The :class:`~repro.core.compiler.CompilationResult`.
        """
        from ..pipeline.registry import create_compiler

        return create_compiler(
            self.backend_name, self._config, self._params
        ).compile(circuit, architecture, initial_layout)


__all__ = ["EnolaCompiler", "EnolaConfig"]
