"""Maximal-independent-set stage construction (Enola's scheduler).

Enola builds Rydberg stages by repeatedly extracting a large independent
set from the gate-conflict graph (gates sharing a qubit conflict).  We
reproduce that with randomised greedy MIS extraction and best-of-R
restarts -- the restart loop is what makes Enola's compile time grow much
faster than PowerMove's single-pass greedy colouring (Table 3's
``T_comp`` columns).
"""

from __future__ import annotations

import random

from ..circuits.blocks import CZBlock
from ..core.stage_scheduler import Stage


def greedy_mis(
    adjacency: dict[int, list[int]],
    candidates: set[int],
    rng: random.Random,
) -> set[int]:
    """One randomised greedy maximal independent set over ``candidates``.

    Vertices are visited in random order; a vertex joins the set when none
    of its neighbours has joined yet.  The result is maximal (no candidate
    can be added) but not necessarily maximum.
    """
    order = sorted(candidates)
    rng.shuffle(order)
    chosen: set[int] = set()
    blocked: set[int] = set()
    for vertex in order:
        if vertex in blocked:
            continue
        chosen.add(vertex)
        for neighbour in adjacency[vertex]:
            blocked.add(neighbour)
    return chosen


def best_mis(
    adjacency: dict[int, list[int]],
    candidates: set[int],
    rng: random.Random,
    restarts: int,
) -> set[int]:
    """Best of ``restarts`` randomised MIS attempts (largest wins)."""
    if restarts < 1:
        raise ValueError("need at least one restart")
    best: set[int] | None = None
    for _ in range(restarts):
        attempt = greedy_mis(adjacency, candidates, rng)
        if best is None or len(attempt) > len(best):
            best = attempt
    assert best is not None
    return best


def _window_adjacency(
    gates, window: list[int]
) -> dict[int, list[int]]:
    """Conflict adjacency restricted to the gate indices in ``window``.

    Two gates conflict when they share a qubit.  Built per window via a
    qubit->members map, so the cost is O(window * degree), never the
    O(gates^2) of materialising the whole block's interaction graph.
    """
    by_qubit: dict[int, list[int]] = {}
    for index in window:
        for qubit in gates[index].qubits:
            by_qubit.setdefault(qubit, []).append(index)
    adjacency: dict[int, set[int]] = {index: set() for index in window}
    for members in by_qubit.values():
        for a in members:
            for b in members:
                if a != b:
                    adjacency[a].add(b)
    return {index: sorted(peers) for index, peers in adjacency.items()}


def windowed_mis_stages(
    block: CZBlock,
    rng: random.Random,
    restarts: int,
    window_size: int,
) -> list[Stage]:
    """Stage extraction over a sliding gate window (Enola's ``use_window``).

    Only the first ``window_size`` unscheduled gates (in program order)
    are considered per extraction round, so the conflict graph stays
    bounded no matter how large the block is.  Earlier gates therefore
    never wait on conflicts with gates far ahead of them -- the schedule
    is still validator-clean, merely not the same one the exhaustive
    extraction finds.
    """
    if window_size < 1:
        raise ValueError("window size must be positive")
    gates = block.gates
    if not gates:
        return []
    pending = list(range(len(gates)))
    stages: list[Stage] = []
    color = 0
    while pending:
        window = pending[:window_size]
        adjacency = _window_adjacency(gates, window)
        chosen = best_mis(adjacency, set(window), rng, restarts)
        stage = Stage(
            gates=[gates[i] for i in sorted(chosen)],
            block_index=block.index,
            color=color,
        )
        stage.validate()
        stages.append(stage)
        pending = [i for i in pending if i not in chosen]
        color += 1
    return stages


def mis_stage_partition(
    block: CZBlock,
    rng: random.Random,
    restarts: int = 5,
    window_size: int | None = None,
) -> list[Stage]:
    """Partition a commuting block into stages by iterated MIS extraction.

    Each extracted independent set becomes one stage; extraction repeats on
    the residual graph until every gate is scheduled.

    With ``window_size`` set, blocks larger than the window take the
    sliding-window path (:func:`windowed_mis_stages`); blocks at or below
    it keep the exhaustive extraction, so small inputs stay bit-identical
    to the unwindowed scheduler (the exactness threshold).
    """
    gates = block.gates
    if not gates:
        return []
    if window_size is not None and len(gates) > window_size:
        return windowed_mis_stages(block, rng, restarts, window_size)
    adjacency = block.interaction_graph()
    remaining = set(range(len(gates)))
    stages: list[Stage] = []
    color = 0
    while remaining:
        subset = {
            v: [u for u in adjacency[v] if u in remaining] for v in remaining
        }
        chosen = best_mis(subset, remaining, rng, restarts)
        stage = Stage(
            gates=[gates[i] for i in sorted(chosen)],
            block_index=block.index,
            color=color,
        )
        stage.validate()
        stages.append(stage)
        remaining -= chosen
        color += 1
    return stages


__all__ = [
    "best_mis",
    "greedy_mis",
    "mis_stage_partition",
    "windowed_mis_stages",
]
