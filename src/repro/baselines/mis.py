"""Maximal-independent-set stage construction (Enola's scheduler).

Enola builds Rydberg stages by repeatedly extracting a large independent
set from the gate-conflict graph (gates sharing a qubit conflict).  We
reproduce that with randomised greedy MIS extraction and best-of-R
restarts -- the restart loop is what makes Enola's compile time grow much
faster than PowerMove's single-pass greedy colouring (Table 3's
``T_comp`` columns).
"""

from __future__ import annotations

import random

from ..circuits.blocks import CZBlock
from ..core.stage_scheduler import Stage


def greedy_mis(
    adjacency: dict[int, list[int]],
    candidates: set[int],
    rng: random.Random,
) -> set[int]:
    """One randomised greedy maximal independent set over ``candidates``.

    Vertices are visited in random order; a vertex joins the set when none
    of its neighbours has joined yet.  The result is maximal (no candidate
    can be added) but not necessarily maximum.
    """
    order = sorted(candidates)
    rng.shuffle(order)
    chosen: set[int] = set()
    blocked: set[int] = set()
    for vertex in order:
        if vertex in blocked:
            continue
        chosen.add(vertex)
        for neighbour in adjacency[vertex]:
            blocked.add(neighbour)
    return chosen


def best_mis(
    adjacency: dict[int, list[int]],
    candidates: set[int],
    rng: random.Random,
    restarts: int,
) -> set[int]:
    """Best of ``restarts`` randomised MIS attempts (largest wins)."""
    if restarts < 1:
        raise ValueError("need at least one restart")
    best: set[int] | None = None
    for _ in range(restarts):
        attempt = greedy_mis(adjacency, candidates, rng)
        if best is None or len(attempt) > len(best):
            best = attempt
    assert best is not None
    return best


def mis_stage_partition(
    block: CZBlock,
    rng: random.Random,
    restarts: int = 5,
) -> list[Stage]:
    """Partition a commuting block into stages by iterated MIS extraction.

    Each extracted independent set becomes one stage; extraction repeats on
    the residual graph until every gate is scheduled.
    """
    gates = block.gates
    if not gates:
        return []
    adjacency = block.interaction_graph()
    remaining = set(range(len(gates)))
    stages: list[Stage] = []
    color = 0
    while remaining:
        subset = {
            v: [u for u in adjacency[v] if u in remaining] for v in remaining
        }
        chosen = best_mis(subset, remaining, rng, restarts)
        stage = Stage(
            gates=[gates[i] for i in sorted(chosen)],
            block_index=block.index,
            color=color,
        )
        stage.validate()
        stages.append(stage)
        remaining -= chosen
        color += 1
    return stages


__all__ = ["best_mis", "greedy_mis", "mis_stage_partition"]
