"""Job-manifest parsing for the ``repro batch`` CLI command.

A manifest is a JSON document describing a batch of compilations::

    {
      "cache": "tiered:disk:.pmcache,remote:http://cache:8123",
      "defaults": {"seed": 0, "num_aods": 1,
                   "scenarios": ["enola", "pm_with_storage"]},
      "jobs": [
        {"benchmark": "BV-14"},
        {"benchmark": "VQE-30", "scenario": "pm_non_storage", "seed": 3},
        {"benchmark": "QFT-18", "backend": "atomique"},
        {"benchmark": "*", "backends": ["powermove", "powermove-noreorder"]}
      ]
    }

A bare JSON list is accepted as shorthand for ``{"jobs": [...]}``.  Each
entry names a Table 2 benchmark (``"*"`` expands to the whole suite) and
selects its compilers either through the legacy ``scenario``/
``scenarios`` keys or through ``backend``/``backends`` registry names
(see ``repro backends``); entries may also override ``seed``,
``num_aods``, ``validate``, the ``enola``/``powermove``/``atomique``
compiler knobs (flat dicts of config fields), an architecture-catalog
``arch`` name (see ``repro architectures``) and a ``strategies``
axis -> entry object selecting placement / stage-selection / routing
strategies (see ``docs/strategies.md``).  The pseudo-backend
``"auto"`` is accepted in ``backend``/``backends`` and defers the
choice to the pre-compile cost model.  Defaults apply to every
entry that does not override them; the built-in default (no scenario or
backend anywhere) remains all three legacy scenarios, and manifests
written before the backend registry existed parse unchanged.

A top-level ``"cache"`` key names a default cache spec for the run
(``"disk:PATH"``, ``"tiered:disk:PATH,remote:URL"``, ... -- see
``docs/caching.md``); the ``--cache`` / ``--cache-dir`` CLI options
override it.  The cache spec describes the *run environment*, not the
work, so :func:`manifest_digest` excludes it -- two runs of one
manifest through different caches stay shard-mergeable and
equivalence-comparable.

Every structural problem raises :class:`ManifestError` with a message
naming the offending entry.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..baselines.atomique import AtomiqueConfig
from ..baselines.enola import EnolaConfig
from ..benchsuite.suite import PAPER_ORDER, SUITE
from ..core.config import PowerMoveConfig
from ..hardware.catalog import ARCHITECTURES
from ..pipeline.registry import REGISTRY
from ..pipeline.strategies import STRATEGY_AXES
from .jobs import AUTO_BACKEND, SCENARIOS, CompileJob

_ENTRY_KEYS = frozenset(
    {
        "benchmark",
        "scenario",
        "scenarios",
        "backend",
        "backends",
        "seed",
        "num_aods",
        "validate",
        "enola",
        "powermove",
        "atomique",
        "arch",
        "strategies",
    }
)

#: Keys honoured under "defaults" ("scenario"/"backend" are entry-only;
#: defaults take the plural forms).
_DEFAULT_KEYS = _ENTRY_KEYS - {"scenario", "backend"}


class ManifestError(ValueError):
    """Raised on malformed batch manifests."""


def _entry_compilers(
    entry: dict, defaults: dict, where: str
) -> list[tuple[str | None, str | None]]:
    """Expand an entry into ``(scenario, backend)`` job selectors."""
    selector_keys = [
        key
        for key in ("scenario", "scenarios", "backend", "backends")
        if key in entry
    ]
    if len(selector_keys) > 1:
        raise ManifestError(
            f"{where}: give only one of 'scenario', 'scenarios', "
            "'backend' or 'backends'"
        )
    if "scenario" in entry:
        scenarios: Any = [entry["scenario"]]
        backends: Any = None
    elif "scenarios" in entry:
        scenarios = entry["scenarios"]
        backends = None
    elif "backend" in entry:
        scenarios = None
        backends = [entry["backend"]]
    elif "backends" in entry:
        scenarios = None
        backends = entry["backends"]
    elif "backends" in defaults and "scenarios" not in defaults:
        scenarios = None
        backends = defaults["backends"]
    else:
        scenarios = defaults.get("scenarios", list(SCENARIOS))
        backends = None

    if backends is not None:
        if isinstance(backends, str) or not isinstance(backends, list):
            raise ManifestError(f"{where}: 'backends' must be a list")
        for backend in backends:
            if backend != AUTO_BACKEND and backend not in REGISTRY:
                raise ManifestError(
                    f"{where}: unknown backend {backend!r}; "
                    f"known: {AUTO_BACKEND}, "
                    f"{', '.join(REGISTRY.names())}"
                )
        return [(None, backend) for backend in backends]

    if isinstance(scenarios, str) or not isinstance(scenarios, list):
        raise ManifestError(f"{where}: 'scenarios' must be a list")
    for scenario in scenarios:
        if scenario not in SCENARIOS:
            raise ManifestError(
                f"{where}: unknown scenario {scenario!r}; "
                f"known: {', '.join(SCENARIOS)}"
            )
    return [(scenario, None) for scenario in scenarios]


def _entry_int(entry: dict, defaults: dict, field: str, fallback: int,
               where: str) -> int:
    value = entry.get(field, defaults.get(field, fallback))
    if isinstance(value, bool) or not isinstance(value, int):
        raise ManifestError(f"{where}: {field!r} must be an integer")
    return value


def _entry_arch(entry: dict, defaults: dict, where: str) -> str | None:
    arch = entry.get("arch", defaults.get("arch"))
    if arch is None:
        return None
    if not isinstance(arch, str):
        raise ManifestError(f"{where}: 'arch' must be a string")
    if arch not in ARCHITECTURES:
        raise ManifestError(
            f"{where}: unknown architecture {arch!r}; "
            f"known: {', '.join(ARCHITECTURES.names())}"
        )
    return arch


def _entry_strategies(
    entry: dict, defaults: dict, where: str
) -> dict[str, str] | None:
    doc = entry.get("strategies", defaults.get("strategies"))
    if doc is None:
        return None
    if not isinstance(doc, dict):
        raise ManifestError(
            f"{where}: 'strategies' must be an axis -> entry object"
        )
    for axis, name in doc.items():
        registry = STRATEGY_AXES.get(axis)
        if registry is None:
            raise ManifestError(
                f"{where}: unknown strategy axis {axis!r}; "
                f"known: {', '.join(STRATEGY_AXES)}"
            )
        if not isinstance(name, str) or name not in registry:
            raise ManifestError(
                f"{where}: unknown {axis} strategy {name!r}; "
                f"known: {', '.join(registry.names())}"
            )
    return dict(doc)


def _entry_config(entry: dict, defaults: dict, field: str, cls, where: str):
    doc = entry.get(field, defaults.get(field))
    if doc is None:
        return None
    if not isinstance(doc, dict):
        raise ManifestError(f"{where}: {field!r} must be an object")
    try:
        return cls(**doc)
    except (TypeError, ValueError) as exc:
        raise ManifestError(f"{where}: bad {field!r} config: {exc}") from exc


def parse_manifest(doc: Any) -> list[CompileJob]:
    """Expand a manifest document into concrete jobs, in manifest order."""
    if isinstance(doc, list):
        doc = {"jobs": doc}
    if not isinstance(doc, dict):
        raise ManifestError("manifest must be a JSON object or list")
    if "jobs" not in doc:
        raise ManifestError("manifest needs a 'jobs' list")
    entries = doc["jobs"]
    if not isinstance(entries, list) or not entries:
        raise ManifestError("'jobs' must be a non-empty list")
    defaults = doc.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ManifestError("'defaults' must be an object")
    if "scenario" in defaults:
        raise ManifestError(
            "defaults: use 'scenarios' (a list), not 'scenario'"
        )
    if "backend" in defaults:
        raise ManifestError(
            "defaults: use 'backends' (a list), not 'backend'"
        )
    if "scenarios" in defaults and "backends" in defaults:
        raise ManifestError(
            "defaults: give either 'scenarios' or 'backends', not both"
        )
    unknown_defaults = set(defaults) - _DEFAULT_KEYS
    if unknown_defaults:
        raise ManifestError(
            f"defaults: unknown keys {sorted(unknown_defaults)}"
        )
    manifest_cache_spec(doc)  # validate the type eagerly

    jobs: list[CompileJob] = []
    for position, entry in enumerate(entries):
        where = f"jobs[{position}]"
        if not isinstance(entry, dict):
            raise ManifestError(f"{where}: each job must be an object")
        unknown = set(entry) - _ENTRY_KEYS
        if unknown:
            raise ManifestError(
                f"{where}: unknown keys {sorted(unknown)}"
            )
        benchmark = entry.get("benchmark", defaults.get("benchmark"))
        if not isinstance(benchmark, str):
            raise ManifestError(f"{where}: needs a 'benchmark' key")
        if benchmark == "*":
            keys: tuple[str, ...] = PAPER_ORDER
        elif benchmark in SUITE:
            keys = (benchmark,)
        else:
            raise ManifestError(
                f"{where}: unknown benchmark {benchmark!r}"
            )
        compilers = _entry_compilers(entry, defaults, where)
        seed = _entry_int(entry, defaults, "seed", 0, where)
        num_aods = _entry_int(entry, defaults, "num_aods", 1, where)
        validate = entry.get("validate", defaults.get("validate", True))
        if not isinstance(validate, bool):
            raise ManifestError(f"{where}: 'validate' must be a boolean")
        enola_config = _entry_config(
            entry, defaults, "enola", EnolaConfig, where
        )
        powermove_config = _entry_config(
            entry, defaults, "powermove", PowerMoveConfig, where
        )
        atomique_config = _entry_config(
            entry, defaults, "atomique", AtomiqueConfig, where
        )
        arch = _entry_arch(entry, defaults, where)
        strategies = _entry_strategies(entry, defaults, where)
        for key in keys:
            for scenario, backend in compilers:
                jobs.append(
                    CompileJob(
                        scenario=scenario,
                        benchmark=key,
                        num_aods=num_aods,
                        seed=seed,
                        enola_config=enola_config,
                        powermove_config=powermove_config,
                        validate=validate,
                        backend=backend,
                        atomique_config=atomique_config,
                        arch=arch,
                        strategies=strategies,
                    )
                )
    return jobs


def manifest_cache_spec(doc: Any) -> str | None:
    """The manifest's top-level ``"cache"`` spec, or ``None``.

    Raises :class:`ManifestError` when present but not a string; the
    spec's own grammar is validated later by
    :func:`repro.engine.cachestore.make_cache`, at cache-construction
    time, so manifests stay parseable on machines that will override
    the spec anyway.
    """
    if not isinstance(doc, dict):
        return None
    spec = doc.get("cache")
    if spec is None:
        return None
    if not isinstance(spec, str) or not spec.strip():
        raise ManifestError("'cache' must be a non-empty spec string")
    return spec


def manifest_digest(doc: Any) -> str:
    """Stable content hash of a manifest document (hex SHA-256).

    Computed over a canonical (sorted-key, no-whitespace) JSON encoding
    of the *document*, so formatting and key order do not matter but any
    semantic change (a job added, a default tweaked) rotates the digest.
    Shard result files carry it so ``repro merge`` can refuse to combine
    shards of different manifests.

    The top-level ``"cache"`` key is excluded: it names the run
    environment (which cache tier served a machine), not the work, and
    must not stop two runs of the same jobs from comparing or merging.
    """
    if isinstance(doc, dict) and "cache" in doc:
        doc = {key: value for key, value in doc.items() if key != "cache"}
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def read_manifest(path: str) -> Any:
    """Load a manifest file's raw JSON document (no expansion)."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError as exc:
        raise ManifestError(f"manifest not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest is not valid JSON: {exc}") from exc


def load_manifest(path: str) -> list[CompileJob]:
    """Read and expand a manifest file."""
    return parse_manifest(read_manifest(path))


__all__ = [
    "ManifestError",
    "load_manifest",
    "manifest_cache_spec",
    "manifest_digest",
    "parse_manifest",
    "read_manifest",
]
