"""The batch compilation engine: fan-out, caching, progress.

:class:`CompilationEngine` takes a batch of
:class:`~repro.engine.jobs.CompileJob` and produces one
:class:`JobResult` per job, in input order.  For every job it

1. resolves the workload circuit and derives the content-addressed
   cache key (:func:`repro.engine.cache.job_cache_key`);
2. serves the job from the cache when possible;
3. otherwise compiles it -- in-process, or fanned out over a
   ``concurrent.futures`` process pool when ``workers > 1`` -- and
   stores the artifact back into the cache.

Determinism: jobs carry explicit seeds and the compilers draw all
randomness from them, so the engine produces bit-identical programs
regardless of worker count, scheduling order or cache state; only the
wall-clock ``compile_time`` measurements vary.  Results are always
returned in submission order.

Progress: pass ``progress=callback`` to observe one
:class:`ProgressEvent` per finished job, streamed as jobs complete
(cache hits first, then compilations in completion order).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..circuits.transpile import transpile_to_native
from ..fidelity.model import FidelityModel, FidelityReport
from ..schedule.program import NAProgram
from ..schedule.serialize import program_from_dict
from ..schedule.validator import validate_program
from .cache import NullCache, ProgramCache, job_cache_key
from .jobs import CompileJob, execute_job_on_circuit


class EngineError(RuntimeError):
    """A job failed inside the engine (wraps the worker exception)."""


@dataclass(frozen=True)
class ProgressEvent:
    """One finished job, reported to the progress callback.

    Attributes:
        index: Position of the job in the submitted batch.
        total: Batch size.
        job: The finished job.
        cache_hit: Whether the result came from the cache.
        compile_time: ``T_comp`` seconds (the cached measurement on hits).
    """

    index: int
    total: int
    job: CompileJob
    cache_hit: bool
    compile_time: float


@dataclass
class JobResult:
    """Outcome of one job.

    Attributes:
        job: The originating job.
        key: Content-addressed cache key.
        program: The compiled program.
        compile_time: Wall-clock compilation seconds (``T_comp``); on a
            cache hit, the time the original compilation took.
        fidelity: Eq. (1) evaluation under the job's hardware params.
        cache_hit: Whether the compilation was skipped.
    """

    job: CompileJob
    key: str
    program: NAProgram
    compile_time: float
    fidelity: FidelityReport
    cache_hit: bool

    @property
    def scenario(self) -> str:
        """The job's reporting key (legacy scenario or backend name)."""
        return self.job.scenario_key


ProgressCallback = Callable[[ProgressEvent], None]


class CompilationEngine:
    """Batch compiler with process-pool fan-out and artifact caching.

    Args:
        cache: Artifact cache backend (:class:`NullCache` -- no caching
            -- when omitted).
        workers: Process-pool width for cache-missing jobs; ``1``
            compiles serially in-process.
        progress: Per-finished-job callback.

    Example:
        >>> from repro.engine import CompilationEngine, CompileJob
        >>> engine = CompilationEngine()
        >>> [result] = engine.run(
        ...     [CompileJob(scenario="pm_with_storage", benchmark="BV-14")]
        ... )
        >>> result.program.num_stages > 0
        True
    """

    def __init__(
        self,
        cache: ProgramCache | None = None,
        workers: int = 1,
        progress: ProgressCallback | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.cache = cache if cache is not None else NullCache()
        self.workers = workers
        self._progress = progress

    # ------------------------------------------------------------------

    def run(self, jobs: Iterable[CompileJob]) -> list[JobResult]:
        """Execute a batch; one result per job, in input order."""
        batch = list(jobs)
        total = len(batch)
        results: list[JobResult | None] = [None] * total
        pending: list[tuple[int, CompileJob, Any, str]] = []

        resolved: dict[tuple[str, int], Any] = {}
        for index, job in enumerate(batch):
            if job.circuit is not None:
                circuit = job.circuit
            else:
                workload = (job.benchmark, job.seed)
                circuit = resolved.get(workload)
                if circuit is None:
                    circuit = job.resolve_circuit()
                    resolved[workload] = circuit
            key = job_cache_key(job, circuit.digest())
            doc = self.cache.get(key)
            if doc is not None:
                results[index] = self._result_from_artifact(
                    job, key, doc, cache_hit=True, circuit=circuit
                )
                self._emit(index, total, job, True, doc["compile_time"])
            else:
                pending.append((index, job, circuit, key))

        for index, job, key, doc in self._compile_pending(pending):
            self.cache.put(key, doc)
            results[index] = self._result_from_artifact(
                job, key, doc, cache_hit=False
            )
            self._emit(index, total, job, False, doc["compile_time"])
        return list(results)

    # ------------------------------------------------------------------

    def _compile_pending(
        self, pending: Sequence[tuple[int, CompileJob, Any, str]]
    ):
        """Yield ``(index, job, key, artifact)`` for every cache miss."""
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for index, job, circuit, key in pending:
                yield index, job, key, self._execute(job, circuit)
            return
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            future_info = {
                pool.submit(execute_job_on_circuit, job, circuit): (
                    index,
                    job,
                    key,
                )
                for index, job, circuit, key in pending
            }
            not_done = set(future_info)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index, job, key = future_info[future]
                    try:
                        artifact = future.result()
                    except Exception as exc:
                        raise EngineError(
                            f"job {job.label} failed: {exc}"
                        ) from exc
                    yield index, job, key, artifact

    def _execute(self, job: CompileJob, circuit) -> dict[str, Any]:
        try:
            return execute_job_on_circuit(job, circuit)
        except Exception as exc:
            raise EngineError(f"job {job.label} failed: {exc}") from exc

    def _result_from_artifact(
        self,
        job: CompileJob,
        key: str,
        doc: dict[str, Any],
        cache_hit: bool,
        circuit=None,
    ) -> JobResult:
        program = program_from_dict(doc["program"])
        if cache_hit and job.validate and not doc.get("validated"):
            from ..pipeline.registry import REGISTRY

            preserves = REGISTRY.get(job.backend_name).preserves_gate_stream
            source = (
                transpile_to_native(circuit)
                if circuit is not None and preserves
                else None
            )
            validate_program(program, source_circuit=source)
        fidelity = FidelityModel(job.params).evaluate(program)
        return JobResult(
            job=job,
            key=key,
            program=program,
            compile_time=doc["compile_time"],
            fidelity=fidelity,
            cache_hit=cache_hit,
        )

    def _emit(
        self,
        index: int,
        total: int,
        job: CompileJob,
        cache_hit: bool,
        compile_time: float,
    ) -> None:
        if self._progress is not None:
            self._progress(
                ProgressEvent(
                    index=index,
                    total=total,
                    job=job,
                    cache_hit=cache_hit,
                    compile_time=compile_time,
                )
            )


__all__ = [
    "CompilationEngine",
    "EngineError",
    "JobResult",
    "ProgressCallback",
    "ProgressEvent",
]
