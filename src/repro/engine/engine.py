"""The batch compilation engine: fan-out, caching, streaming, fail-soft.

:class:`CompilationEngine` takes a batch of
:class:`~repro.engine.jobs.CompileJob` and produces one
:class:`JobResult` per job.  For every job it

1. resolves the workload circuit and derives the content-addressed
   cache key (:func:`repro.engine.cache.job_cache_key`);
2. serves the job from the cache when possible;
3. otherwise compiles it -- in-process, or fanned out over a
   ``concurrent.futures`` process pool when ``workers > 1`` -- and
   stores the artifact back into the cache.

Two consumption styles:

* :meth:`CompilationEngine.run` -- list of results in submission order;
* :meth:`CompilationEngine.stream` -- generator of results in
  *completion* order (cache hits first, then compilations as they
  finish); each :class:`JobResult` carries its batch ``index`` so
  callers can restore submission order.

Failure handling is governed by the ``on_error`` policy:

* ``"raise"`` (default, the historical behaviour) -- the first failing
  job raises :class:`EngineError`; pending pool futures are cancelled
  promptly so a large batch neither hangs on unstarted work nor
  silently burns CPU after the batch is doomed.
* ``"collect"`` (fail-soft) -- a failing job becomes a
  :class:`JobResult` whose ``error`` is a :class:`JobFailure`
  (index, label, cache key, exception text); every other job still
  completes.  This is the mode batch sweeps, streaming delivery and
  cross-machine sharding build on.

Retries: construct the engine with ``retries=N`` to grant every
failing job up to ``N`` extra attempts (exponential backoff,
``backoff * 2**(attempt-1)`` seconds between attempts) before its
failure is raised or collected; the :class:`JobResult` records the
``attempts`` taken and the total ``retry_wait_s`` slept.

Determinism: jobs carry explicit seeds and the compilers draw all
randomness from them, so the engine produces bit-identical programs
regardless of worker count, scheduling order or cache state; only the
wall-clock ``compile_time`` measurements vary.

Progress: pass ``progress=callback`` to observe one
:class:`ProgressEvent` per finished job, streamed as jobs complete
(cache hits first, then compilations in completion order).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..circuits.transpile import transpile_to_native
from ..fidelity.model import FidelityModel, FidelityReport
from ..schedule.program import NAProgram
from ..schedule.serialize import program_from_dict
from ..schedule.validator import validate_program
from .cache import ProgramCache, job_cache_key
from .cachestore import make_cache
from .jobs import (
    AUTO_BACKEND,
    CompileJob,
    execute_job_on_circuit,
    resolve_backend,
)

#: Valid ``on_error`` policies.
ERROR_POLICIES = ("raise", "collect")


@dataclass(frozen=True)
class JobFailure:
    """Structured description of one failed job.

    Attributes:
        index: Position of the job in the submitted batch.
        label: Human-readable job identity (:attr:`CompileJob.label`).
        key: Content-addressed cache key of the failed job.
        message: Stringified worker exception.
        error_type: Exception class name (``"ValidationError"``, ...).
    """

    index: int
    label: str
    key: str
    message: str
    error_type: str

    def describe(self) -> str:
        """One-line failure summary naming index, label and key."""
        return (
            f"job {self.index} ({self.label}, key {self.key[:16]}) "
            f"failed: [{self.error_type}] {self.message}"
        )


class EngineError(RuntimeError):
    """A job failed inside the engine (wraps the worker exception).

    Attributes:
        failure: The :class:`JobFailure` payload (index, label, cache
            key, exception text) when the failing job is known.
    """

    def __init__(
        self, message: str, failure: JobFailure | None = None
    ) -> None:
        super().__init__(message)
        self.failure = failure


@dataclass(frozen=True)
class ProgressEvent:
    """One finished job, reported to the progress callback.

    Attributes:
        index: Position of the job in the submitted batch.
        total: Batch size.
        job: The finished job.
        cache_hit: Whether the result came from the cache.
        compile_time: ``T_comp`` seconds (the cached measurement on hits).
        failed: Whether the job failed (``on_error="collect"`` only).
    """

    index: int
    total: int
    job: CompileJob
    cache_hit: bool
    compile_time: float
    failed: bool = False


@dataclass
class JobResult:
    """Outcome of one job: a compiled program, or a failure record.

    Attributes:
        job: The originating job.
        index: Position of the job in the submitted batch (restores
            submission order for streamed results).
        key: Content-addressed cache key.
        program: The compiled program (``None`` when the job failed).
        compile_time: Wall-clock compilation seconds (``T_comp``); on a
            cache hit, the time the original compilation took.
        fidelity: Eq. (1) evaluation under the job's hardware params
            (``None`` when the job failed).
        cache_hit: Whether the compilation was skipped.
        error: :class:`JobFailure` describing the failure, or ``None``
            on success.
        attempts: Number of compilation attempts this outcome took
            (``1`` when the first attempt succeeded or retries are
            disabled; cache hits always count one).
        retry_wait_s: Total backoff seconds slept between attempts.
        stats: Run-environment measurements of this result:
            ``"pass_timings"`` (per-pass compile seconds from the
            artifact) and, on cache hits, ``"cache_tier"`` -- the
            tier that served the hit (``"memory"`` / ``"disk"`` /
            ``"remote"``, or the backend kind for plain caches); on
            ``backend="auto"`` jobs, ``"auto_backend"`` -- the concrete
            backend the cost model chose (``job`` is the resolved job).
            When the engine compiled in-process (``workers == 1``, the
            service configuration) it also records ``"spans"`` -- raw
            span dicts (``name``/``start``/``end``/``attrs``/
            ``children``, timestamps in ``time.perf_counter`` units)
            covering the cache lookup (per-tier children) and every
            compilation attempt (per-pass children on the successful
            one); see :func:`repro.obs.trace.rebase_spans`.  Pool
            compilations stay span-free: their perf counters are not
            comparable across processes.
            Volatile by definition: never part of result records.
    """

    job: CompileJob
    index: int
    key: str
    program: NAProgram | None
    compile_time: float
    fidelity: FidelityReport | None
    cache_hit: bool
    error: JobFailure | None = None
    attempts: int = 1
    retry_wait_s: float = 0.0
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the job compiled successfully."""
        return self.error is None

    @property
    def scenario(self) -> str:
        """The job's reporting key (legacy scenario or backend name)."""
        return self.job.scenario_key


ProgressCallback = Callable[[ProgressEvent], None]


class CompilationEngine:
    """Batch compiler with process-pool fan-out and artifact caching.

    Args:
        cache: Artifact cache backend -- a ready
            :class:`~repro.engine.cache.ProgramCache`, or a cache-spec
            string (``"memory"``, ``"disk:PATH[:MAX_BYTES]"``,
            ``"remote:URL"``, ``"tiered:disk:PATH,remote:URL"``, see
            ``docs/caching.md``) resolved through
            :func:`~repro.engine.cachestore.make_cache`.
            :class:`~repro.engine.cache.NullCache` -- no caching --
            when omitted.
        workers: Process-pool width for cache-missing jobs; ``1``
            compiles serially in-process.
        progress: Per-finished-job callback.
        on_error: Failure policy -- ``"raise"`` (first failure raises
            :class:`EngineError`, pending futures cancelled) or
            ``"collect"`` (failures become error-carrying
            :class:`JobResult` entries, every other job completes).
        retries: Extra compilation attempts granted to a failing job
            before its failure is surfaced (``0``, the default,
            preserves the historical single-attempt behaviour).  The
            attempt count and total backoff slept are recorded on the
            :class:`JobResult`.
        backoff: Base delay in seconds between attempts; attempt ``n``
            waits ``backoff * 2**(n-1)`` before re-running, so
            transient failures (cache-volume hiccups, memory pressure
            in a worker) get breathing room without stalling the batch.

    Example:
        >>> from repro.engine import CompilationEngine, CompileJob
        >>> engine = CompilationEngine()
        >>> [result] = engine.run(
        ...     [CompileJob(scenario="pm_with_storage", benchmark="BV-14")]
        ... )
        >>> result.program.num_stages > 0
        True
    """

    def __init__(
        self,
        cache: ProgramCache | str | None = None,
        workers: int = 1,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
        retries: int = 0,
        backoff: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if on_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, "
                f"got {on_error!r}"
            )
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        self.cache = make_cache(cache)
        self.workers = workers
        self.on_error = on_error
        self.retries = retries
        self.backoff = backoff
        self._progress = progress

    # ------------------------------------------------------------------

    def run(
        self, jobs: Iterable[CompileJob], on_error: str | None = None
    ) -> list[JobResult]:
        """Execute a batch; one result per job, in input order.

        Args:
            jobs: The batch.
            on_error: Per-call override of the engine's failure policy.
        """
        batch = list(jobs)
        results: list[JobResult | None] = [None] * len(batch)
        for result in self.stream(batch, on_error=on_error):
            results[result.index] = result
        return list(results)

    def stream(
        self, jobs: Iterable[CompileJob], on_error: str | None = None
    ) -> Iterator[JobResult]:
        """Yield one :class:`JobResult` per job, in completion order.

        Cache hits come first (in submission order), then compilations
        as they finish.  Each result carries its batch ``index``;
        :meth:`run` is exactly this stream re-ordered by it.

        Under ``on_error="raise"`` the first failure raises
        :class:`EngineError` after cancelling pending pool futures;
        already-yielded results remain valid.  Under ``"collect"``
        failures are yielded as error results and the stream continues.
        Abandoning the generator mid-stream cancels pending futures.
        """
        policy = self.on_error if on_error is None else on_error
        if policy not in ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ERROR_POLICIES}, "
                f"got {policy!r}"
            )
        # Validate eagerly (above), then hand off to the generator so a
        # bad policy or job list fails at the call site, not at the
        # first next().
        return self._stream(list(jobs), policy)

    def _stream(
        self, batch: list[CompileJob], policy: str
    ) -> Iterator[JobResult]:
        total = len(batch)
        pending: list[tuple[int, CompileJob, Any, str]] = []
        lookup_spans: dict[int, dict[str, Any]] = {}

        resolved: dict[tuple[str, int], Any] = {}
        auto_choices: dict[int, str] = {}
        for index, job in enumerate(batch):
            if job.circuit is not None:
                circuit = job.circuit
            else:
                workload = (job.benchmark, job.seed)
                circuit = resolved.get(workload)
                if circuit is None:
                    circuit = job.resolve_circuit()
                    resolved[workload] = circuit
            if job.backend == AUTO_BACKEND:
                # Resolve the cost-model choice once, here: downstream
                # (cache key, worker, records) sees the concrete
                # backend, and the choice is surfaced in result stats.
                job = resolve_backend(job, circuit)
                auto_choices[index] = job.backend_name
            key = job_cache_key(job, circuit.digest())
            lookup_start = time.perf_counter()
            doc = self.cache.get(key)
            lookup_end = time.perf_counter()
            lookup_spans[index] = _lookup_span(
                lookup_start,
                lookup_end,
                self.cache.last_lookup_profile,
                hit=doc is not None,
            )
            if doc is not None:
                hit_tier = self.cache.last_hit_tier
                if hit_tier is not None:
                    lookup_spans[index]["attrs"]["tier"] = hit_tier
                try:
                    result = self._result_from_artifact(
                        job, index, key, doc, cache_hit=True,
                        circuit=circuit, hit_tier=hit_tier,
                    )
                except Exception as exc:
                    # Historical contract: hit-path validation errors
                    # propagate as-is (ValidationError, ...) under the
                    # raise policy.
                    if policy == "raise":
                        raise
                    yield self._failure(
                        index, total, job, key, exc
                    )
                    continue
                if index in auto_choices:
                    result.stats["auto_backend"] = auto_choices[index]
                result.stats["spans"] = [lookup_spans[index]]
                self._emit(index, total, job, True, doc["compile_time"])
                yield result
            else:
                pending.append((index, job, circuit, key))

        for result in self._compile_pending(
            pending, total, policy, lookup_spans=lookup_spans
        ):
            if result.index in auto_choices and result.ok:
                result.stats["auto_backend"] = auto_choices[result.index]
            yield result

    # ------------------------------------------------------------------

    def _retry_delay(self, attempt: int) -> float:
        """Backoff before re-running after failed attempt ``attempt``."""
        return self.backoff * 2 ** (attempt - 1)

    def _execute_with_retries(
        self,
        job: CompileJob,
        circuit: Any,
        spans: list[dict[str, Any]] | None = None,
    ) -> tuple[dict[str, Any] | None, Exception | None, int, float]:
        """Run one job in-process, retrying per the engine policy.

        Returns ``(artifact, final_exception, attempts, waited_s)``;
        exactly one of artifact / exception is set.  When ``spans`` is
        given, every attempt appends one raw ``"compile"`` span to it
        (``attrs`` carry the attempt number, and the exception type on
        failed attempts -- the retry cause).
        """
        waited = 0.0
        for attempt in range(1, self.retries + 2):
            start = time.perf_counter()
            try:
                artifact = execute_job_on_circuit(job, circuit)
            except Exception as exc:
                if spans is not None:
                    spans.append({
                        "name": "compile",
                        "start": start,
                        "end": time.perf_counter(),
                        "attrs": {
                            "attempt": attempt,
                            "error": type(exc).__name__,
                        },
                        "children": [],
                    })
                if attempt > self.retries:
                    return None, exc, attempt, waited
                delay = self._retry_delay(attempt)
                if delay:
                    time.sleep(delay)
                waited += delay
                continue
            if spans is not None:
                spans.append({
                    "name": "compile",
                    "start": start,
                    "end": time.perf_counter(),
                    "attrs": {"attempt": attempt},
                    "children": [],
                })
            return artifact, None, attempt, waited
        raise AssertionError("unreachable")  # pragma: no cover

    def _compile_pending(
        self,
        pending: Sequence[tuple[int, CompileJob, Any, str]],
        total: int,
        policy: str,
        lookup_spans: dict[int, dict[str, Any]] | None = None,
    ) -> Iterator[JobResult]:
        """Yield a :class:`JobResult` for every cache miss.

        Failures are surfaced -- raised or collected -- only after the
        job's final attempt; earlier attempts retry after exponential
        backoff (``backoff * 2**(attempt-1)`` seconds).

        The in-process path threads ``lookup_spans`` (per-index cache
        lookup spans from the dispatch loop) into each result's span
        list; the pool path drops them -- a partial trace whose compile
        phase is missing would misreport where the time went.
        """
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for index, job, circuit, key in pending:
                spans: list[dict[str, Any]] = []
                if lookup_spans and index in lookup_spans:
                    spans.append(lookup_spans[index])
                artifact, exc, attempts, waited = (
                    self._execute_with_retries(job, circuit, spans=spans)
                )
                if exc is not None:
                    failure = _describe_failure(index, job, key, exc)
                    if policy == "raise":
                        raise EngineError(
                            failure.describe(), failure=failure
                        ) from exc
                    yield self._failure(
                        index, total, job, key, exc, failure=failure,
                        attempts=attempts, retry_wait_s=waited,
                        spans=spans,
                    )
                    continue
                yield self._finish(
                    index, total, job, key, artifact,
                    attempts=attempts, retry_wait_s=waited,
                    spans=spans,
                )
            return
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            future_info = {
                pool.submit(execute_job_on_circuit, job, circuit): (
                    index,
                    job,
                    circuit,
                    key,
                )
                for index, job, circuit, key in pending
            }
            # Attempts taken / backoff waited so far, per batch index
            # (populated lazily: absent means one attempt in flight).
            attempts_used: dict[int, int] = {}
            waited_s: dict[int, float] = {}
            # Failed jobs sitting out their backoff, as
            # (resubmit_at_monotonic, index, job, circuit, key).  The
            # dispatcher never sleeps while other futures are running:
            # backoff deadlines become wait() timeouts, so unrelated
            # completions keep streaming during a retry delay.
            backoff_queue: list[tuple[float, int, CompileJob, Any, str]] = []
            not_done = set(future_info)
            try:
                while not_done or backoff_queue:
                    now = time.monotonic()
                    for entry in [
                        e for e in backoff_queue if e[0] <= now
                    ]:
                        backoff_queue.remove(entry)
                        _, index, job, circuit, key = entry
                        retry = pool.submit(
                            execute_job_on_circuit, job, circuit
                        )
                        future_info[retry] = (index, job, circuit, key)
                        not_done.add(retry)
                    if not not_done:
                        # Only backoffs pending: sleep to the nearest
                        # resubmission deadline.
                        time.sleep(
                            max(
                                0.0,
                                min(e[0] for e in backoff_queue) - now,
                            )
                        )
                        continue
                    timeout = None
                    if backoff_queue:
                        timeout = max(
                            0.0,
                            min(e[0] for e in backoff_queue)
                            - time.monotonic(),
                        )
                    done, not_done = wait(
                        not_done,
                        timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    # Process each completion batch in submission order
                    # so failure handling (and progress) is
                    # deterministic -- the lowest-index failure in a
                    # batch is the one reported.
                    for future in sorted(
                        done, key=lambda f: future_info[f][0]
                    ):
                        index, job, circuit, key = future_info.pop(
                            future
                        )
                        attempts = attempts_used.get(index, 0) + 1
                        try:
                            artifact = future.result()
                        except Exception as exc:
                            if attempts <= self.retries:
                                delay = self._retry_delay(attempts)
                                attempts_used[index] = attempts
                                waited_s[index] = (
                                    waited_s.get(index, 0.0) + delay
                                )
                                backoff_queue.append(
                                    (
                                        time.monotonic() + delay,
                                        index,
                                        job,
                                        circuit,
                                        key,
                                    )
                                )
                                continue
                            failure = _describe_failure(
                                index, job, key, exc
                            )
                            if policy == "raise":
                                # Drop queued work promptly; running
                                # futures finish, unstarted ones never
                                # run.
                                pool.shutdown(
                                    wait=False, cancel_futures=True
                                )
                                raise EngineError(
                                    failure.describe(), failure=failure
                                ) from exc
                            yield self._failure(
                                index, total, job, key, exc,
                                failure=failure, attempts=attempts,
                                retry_wait_s=waited_s.get(index, 0.0),
                            )
                            continue
                        yield self._finish(
                            index, total, job, key, artifact,
                            attempts=attempts,
                            retry_wait_s=waited_s.get(index, 0.0),
                        )
            except GeneratorExit:
                # Consumer abandoned the stream: do not block on (or
                # run) work nobody will read.
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    def _finish(
        self,
        index: int,
        total: int,
        job: CompileJob,
        key: str,
        artifact: dict[str, Any],
        attempts: int = 1,
        retry_wait_s: float = 0.0,
        spans: list[dict[str, Any]] | None = None,
    ) -> JobResult:
        """Store a fresh artifact and materialise its result.

        ``pass_spans`` is popped off the artifact *before* the cache
        write: the cached document keeps its historical schema and a
        later hit never replays the timeline of the machine that
        happened to compile it first.  When this compilation recorded
        spans, the popped offsets become the per-pass children of the
        final (successful) compile span.
        """
        pass_spans = artifact.pop("pass_spans", None)
        self.cache.put(key, artifact)
        result = self._result_from_artifact(
            job, index, key, artifact, cache_hit=False,
            attempts=attempts, retry_wait_s=retry_wait_s,
        )
        if spans is not None:
            if pass_spans and spans:
                spans[-1]["children"] = [
                    (name, start_s, end_s)
                    for name, start_s, end_s in pass_spans
                ]
            result.stats["spans"] = spans
        self._emit(index, total, job, False, artifact["compile_time"])
        return result

    def _failure(
        self,
        index: int,
        total: int,
        job: CompileJob,
        key: str,
        exc: Exception,
        failure: JobFailure | None = None,
        attempts: int = 1,
        retry_wait_s: float = 0.0,
        spans: list[dict[str, Any]] | None = None,
    ) -> JobResult:
        """Materialise a failed job as an error-carrying result."""
        if failure is None:
            failure = _describe_failure(index, job, key, exc)
        self._emit(index, total, job, False, 0.0, failed=True)
        return JobResult(
            job=job,
            index=index,
            key=key,
            program=None,
            compile_time=0.0,
            fidelity=None,
            cache_hit=False,
            error=failure,
            attempts=attempts,
            retry_wait_s=retry_wait_s,
            stats={"spans": spans} if spans else {},
        )

    def _result_from_artifact(
        self,
        job: CompileJob,
        index: int,
        key: str,
        doc: dict[str, Any],
        cache_hit: bool,
        circuit=None,
        attempts: int = 1,
        retry_wait_s: float = 0.0,
        hit_tier: str | None = None,
    ) -> JobResult:
        program = program_from_dict(doc["program"])
        if cache_hit and job.validate and not doc.get("validated"):
            from ..pipeline.registry import REGISTRY

            preserves = REGISTRY.get(job.backend_name).preserves_gate_stream
            source = (
                transpile_to_native(circuit)
                if circuit is not None and preserves
                else None
            )
            validate_program(program, source_circuit=source)
            # Persist the successful validation so future hits on this
            # key skip the (expensive) re-check.  Counted apart from
            # fresh stores and tier fills (kind="revalidate").
            self.cache.put(key, {**doc, "validated": True},
                           kind="revalidate")
        fidelity = FidelityModel(job.params).evaluate(program)
        stats: dict[str, Any] = {
            "pass_timings": doc.get("pass_timings", {}),
        }
        if cache_hit and hit_tier is not None:
            stats["cache_tier"] = hit_tier
        return JobResult(
            job=job,
            index=index,
            key=key,
            program=program,
            compile_time=doc["compile_time"],
            fidelity=fidelity,
            cache_hit=cache_hit,
            attempts=attempts,
            retry_wait_s=retry_wait_s,
            stats=stats,
        )

    def _emit(
        self,
        index: int,
        total: int,
        job: CompileJob,
        cache_hit: bool,
        compile_time: float,
        failed: bool = False,
    ) -> None:
        if self._progress is not None:
            self._progress(
                ProgressEvent(
                    index=index,
                    total=total,
                    job=job,
                    cache_hit=cache_hit,
                    compile_time=compile_time,
                    failed=failed,
                )
            )


def _lookup_span(
    start: float,
    end: float,
    profile: list[dict[str, Any]],
    hit: bool,
) -> dict[str, Any]:
    """Build a raw ``cache.lookup`` span from a per-tier profile.

    ``profile`` is :attr:`ProgramCache.last_lookup_profile` -- the
    tiers consulted by the lookup, in order, each with its duration.
    The tiers become child spans laid end-to-end from the lookup start
    (they ran sequentially, so that is also how they ran).
    """
    children: list[tuple[str, float, float]] = []
    offset = 0.0
    for entry in profile:
        duration = float(entry.get("duration_s", 0.0))
        children.append(
            (f"cache.{entry.get('tier', '?')}", offset, offset + duration)
        )
        offset += duration
    return {
        "name": "cache.lookup",
        "start": start,
        "end": end,
        "attrs": {"hit": hit},
        "children": children,
    }


def _describe_failure(
    index: int, job: CompileJob, key: str, exc: Exception
) -> JobFailure:
    return JobFailure(
        index=index,
        label=job.label,
        key=key,
        message=str(exc),
        error_type=type(exc).__name__,
    )


__all__ = [
    "ERROR_POLICIES",
    "CompilationEngine",
    "EngineError",
    "JobFailure",
    "JobResult",
    "ProgressCallback",
    "ProgressEvent",
]
