"""Pass-level memoization: content-addressed snapshots per pipeline pass.

The job cache (:mod:`repro.engine.cache`) reuses whole compilations; this
module reuses *prefixes* of one.  After every pass the context's produced
fields (plus the RNG state) are snapshotted under a chained key::

    key_i = sha256(base inputs + pass name + pass version + key_{i-1})

where the base inputs are the circuit digest, the effective configuration,
the hardware constants and the pipeline name.  The chaining means editing
one pass (bump its ``version`` class attribute, or change its name)
invalidates that pass and everything downstream while every upstream
snapshot stays valid -- a pipeline re-run restores the deepest intact
snapshot and executes only the remaining passes.

Snapshots travel through any :class:`~repro.engine.cache.ProgramCache`
backend (memory, disk, tiered, remote), so they share eviction, stats and
the cache-spec plumbing with job artifacts; the key payloads differ, so
the two families can never collide.  The snapshot value is a pickle of
the context's mutable fields (base64 inside the JSON artifact) -- exact
by construction, because every pass keeps all of its state on the
context and draws randomness only from ``ctx.rng``.

Usage goes through
:meth:`repro.pipeline.registry.PipelineCompiler.compile`::

    compiler = create_compiler("powermove")
    result = compiler.compile(circuit, pass_cache=MemoryCache())
    result.stats["pass_cache"]  # {"hits": ..., "misses": ..., "stores": ...}
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from dataclasses import asdict
from typing import Any

from ..pipeline.base import Pipeline
from ..pipeline.context import CompileContext

#: Bump to invalidate every existing pass snapshot (key derivation or
#: snapshot layout change).
#: v2: base payload gained the architecture-catalog name and the
#: strategy-axis selections (both change every pass's output).
PASS_MEMO_SCHEMA_VERSION = 2

#: Context fields a pass may produce; the snapshot payload.
SNAPSHOT_FIELDS = (
    "native",
    "partition",
    "architecture",
    "initial_layout",
    "block_stages",
    "routed_stages",
    "block_instructions",
    "gap_layers",
    "counters",
    "program",
)


def pass_version(p: Any) -> int:
    """A pass's snapshot version (``version`` class attribute, default 1).

    Bumping the attribute is how a pass declares "my output changed for
    the same inputs" -- it rotates the pass's chained key and therefore
    every downstream key too.
    """
    return int(getattr(p, "version", 1))


def pass_chain_keys(pipeline: Pipeline, ctx: CompileContext) -> list[str]:
    """The chained snapshot keys of ``pipeline`` over ``ctx``'s inputs."""
    base = {
        "memo_schema": PASS_MEMO_SCHEMA_VERSION,
        "pipeline": pipeline.name,
        "compiler_name": ctx.compiler_name,
        "circuit": ctx.circuit.digest(),
        "config_kind": type(ctx.config).__name__,
        "config": asdict(ctx.config),
        "params": asdict(ctx.params),
        "arch": ctx.arch_name,
        "strategies": dict(ctx.strategies),
    }
    keys: list[str] = []
    parent = ""
    for p in pipeline:
        payload = json.dumps(
            {
                "base": base,
                "parent": parent,
                "pass": p.name,
                "pass_version": pass_version(p),
            },
            separators=(",", ":"),
            sort_keys=True,
        )
        parent = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        keys.append(parent)
    return keys


class PassMemo:
    """One pipeline run's view of the pass-snapshot cache.

    Implements the two hooks :meth:`~repro.pipeline.base.Pipeline.run`
    consumes: :meth:`restore` (probe the deepest intact snapshot and
    rebuild the context from it) and :meth:`record` (snapshot the
    context after an executed pass).  Counters:

    * ``hits`` -- passes skipped because a snapshot covered them;
    * ``misses`` -- passes actually executed;
    * ``stores`` -- fresh snapshots written this run.
    """

    def __init__(
        self, cache: Any, pipeline: Pipeline, ctx: CompileContext
    ) -> None:
        self._cache = cache
        self._passes = tuple(pipeline)
        self._keys = pass_chain_keys(pipeline, ctx)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- Pipeline.run hooks --------------------------------------------

    def restore(self, ctx: CompileContext) -> int:
        """Rebuild ``ctx`` from the deepest intact snapshot.

        Returns the index of the first pass that still must run (0 when
        nothing usable was cached).  Skipped passes get a 0.0 timing
        entry so ``pass_timings`` keeps its full, ordered key set.
        """
        for index in range(len(self._passes) - 1, -1, -1):
            doc = self._cache.get(self._keys[index])
            if doc is None:
                continue
            state = _decode_snapshot(doc)
            if state is None:
                continue  # corrupt or foreign entry: keep probing
            for name, value in state["fields"].items():
                setattr(ctx, name, value)
            if ctx.rng is not None and state["rng_state"] is not None:
                ctx.rng.setstate(state["rng_state"])
            for p in self._passes[: index + 1]:
                ctx.pass_timings[p.name] = 0.0
            self.hits = index + 1
            return index + 1
        return 0

    def record(self, ctx: CompileContext, index: int) -> None:
        """Snapshot ``ctx`` after pass ``index`` executed."""
        self.misses += 1
        key = self._keys[index]
        if self._cache.contains(key):
            return
        self._cache.put(key, _encode_snapshot(ctx, self._passes[index]))
        self.stores += 1

    def stats_doc(self) -> dict[str, int]:
        """The counters, as surfaced in ``CompilationResult.stats``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }


def _encode_snapshot(ctx: CompileContext, p: Any) -> dict[str, Any]:
    payload = {
        "fields": {
            name: getattr(ctx, name) for name in SNAPSHOT_FIELDS
        },
        "rng_state": ctx.rng.getstate() if ctx.rng is not None else None,
    }
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return {
        "memo_schema": PASS_MEMO_SCHEMA_VERSION,
        "pass": p.name,
        "pass_version": pass_version(p),
        "state": base64.b64encode(blob).decode("ascii"),
    }


def _decode_snapshot(doc: dict[str, Any]) -> dict[str, Any] | None:
    if (
        not isinstance(doc, dict)
        or doc.get("memo_schema") != PASS_MEMO_SCHEMA_VERSION
        or "state" not in doc
    ):
        return None
    try:
        payload = pickle.loads(base64.b64decode(doc["state"]))
    except Exception:  # corrupt entry: treat as a miss, never fail a run
        return None
    if not isinstance(payload, dict) or "fields" not in payload:
        return None
    return payload


__all__ = [
    "PASS_MEMO_SCHEMA_VERSION",
    "PassMemo",
    "SNAPSHOT_FIELDS",
    "pass_chain_keys",
    "pass_version",
]
