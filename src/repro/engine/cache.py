"""Content-addressed compilation cache.

The cache key is a SHA-256 over the *complete* compilation input: the
circuit's content digest, the backend name, the effective compiler
configuration, the hardware constants, the AOD count and the seed, plus
the serialization format version and a cache schema version so a change
to either invalidates every stale entry.  Two jobs collide on a key only
when they are guaranteed to produce bit-identical programs.

The cached value is the :func:`repro.engine.jobs.execute_job` artifact
(serialized program + compile time).  Backends:

* :class:`MemoryCache` -- per-process dict, for repeated sweeps within
  one run;
* :class:`DiskCache` -- one JSON file per key under a directory, shared
  across processes and runs (writes are atomic rename, so concurrent
  workers race benignly; size accounting and eviction take a
  cross-process file lock); give it ``max_bytes`` for LRU eviction by
  file mtime (reads refresh recency);
* :class:`NullCache` -- caching disabled; every lookup misses.

Remote (HTTP object store) and tiered (memory -> disk -> remote)
backends live in :mod:`repro.engine.cachestore`, together with the
``"disk:PATH"`` / ``"tiered:..."`` cache-spec factory -- see
``docs/caching.md``.

All backends count hits/misses/stores (plus read-through fills,
hit-path revalidation write-backs, evictions and remote transport
errors) in a :class:`CacheStats`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any

try:  # POSIX only; the lock degrades to in-process on other platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..schedule.serialize import FORMAT_VERSION
from .jobs import AUTO_BACKEND, CompileJob, effective_config, resolve_backend

#: Bump to invalidate every existing cache entry (key derivation or
#: artifact layout change).  v2: the backend registry name joined the
#: key payload and artifacts carry per-pass timings.  v3: the
#: architecture-catalog name and strategy-axis selections joined the
#: key payload.
CACHE_SCHEMA_VERSION = 3


def job_cache_key(job: CompileJob, circuit_digest: str | None = None) -> str:
    """Stable hex cache key of a job.

    An ``auto`` job is resolved to its concrete backend first (a pure
    function of the circuit and architecture), so it shares its key --
    and therefore its cache entry -- with the equivalent
    explicitly-named job.

    Args:
        job: The compilation request.
        circuit_digest: Pre-computed :meth:`Circuit.digest` of the job's
            resolved circuit (resolved here when omitted).
    """
    circuit = None
    if circuit_digest is None:
        circuit = job.resolve_circuit()
        circuit_digest = circuit.digest()
    if job.backend == AUTO_BACKEND:
        job = resolve_backend(job, circuit)
    config = effective_config(job)
    payload = json.dumps(
        {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "program_format": FORMAT_VERSION,
            "circuit": circuit_digest,
            "backend": job.backend_name,
            "config_kind": type(config).__name__,
            "config": asdict(config),
            "params": asdict(job.params),
            "num_aods": job.num_aods,
            "seed": job.seed,
            "arch": job.arch,
            "strategies": job.strategies_map,
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters of one cache instance.

    ``stores`` counts fresh artifact writes; ``fills`` counts
    read-through copies a tiered cache pushed into this tier after a
    lower tier hit; ``revalidations`` counts hit-path
    ``validated: true`` write-backs (see ``docs/engine.md``) -- three
    different write reasons, counted apart so occupancy questions
    ("how much new work did this run produce?") have honest answers.
    ``errors`` counts transport failures of a remote tier (each one
    degraded to a miss or a dropped write, never a failed job).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    fills: int = 0
    revalidations: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def writes(self) -> int:
        """Total ``put`` calls observed, of any kind."""
        return self.stores + self.fills + self.revalidations


#: Valid ``kind`` values of :meth:`ProgramCache.put`.
PUT_KINDS = ("store", "fill", "revalidate")


class ProgramCache:
    """Base class: stats bookkeeping around backend get/put.

    Subclasses implement ``_load`` / ``_store`` (and may override
    ``contains`` / ``prune`` / ``info`` where they can do better than
    the generic fallbacks).  :attr:`last_hit_tier` names the tier that
    served the most recent hit (for plain backends, the backend's own
    :attr:`kind`; tiered caches report the member tier) -- callers
    that want per-job attribution read it immediately after ``get``.
    Both :attr:`last_hit_tier` and :attr:`last_lookup_profile` are
    **per-thread** state: service worker threads share one cache, and
    a neighbour's lookup must not clobber the attribution this thread
    is about to read.

    Counter mutation and :meth:`stats_doc` snapshots share one
    ``_stats_lock``, so a ``ping`` reading the stats mid-flush sees a
    consistent document (tiered caches additionally hold the lock for
    the whole write-back flush batch).
    """

    #: Short backend identity used in specs, stats and tier names.
    kind = "cache"

    def __init__(self) -> None:
        self.stats = CacheStats()
        # Serialises counter updates against stats_doc() snapshots.
        self._stats_lock = threading.RLock()
        self._tls = threading.local()

    @property
    def last_hit_tier(self) -> str | None:
        """Tier that served this thread's most recent hit (or None)."""
        return getattr(self._tls, "hit_tier", None)

    @last_hit_tier.setter
    def last_hit_tier(self, value: str | None) -> None:
        self._tls.hit_tier = value

    @property
    def last_lookup_profile(self) -> list[dict[str, Any]]:
        """Per-tier timing of this thread's most recent ``get``.

        One ``{"tier", "duration_s", "hit"}`` entry per tier consulted,
        in consultation order -- the source of the per-tier cache
        lookup spans in job traces.
        """
        return list(getattr(self._tls, "lookup_profile", ()))

    def get(self, key: str) -> dict[str, Any] | None:
        """Look up an artifact; ``None`` on miss."""
        start = time.perf_counter()
        doc = self._load(key)
        duration = time.perf_counter() - start
        hit = doc is not None
        with self._stats_lock:
            if hit:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        self.last_hit_tier = self.kind if hit else None
        self._tls.lookup_profile = [
            {"tier": self.kind, "duration_s": duration, "hit": hit}
        ]
        return doc

    def put(
        self, key: str, doc: dict[str, Any], *, kind: str = "store"
    ) -> None:
        """Store an artifact under ``key``.

        Args:
            key: Content-addressed cache key.
            doc: The artifact document.
            kind: Why the write happened -- ``"store"`` (fresh
                artifact), ``"fill"`` (tiered read-through copy) or
                ``"revalidate"`` (hit-path ``validated: true``
                write-back).  Selects the stats counter only; the
                stored bytes are identical.
        """
        if kind not in PUT_KINDS:
            raise ValueError(
                f"put kind must be one of {PUT_KINDS}, got {kind!r}"
            )
        self._store(key, doc)
        with self._stats_lock:
            if kind == "fill":
                self.stats.fills += 1
            elif kind == "revalidate":
                self.stats.revalidations += 1
            else:
                self.stats.stores += 1

    def contains(self, key: str) -> bool:
        """Whether ``key`` is present (no stats, no recency refresh)."""
        return self._contains(key)

    def prune(self, max_bytes: int | None = None) -> "PruneReport":
        """Evict entries down to ``max_bytes`` where supported.

        The base implementation cannot enumerate entries and evicts
        nothing; backends with real occupancy (disk, memory, remote,
        tiered) override it.
        """
        return PruneReport(
            removed_entries=0,
            removed_bytes=0,
            remaining_entries=0,
            remaining_bytes=0,
        )

    def flush(self) -> int:
        """Push deferred writes downstream (write-back tiering only).

        Returns the number of entries flushed; plain backends have
        nothing deferred and return 0.
        """
        return 0

    def info(self) -> dict[str, Any]:
        """Occupancy / configuration description (JSON-safe)."""
        return {"kind": self.kind}

    def stats_doc(self) -> dict[str, Any]:
        """This cache's counters as a JSON-safe document.

        Snapshot under ``_stats_lock``, so concurrent mutators (worker
        threads, a write-back flush) can never produce a torn read.
        Tiered caches extend it with one entry per member tier.
        """
        with self._stats_lock:
            return {"kind": self.kind, "stats": asdict(self.stats)}

    def _load(self, key: str) -> dict[str, Any] | None:
        raise NotImplementedError

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        raise NotImplementedError

    def _contains(self, key: str) -> bool:
        return self._load(key) is not None


class NullCache(ProgramCache):
    """Caching disabled: every lookup misses, stores are dropped."""

    kind = "null"

    def _load(self, key: str) -> dict[str, Any] | None:
        return None

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        pass

    def _contains(self, key: str) -> bool:
        return False


class MemoryCache(ProgramCache):
    """In-process dict backend.

    Tracks an approximate byte occupancy (canonical-JSON size of every
    entry) so ``info`` / ``prune`` work uniformly across backends;
    eviction order is insertion order (oldest entry first).
    """

    kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._entries: dict[str, dict[str, Any]] = {}
        self._sizes: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def total_bytes(self) -> int:
        """Approximate summed entry size (canonical JSON bytes)."""
        return sum(self._sizes.values())

    def _load(self, key: str) -> dict[str, Any] | None:
        return self._entries.get(key)

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        self._entries[key] = doc
        self._sizes[key] = len(
            json.dumps(doc, separators=(",", ":"), sort_keys=True)
        )

    def _contains(self, key: str) -> bool:
        return key in self._entries

    def prune(self, max_bytes: int | None = None) -> "PruneReport":
        """Evict oldest-inserted entries down to ``max_bytes``."""
        removed_entries = 0
        removed_bytes = 0
        remaining = self.total_bytes()
        if max_bytes is not None:
            for key in list(self._entries):
                if remaining <= max_bytes:
                    break
                size = self._sizes.pop(key, 0)
                remaining -= size
                removed_bytes += size
                del self._entries[key]
                removed_entries += 1
                with self._stats_lock:
                    self.stats.evictions += 1
        return PruneReport(
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            remaining_entries=len(self._entries),
            remaining_bytes=remaining,
        )

    def info(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "entries": len(self._entries),
            "total_bytes": self.total_bytes(),
        }


class _DirectoryLock:
    """Re-entrant cross-process advisory lock on a cache directory.

    Serialises the read-modify-write critical sections of
    :class:`DiskCache` -- size accounting on store, eviction scans in
    :meth:`DiskCache.prune` -- across threads (an in-process
    ``RLock``) and across processes (``flock`` on
    ``<directory>/.lock``).  Entry *payload* writes never need it:
    they are atomic-rename and safe under any interleaving.  On
    platforms without :mod:`fcntl` only the in-process half applies.
    """

    def __init__(self, directory: str) -> None:
        self._directory = directory
        self._mutex = threading.RLock()
        self._depth = 0
        self._handle = None

    def __enter__(self) -> "_DirectoryLock":
        self._mutex.acquire()
        self._depth += 1
        if self._depth == 1 and fcntl is not None:
            os.makedirs(self._directory, exist_ok=True)
            path = os.path.join(self._directory, ".lock")
            try:
                handle = open(path, "a")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                # Lock file unavailable (read-only mount, exotic fs):
                # fall back to in-process mutual exclusion only.
                self._handle = None
            else:
                self._handle = handle
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._depth -= 1
        if self._depth == 0 and self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            self._handle.close()
            self._handle = None
        self._mutex.release()


@dataclass(frozen=True)
class PruneReport:
    """Outcome of one :meth:`DiskCache.prune` call."""

    removed_entries: int
    removed_bytes: int
    remaining_entries: int
    remaining_bytes: int


class DiskCache(ProgramCache):
    """One ``<key>.json`` file per entry under ``directory``.

    The directory is created on first use.  Writes go through a
    temporary file plus :func:`os.replace`, so a reader never observes a
    half-written entry and concurrent writers of the same key simply
    last-write-win with identical content.  Size accounting and
    eviction additionally run under a cross-process file lock
    (``<directory>/.lock``), so many workers -- service worker
    threads, sharded batch processes -- can share one bounded cache
    directory without double-counting overwrites or racing prunes.

    Args:
        directory: Cache root.
        max_bytes: Soft size budget.  After every store the
            least-recently-used entries (oldest mtime; reads refresh it)
            are evicted until the total drops under the budget.  ``None``
            disables eviction.  A budget smaller than a single artifact
            still keeps the just-written entry writable -- it is simply
            evicted by a later store.
    """

    kind = "disk"

    def __init__(
        self, directory: str, max_bytes: int | None = None
    ) -> None:
        super().__init__()
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.directory = directory
        self.max_bytes = max_bytes
        # Running occupancy estimate so bounded caches do not rescan
        # the directory on every store; refreshed whenever we prune.
        self._size_estimate: int | None = None
        # Guards size accounting and eviction against concurrent
        # writers of the same directory (threads and processes).
        self._lock = _DirectoryLock(directory)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _load(self, key: str) -> dict[str, Any] | None:
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return doc

    def _write_entry(self, key: str, doc: dict[str, Any]) -> None:
        """Atomically (tmp file + rename) write one entry payload."""
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        if self.max_bytes is None:
            # Unbounded: no size accounting, and the atomic rename
            # makes the bare write safe under any concurrency.
            self._write_entry(key, doc)
            return
        # Bounded: the stat-replace-account sequence must not
        # interleave with another writer's, or overwrite deltas get
        # double-counted and occupancy drifts; the directory lock makes
        # it atomic across the threads and processes sharing this
        # cache directory.
        with self._lock:
            # A same-key overwrite replaces the old entry, so its size
            # must leave the running estimate; stat it before
            # os.replace clobbers it (0 when the key is new).
            try:
                replaced_size = os.stat(self._path(key)).st_size
            except OSError:
                replaced_size = 0
            self._write_entry(key, doc)
            # Maintain the occupancy estimate incrementally (one stat
            # of the just-written entry) and only pay the full
            # directory scan when the budget is actually exceeded.
            # Cross-process the estimate still drifts (each process
            # keeps its own), but every prune resynchronises it from
            # the directory under the same lock.
            if self._size_estimate is None:
                self._size_estimate = self.total_bytes()
            else:
                try:
                    self._size_estimate += (
                        os.stat(self._path(key)).st_size - replaced_size
                    )
                except OSError:
                    self._size_estimate = self.total_bytes()
            if self._size_estimate > self.max_bytes:
                self.prune(self.max_bytes)

    # -- size accounting / eviction ------------------------------------

    def _entries(self) -> list[tuple[str, float, int]]:
        """``(path, mtime, size)`` of every entry, oldest first."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        entries = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # concurrently evicted
            entries.append((path, stat.st_mtime, stat.st_size))
        entries.sort(key=lambda e: (e[1], e[0]))
        return entries

    def total_bytes(self) -> int:
        """Summed size of all cache entries."""
        return sum(size for _, _, size in self._entries())

    def __len__(self) -> int:
        return len(self._entries())

    def _contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def info(self) -> dict[str, Any]:
        entries = self._entries()
        return {
            "kind": self.kind,
            "directory": self.directory,
            "max_bytes": self.max_bytes,
            "entries": len(entries),
            "total_bytes": sum(size for _, _, size in entries),
        }

    def prune(self, max_bytes: int | None = None) -> PruneReport:
        """Evict least-recently-used entries down to ``max_bytes``.

        Args:
            max_bytes: Size budget for this prune; ``0`` empties the
                cache.  Defaults to the instance's ``max_bytes``; when
                neither is set, nothing is evicted and the report only
                carries occupancy counts.

        Returns:
            A :class:`PruneReport` with eviction and occupancy counts.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        with self._lock:
            entries = self._entries()
            total = sum(size for _, _, size in entries)
            removed_entries = 0
            removed_bytes = 0
            if budget is not None:
                for path, _, size in entries:
                    if total <= budget:
                        break
                    try:
                        os.unlink(path)
                    except OSError:
                        continue  # concurrently evicted
                    total -= size
                    removed_entries += 1
                    removed_bytes += size
                    with self._stats_lock:
                        self.stats.evictions += 1
            self._size_estimate = total
        return PruneReport(
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            remaining_entries=len(entries) - removed_entries,
            remaining_bytes=total,
        )


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "PUT_KINDS",
    "CacheStats",
    "DiskCache",
    "MemoryCache",
    "NullCache",
    "ProgramCache",
    "PruneReport",
    "job_cache_key",
]
