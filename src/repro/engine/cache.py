"""Content-addressed compilation cache.

The cache key is a SHA-256 over the *complete* compilation input: the
circuit's content digest, the scenario, the effective compiler
configuration, the hardware constants, the AOD count and the seed, plus
the serialization format version and a cache schema version so a change
to either invalidates every stale entry.  Two jobs collide on a key only
when they are guaranteed to produce bit-identical programs.

The cached value is the :func:`repro.engine.jobs.execute_job` artifact
(serialized program + compile time).  Backends:

* :class:`MemoryCache` -- per-process dict, for repeated sweeps within
  one run;
* :class:`DiskCache` -- one JSON file per key under a directory, shared
  across processes and runs (writes are atomic rename, so concurrent
  workers race benignly);
* :class:`NullCache` -- caching disabled; every lookup misses.

All backends count hits/misses/stores in a :class:`CacheStats`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from typing import Any

from ..schedule.serialize import FORMAT_VERSION
from .jobs import CompileJob, effective_config

#: Bump to invalidate every existing cache entry (key derivation or
#: artifact layout change).
CACHE_SCHEMA_VERSION = 1


def job_cache_key(job: CompileJob, circuit_digest: str | None = None) -> str:
    """Stable hex cache key of a job.

    Args:
        job: The compilation request.
        circuit_digest: Pre-computed :meth:`Circuit.digest` of the job's
            resolved circuit (resolved here when omitted).
    """
    if circuit_digest is None:
        circuit_digest = job.resolve_circuit().digest()
    config = effective_config(job)
    payload = json.dumps(
        {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "program_format": FORMAT_VERSION,
            "circuit": circuit_digest,
            "scenario": job.scenario,
            "config_kind": type(config).__name__,
            "config": asdict(config),
            "params": asdict(job.params),
            "num_aods": job.num_aods,
            "seed": job.seed,
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses


class ProgramCache:
    """Base class: stats bookkeeping around backend get/put."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: str) -> dict[str, Any] | None:
        """Look up an artifact; ``None`` on miss."""
        doc = self._load(key)
        if doc is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return doc

    def put(self, key: str, doc: dict[str, Any]) -> None:
        """Store an artifact under ``key``."""
        self._store(key, doc)
        self.stats.stores += 1

    def _load(self, key: str) -> dict[str, Any] | None:
        raise NotImplementedError

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        raise NotImplementedError


class NullCache(ProgramCache):
    """Caching disabled: every lookup misses, stores are dropped."""

    def _load(self, key: str) -> dict[str, Any] | None:
        return None

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        pass


class MemoryCache(ProgramCache):
    """In-process dict backend."""

    def __init__(self) -> None:
        super().__init__()
        self._entries: dict[str, dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _load(self, key: str) -> dict[str, Any] | None:
        return self._entries.get(key)

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        self._entries[key] = doc


class DiskCache(ProgramCache):
    """One ``<key>.json`` file per entry under ``directory``.

    The directory is created on first use.  Writes go through a
    temporary file plus :func:`os.replace`, so a reader never observes a
    half-written entry and concurrent writers of the same key simply
    last-write-win with identical content.
    """

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = directory

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _load(self, key: str) -> dict[str, Any] | None:
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            os.replace(tmp_path, self._path(key))
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DiskCache",
    "MemoryCache",
    "NullCache",
    "ProgramCache",
    "job_cache_key",
]
