"""Compilation jobs: the unit of work of the batch engine.

A :class:`CompileJob` names one compilation: a workload (a Table 2
benchmark key or an explicit :class:`~repro.circuits.circuit.Circuit`)
plus one compiler *backend* -- named either through the historical
evaluation scenario keys (see :data:`SCENARIOS`) or directly through a
:mod:`repro.pipeline` registry name (``backend="atomique"``,
``backend="powermove-noreorder"``, ...) -- the AOD count, the seed,
optional compiler-config overrides and the hardware constants.  Jobs are
plain picklable dataclasses so they travel to worker processes
unchanged, and every stochastic choice downstream flows from the job's
explicit ``seed`` -- two executions of the same job, in any process,
produce bit-identical programs.

:func:`execute_job` is the pure worker function: job in, serialized
program artifact out.  It lives at module level so
``concurrent.futures`` process pools can pickle it.  Compilers are
resolved through the backend registry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from ..baselines.atomique import AtomiqueConfig
from ..baselines.enola import EnolaConfig
from ..benchsuite.suite import get_benchmark
from ..circuits.circuit import Circuit
from ..core.config import PowerMoveConfig
from ..hardware.catalog import ARCHITECTURES
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..pipeline.costmodel import AUTO_BACKEND, choose_backend
from ..pipeline.registry import REGISTRY, PipelineCompiler
from ..pipeline.strategies import validate_strategies
from ..schedule.serialize import program_to_dict
from ..schedule.validator import validate_program

#: Canonical scenario keys, in report order (re-exported by
#: :mod:`repro.analysis.experiments` for backwards compatibility).
SCENARIOS = ("enola", "pm_non_storage", "pm_with_storage")

#: Historical scenario key -> backend registry name.
SCENARIO_BACKENDS = {
    "enola": "enola",
    "pm_non_storage": "powermove-nonstorage",
    "pm_with_storage": "powermove",
}


class JobError(ValueError):
    """Raised on structurally invalid job construction."""


@dataclass(frozen=True)
class CompileJob:
    """One compilation request.

    Exactly one of ``benchmark`` (a Table 2 row key, built with the
    job's seed) or ``circuit`` must be given, and exactly one of
    ``scenario`` (legacy key) or ``backend`` (registry name).

    Attributes:
        scenario: One of :data:`SCENARIOS` (legacy compiler naming).
        benchmark: Suite row key, e.g. ``"BV-14"``.
        circuit: Explicit workload circuit.
        num_aods: AOD arrays available to the compiler.
        seed: Seed for the circuit instance (benchmark jobs) and all
            compiler randomness.
        enola_config: Override the Enola-family backends' knobs (used
            as-is when given; the default derives from
            ``seed``/``num_aods``).
        powermove_config: Override the PowerMove-family backends' knobs
            (``use_storage``, ``num_aods``, ``seed`` and any
            ablation-forced field are still forced per backend).
        params: Hardware constants.
        validate: Run the structural validator on the compiled program.
        backend: A :mod:`repro.pipeline` registry name; the modern
            alternative to ``scenario``.  The pseudo-name ``"auto"``
            defers the choice to the pre-compile cost model
            (:func:`repro.pipeline.costmodel.choose_backend`); such a
            job is resolved to a concrete backend -- deterministically,
            from the circuit and architecture alone -- before any
            compilation or cache lookup (see :func:`resolve_backend`).
        atomique_config: Override the Atomique backend's knobs.
        arch: Optional architecture-catalog entry name
            (:data:`repro.hardware.catalog.ARCHITECTURES`) the backend
            compiles onto instead of its default floor plan.
        strategies: Optional axis -> entry strategy overrides
            (:data:`repro.pipeline.strategies.STRATEGY_AXES`), given as
            a mapping or pair iterable; normalised to a sorted tuple of
            pairs so jobs stay hashable.  Both ``arch`` and
            ``strategies`` enter the compilation cache key.
    """

    scenario: str | None = None
    benchmark: str | None = None
    circuit: Circuit | None = None
    num_aods: int = 1
    seed: int = 0
    enola_config: EnolaConfig | None = None
    powermove_config: PowerMoveConfig | None = None
    params: HardwareParams = DEFAULT_PARAMS
    validate: bool = True
    backend: str | None = None
    atomique_config: AtomiqueConfig | None = None
    arch: str | None = None
    strategies: Any = None

    def __post_init__(self) -> None:
        if (self.scenario is None) == (self.backend is None):
            raise JobError(
                "exactly one of scenario or backend must be given"
            )
        if self.scenario is not None and self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if (
            self.backend is not None
            and self.backend != AUTO_BACKEND
            and self.backend not in REGISTRY
        ):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"known: {AUTO_BACKEND}, {', '.join(REGISTRY.names())}"
            )
        if (self.benchmark is None) == (self.circuit is None):
            raise JobError(
                "exactly one of benchmark or circuit must be given"
            )
        if self.num_aods < 1:
            raise JobError("need at least one AOD array")
        if self.arch is not None and self.arch not in ARCHITECTURES:
            raise JobError(
                f"unknown architecture {self.arch!r}; "
                f"known: {', '.join(ARCHITECTURES.names())}"
            )
        if self.strategies is not None:
            items = (
                self.strategies.items()
                if isinstance(self.strategies, Mapping)
                else self.strategies
            )
            normalised = tuple(
                sorted((str(axis), str(name)) for axis, name in items)
            )
            validate_strategies(dict(normalised))
            object.__setattr__(
                self, "strategies", normalised if normalised else None
            )

    @property
    def backend_name(self) -> str:
        """The registry backend the job compiles with."""
        if self.backend is not None:
            return self.backend
        return SCENARIO_BACKENDS[self.scenario]

    @property
    def scenario_key(self) -> str:
        """Reporting key: the legacy scenario, or the backend name."""
        return self.scenario if self.scenario is not None else self.backend

    @property
    def workload_name(self) -> str:
        """Benchmark key or circuit name."""
        if self.benchmark is not None:
            return self.benchmark
        return self.circuit.name

    @property
    def strategies_map(self) -> dict[str, str]:
        """The strategy overrides as a plain axis -> entry dict."""
        return dict(self.strategies or ())

    @property
    def label(self) -> str:
        """Human-readable job identity for progress lines and errors."""
        label = (
            f"{self.workload_name}:{self.scenario_key}"
            f":aods{self.num_aods}:seed{self.seed}"
        )
        if self.arch is not None:
            label += f":arch-{self.arch}"
        return label

    def identity(self) -> dict[str, Any]:
        """The job's identity fields, as reported in result records.

        This is the stable (workload, compiler, seed, AODs) quadruple
        used by batch result documents, streaming NDJSON lines and
        failure payloads -- one definition so they never drift apart.
        ``arch`` and ``strategies`` appear only when set, keeping
        historical records byte-identical.
        """
        doc: dict[str, Any] = {
            "benchmark": self.workload_name,
            "scenario": self.scenario_key,
            "seed": self.seed,
            "num_aods": self.num_aods,
        }
        if self.arch is not None:
            doc["arch"] = self.arch
        if self.strategies:
            doc["strategies"] = self.strategies_map
        return doc

    def resolve_circuit(self) -> Circuit:
        """The workload circuit (built from the suite when keyed)."""
        if self.circuit is not None:
            return self.circuit
        return get_benchmark(self.benchmark).build(self.seed)


def resolve_backend(
    job: CompileJob, circuit: Circuit | None = None
) -> CompileJob:
    """Resolve an ``auto`` job to a concrete backend; others pass through.

    The choice is the cost model's
    (:func:`repro.pipeline.costmodel.choose_backend`): a pure function
    of the circuit, the job's architecture, AOD count and hardware
    constants -- so the same ``auto`` job resolves identically in every
    process, and its cache key equals the explicitly-named job's.

    Args:
        job: Any job; returned unchanged unless ``backend == "auto"``.
        circuit: The job's resolved circuit, when the caller already
            has it (resolved here otherwise).
    """
    if job.backend != AUTO_BACKEND:
        return job
    if circuit is None:
        circuit = job.resolve_circuit()
    chosen = choose_backend(
        circuit, arch=job.arch, num_aods=job.num_aods, params=job.params
    )
    return replace(job, backend=chosen)


def effective_config(
    job: CompileJob,
) -> EnolaConfig | PowerMoveConfig | AtomiqueConfig:
    """The compiler configuration the job actually runs with.

    Resolved through the backend registry, preserving the historical
    ``run_scenarios`` rules: a given Enola config is used verbatim,
    while PowerMove overrides always have ``use_storage``, ``num_aods``
    and ``seed`` (plus any ablation field) forced per backend.  An
    ``auto`` job is resolved to its concrete backend first.
    """
    job = resolve_backend(job)
    spec = REGISTRY.get(job.backend_name)
    overrides = {
        EnolaConfig: job.enola_config,
        PowerMoveConfig: job.powermove_config,
        AtomiqueConfig: job.atomique_config,
    }
    override = overrides.get(spec.config_cls)
    return spec.effective_config(override, job.seed, job.num_aods)


def job_compiler(job: CompileJob) -> PipelineCompiler:
    """The registry compiler a job resolves to (with effective config)."""
    job = resolve_backend(job)
    return REGISTRY.create(
        job.backend_name, effective_config(job), job.params
    )


def job_to_doc(job: CompileJob) -> dict[str, Any]:
    """Serialize a benchmark-keyed job to a JSON-safe document.

    The exact inverse of :func:`job_from_doc`
    (``job_from_doc(job_to_doc(j)) == j``); the compilation service
    persists queued jobs through this pair so they survive daemon
    restarts.  Jobs carrying an explicit :class:`Circuit` are rejected
    -- queue records must stay small and content-addressed, and every
    manifest-born job is benchmark-keyed.
    """
    if job.circuit is not None:
        raise JobError(
            "only benchmark-keyed jobs serialize to documents "
            "(explicit circuits do not travel through the queue)"
        )
    doc: dict[str, Any] = {
        "benchmark": job.benchmark,
        "num_aods": job.num_aods,
        "seed": job.seed,
        "validate": job.validate,
    }
    if job.scenario is not None:
        doc["scenario"] = job.scenario
    if job.backend is not None:
        doc["backend"] = job.backend
    if job.arch is not None:
        doc["arch"] = job.arch
    if job.strategies:
        doc["strategies"] = job.strategies_map
    if job.enola_config is not None:
        doc["enola"] = asdict(job.enola_config)
    if job.powermove_config is not None:
        doc["powermove"] = asdict(job.powermove_config)
    if job.atomique_config is not None:
        doc["atomique"] = asdict(job.atomique_config)
    if job.params != DEFAULT_PARAMS:
        doc["params"] = asdict(job.params)
    return doc


def job_from_doc(doc: dict[str, Any]) -> CompileJob:
    """Rebuild a :class:`CompileJob` from a :func:`job_to_doc` document."""
    if not isinstance(doc, dict):
        raise JobError("job document must be an object")
    try:
        return CompileJob(
            scenario=doc.get("scenario"),
            benchmark=doc["benchmark"],
            num_aods=doc.get("num_aods", 1),
            seed=doc.get("seed", 0),
            enola_config=(
                EnolaConfig(**doc["enola"]) if "enola" in doc else None
            ),
            powermove_config=(
                PowerMoveConfig(**doc["powermove"])
                if "powermove" in doc
                else None
            ),
            params=(
                HardwareParams(**doc["params"])
                if "params" in doc
                else DEFAULT_PARAMS
            ),
            validate=doc.get("validate", True),
            backend=doc.get("backend"),
            atomique_config=(
                AtomiqueConfig(**doc["atomique"])
                if "atomique" in doc
                else None
            ),
            arch=doc.get("arch"),
            strategies=doc.get("strategies"),
        )
    except KeyError as exc:
        raise JobError(f"job document missing field {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise JobError(f"bad job document: {exc}") from exc


def execute_job_on_circuit(
    job: CompileJob, circuit: Circuit
) -> dict[str, Any]:
    """Compile ``circuit`` per ``job`` and return a picklable artifact.

    The artifact is the unit stored in the content-addressed cache::

        {"program": <serialize.program_to_dict doc>,
         "compile_time": <T_comp seconds>,
         "validated": <bool>,
         "pass_timings": <pass name -> seconds>,
         "pass_spans": [[name, start_s, end_s], ...]}

    ``pass_spans`` are this compile's real per-pass offsets (relative
    to compile start) -- measurement of *this* run, not content; the
    engine pops them off before the artifact is cached, so cache hits
    never replay a previous machine's timeline.
    """
    job = resolve_backend(job, circuit)
    compilation = job_compiler(job).compile(
        circuit, arch=job.arch, strategies=job.strategies_map
    )
    if job.validate:
        spec = REGISTRY.get(job.backend_name)
        validate_program(
            compilation.program,
            source_circuit=(
                compilation.native_circuit
                if spec.preserves_gate_stream
                else None
            ),
        )
    return {
        "program": program_to_dict(compilation.program),
        "compile_time": compilation.compile_time,
        "validated": job.validate,
        "pass_timings": compilation.stats.get("pass_timings", {}),
        "pass_spans": compilation.stats.get("pass_spans", []),
    }


def execute_job(job: CompileJob) -> dict[str, Any]:
    """Resolve the job's circuit and compile it (process-pool entry)."""
    return execute_job_on_circuit(job, job.resolve_circuit())


__all__ = [
    "AUTO_BACKEND",
    "CompileJob",
    "JobError",
    "SCENARIOS",
    "SCENARIO_BACKENDS",
    "effective_config",
    "execute_job",
    "execute_job_on_circuit",
    "job_compiler",
    "job_from_doc",
    "job_to_doc",
    "resolve_backend",
]
