"""Compilation jobs: the unit of work of the batch engine.

A :class:`CompileJob` names one compilation: a workload (a Table 2
benchmark key or an explicit :class:`~repro.circuits.circuit.Circuit`)
plus one evaluation *scenario* (see :data:`SCENARIOS`), the AOD count,
the seed, optional compiler-config overrides and the hardware constants.
Jobs are plain picklable dataclasses so they travel to worker processes
unchanged, and every stochastic choice downstream flows from the job's
explicit ``seed`` -- two executions of the same job, in any process,
produce bit-identical programs.

:func:`execute_job` is the pure worker function: job in, serialized
program artifact out.  It lives at module level so
``concurrent.futures`` process pools can pickle it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..baselines.enola import EnolaCompiler, EnolaConfig
from ..benchsuite.suite import get_benchmark
from ..circuits.circuit import Circuit
from ..core.compiler import PowerMoveCompiler
from ..core.config import PowerMoveConfig
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.serialize import program_to_dict
from ..schedule.validator import validate_program

#: Canonical scenario keys, in report order (re-exported by
#: :mod:`repro.analysis.experiments` for backwards compatibility).
SCENARIOS = ("enola", "pm_non_storage", "pm_with_storage")


class JobError(ValueError):
    """Raised on structurally invalid job construction."""


@dataclass(frozen=True)
class CompileJob:
    """One compilation request.

    Exactly one of ``benchmark`` (a Table 2 row key, built with the
    job's seed) or ``circuit`` must be given.

    Attributes:
        scenario: One of :data:`SCENARIOS`.
        benchmark: Suite row key, e.g. ``"BV-14"``.
        circuit: Explicit workload circuit.
        num_aods: AOD arrays available to the compiler.
        seed: Seed for the circuit instance (benchmark jobs) and all
            compiler randomness.
        enola_config: Override the Enola baseline's knobs (used as-is
            when given; the default derives from ``seed``/``num_aods``).
        powermove_config: Override PowerMove's knobs (``use_storage``,
            ``num_aods`` and ``seed`` are still forced per scenario).
        params: Hardware constants.
        validate: Run the structural validator on the compiled program.
    """

    scenario: str
    benchmark: str | None = None
    circuit: Circuit | None = None
    num_aods: int = 1
    seed: int = 0
    enola_config: EnolaConfig | None = None
    powermove_config: PowerMoveConfig | None = None
    params: HardwareParams = DEFAULT_PARAMS
    validate: bool = True

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if (self.benchmark is None) == (self.circuit is None):
            raise JobError(
                "exactly one of benchmark or circuit must be given"
            )
        if self.num_aods < 1:
            raise JobError("need at least one AOD array")

    @property
    def workload_name(self) -> str:
        """Benchmark key or circuit name."""
        if self.benchmark is not None:
            return self.benchmark
        return self.circuit.name

    @property
    def label(self) -> str:
        """Human-readable job identity for progress lines and errors."""
        return (
            f"{self.workload_name}:{self.scenario}"
            f":aods{self.num_aods}:seed{self.seed}"
        )

    def resolve_circuit(self) -> Circuit:
        """The workload circuit (built from the suite when keyed)."""
        if self.circuit is not None:
            return self.circuit
        return get_benchmark(self.benchmark).build(self.seed)


def effective_config(job: CompileJob) -> EnolaConfig | PowerMoveConfig:
    """The compiler configuration the job actually runs with.

    Mirrors the historical ``run_scenarios`` rules: a given Enola config
    is used verbatim, while PowerMove overrides always have
    ``use_storage``, ``num_aods`` and ``seed`` forced per scenario.
    """
    if job.scenario == "enola":
        return job.enola_config or EnolaConfig(
            seed=job.seed, num_aods=job.num_aods
        )
    use_storage = job.scenario == "pm_with_storage"
    if job.powermove_config is not None:
        return replace(
            job.powermove_config,
            use_storage=use_storage,
            num_aods=job.num_aods,
            seed=job.seed,
        )
    return PowerMoveConfig(
        use_storage=use_storage, num_aods=job.num_aods, seed=job.seed
    )


def execute_job_on_circuit(
    job: CompileJob, circuit: Circuit
) -> dict[str, Any]:
    """Compile ``circuit`` per ``job`` and return a picklable artifact.

    The artifact is the unit stored in the content-addressed cache::

        {"program": <serialize.program_to_dict doc>,
         "compile_time": <T_comp seconds>,
         "validated": <bool>}
    """
    config = effective_config(job)
    if job.scenario == "enola":
        compiler = EnolaCompiler(config, job.params)
    else:
        compiler = PowerMoveCompiler(config, job.params)
    compilation = compiler.compile(circuit)
    if job.validate:
        validate_program(
            compilation.program, source_circuit=compilation.native_circuit
        )
    return {
        "program": program_to_dict(compilation.program),
        "compile_time": compilation.compile_time,
        "validated": job.validate,
    }


def execute_job(job: CompileJob) -> dict[str, Any]:
    """Resolve the job's circuit and compile it (process-pool entry)."""
    return execute_job_on_circuit(job, job.resolve_circuit())


__all__ = [
    "CompileJob",
    "JobError",
    "SCENARIOS",
    "effective_config",
    "execute_job",
    "execute_job_on_circuit",
]
