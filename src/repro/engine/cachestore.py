"""Remote and tiered cache backends, and the cache-spec factory.

:mod:`repro.engine.cache` holds the machine-local backends (memory,
disk, null); this module turns caching into a *pluggable subsystem*:

* :class:`RemoteCache` -- a :class:`~repro.engine.cache.ProgramCache`
  speaking a small content-addressed HTTP object protocol (GET / PUT /
  HEAD by cache key, digest-validated payloads), so a fleet of
  ``repro serve`` daemons and sharded ``repro batch`` runners share
  one warm cache instead of each paying cold compiles.  Every remote
  failure degrades **fail-soft**: a transport error reads as a miss
  (or a dropped write), never as a failed job, and a short cooldown
  stops a dead server from adding per-job connect timeouts.
* :class:`RemoteCacheServer` -- the in-repo reference server
  (``repro cache serve``), a stdlib ``ThreadingHTTPServer`` fronting
  any local :class:`ProgramCache` (normally a
  :class:`~repro.engine.cache.DiskCache`).
* :class:`TieredCache` -- memory -> disk -> remote composition with
  read-through fill (a lower-tier hit is copied into every tier above
  it), write-through or write-back store policy, and per-tier
  :class:`~repro.engine.cache.CacheStats`.
* :func:`make_cache` -- the cache-spec factory behind ``--cache``:
  ``"memory"``, ``"disk:PATH[:MAX_BYTES]"``, ``"remote:URL"``,
  ``"tiered:SPEC,SPEC,..."``, ``"null"``.

Protocol (version 1, all payloads canonical JSON)::

    GET  /v1/cache/<key>   200 body=artifact, X-Repro-Digest + ETag
                           404 unknown key
    HEAD /v1/cache/<key>   200 / 404 (no body)
    PUT  /v1/cache/<key>   204; body digest checked against
                           X-Repro-Digest when the client sends it,
                           400 on mismatch or non-JSON
    GET  /v1/stats         200 {"protocol", "entries", "total_bytes",
                           "stats": {hits, misses, ...}}
    POST /v1/prune         200 PruneReport doc; body {"max_bytes": N}
    GET  /metrics          200 Prometheus text exposition of the
                           backing store's counters (see
                           docs/observability.md)

``<key>`` is the 64-hex :func:`repro.engine.cache.job_cache_key`;
anything else is 400.  The digest is SHA-256 over the canonical
(sorted-key, no-whitespace) JSON encoding of the artifact, so
transport corruption or truncation is detected on both directions
while formatting differences are not spuriously rejected.

See ``docs/caching.md`` for the tier model, the full spec grammar and
deployment notes.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import re
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Sequence

from .cache import (
    DiskCache,
    MemoryCache,
    NullCache,
    ProgramCache,
    PruneReport,
)

#: Bump on incompatible wire changes; ``/v1/stats`` reports it.
REMOTE_PROTOCOL_VERSION = 1

#: Header carrying the canonical-JSON SHA-256 of the payload.
DIGEST_HEADER = "X-Repro-Digest"

#: Upper bound on one PUT body (a compiled-program artifact for the
#: largest suite rows is ~1 MB; 64 MiB bounds a malformed peer).
MAX_BODY_BYTES = 64 * 1024 * 1024

_KEY_RE = re.compile(r"[0-9a-f]{64}")

#: Valid :class:`TieredCache` write policies.
WRITE_POLICIES = ("through", "back")


class CacheSpecError(ValueError):
    """Raised on malformed ``--cache`` spec strings."""


class RemoteCacheError(RuntimeError):
    """An *administrative* remote operation (stats, prune) failed.

    The job-path operations (get / put / contains) never raise this --
    they degrade fail-soft to a miss or a dropped write.
    """


def artifact_payload(doc: dict[str, Any]) -> bytes:
    """Canonical wire encoding of an artifact (sorted keys, compact)."""
    return json.dumps(
        doc, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def artifact_digest(payload: bytes) -> str:
    """Hex SHA-256 of a canonical artifact payload."""
    return hashlib.sha256(payload).hexdigest()


# ----------------------------------------------------------------------
# Remote client
# ----------------------------------------------------------------------


class RemoteCache(ProgramCache):
    """Client of a content-addressed HTTP cache server.

    Args:
        url: Server base URL (``http://host:port``); the ``/v1/...``
            endpoints hang off it.
        timeout: Per-request socket timeout in seconds.  Kept small:
            the remote tier is an optimisation, and a slow server must
            not dominate job latency.
        cooldown: After a transport error the remote is considered
            *down* for this many seconds -- lookups miss and writes
            drop immediately instead of each paying a connect timeout.
            The next request after the cooldown probes the server
            again, so a recovered server rejoins automatically.

    Failure semantics (the fail-soft contract): ``get`` returns
    ``None``, ``put`` drops the write, ``contains`` returns ``False``;
    each failure increments ``stats.errors``.  Only the administrative
    calls (:meth:`server_stats`, :meth:`prune`) raise
    :class:`RemoteCacheError`, because "the cache is down" *is* their
    answer.
    """

    kind = "remote"

    def __init__(
        self,
        url: str,
        timeout: float = 5.0,
        cooldown: float = 10.0,
    ) -> None:
        super().__init__()
        parsed = urllib.parse.urlparse(url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise CacheSpecError(
                f"bad remote cache URL {url!r}: expected "
                "http[s]://host:port"
            )
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.cooldown = cooldown
        self._down_until = 0.0

    # -- plumbing ------------------------------------------------------

    def _entry_url(self, key: str) -> str:
        if not _KEY_RE.fullmatch(key):
            raise ValueError(f"bad cache key {key!r}: expected 64 hex")
        return f"{self.url}/v1/cache/{key}"

    def _down(self) -> bool:
        return time.monotonic() < self._down_until

    def _count_error(self) -> None:
        with self._stats_lock:
            self.stats.errors += 1

    def _transport_error(self) -> None:
        self._count_error()
        self._down_until = time.monotonic() + self.cooldown

    def _request(
        self,
        method: str,
        url: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ):
        """One HTTP exchange; the response object, or an ``HTTPError``
        response for non-2xx statuses.  Raises ``OSError`` family on
        transport failure (the callers translate that to fail-soft)."""
        request = urllib.request.Request(
            url, data=body, method=method, headers=headers or {}
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            # An HTTP status is a *server answer*, not a transport
            # failure; hand it back for per-status handling.
            return exc

    # -- job-path operations (fail-soft) -------------------------------

    def _load(self, key: str) -> dict[str, Any] | None:
        if self._down():
            return None
        try:
            response = self._request("GET", self._entry_url(key))
            with response:
                status = response.status
                if status != 200:
                    return None
                payload = response.read(MAX_BODY_BYTES + 1)
                claimed = response.headers.get(DIGEST_HEADER)
        except (OSError, urllib.error.URLError, http.client.HTTPException):
            self._transport_error()
            return None
        if len(payload) > MAX_BODY_BYTES:
            self._count_error()
            return None
        if claimed is not None and claimed != artifact_digest(payload):
            # Corrupted / truncated transfer: reject, recompile.
            self._count_error()
            return None
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._count_error()
            return None
        if not isinstance(doc, dict):
            self._count_error()
            return None
        return doc

    def _store(self, key: str, doc: dict[str, Any]) -> None:
        if self._down():
            return
        payload = artifact_payload(doc)
        headers = {
            "Content-Type": "application/json",
            DIGEST_HEADER: artifact_digest(payload),
        }
        try:
            with self._request(
                "PUT", self._entry_url(key), body=payload, headers=headers
            ) as response:
                if response.status not in (200, 201, 204):
                    self._count_error()
        except (OSError, urllib.error.URLError, http.client.HTTPException):
            self._transport_error()

    def _contains(self, key: str) -> bool:
        if self._down():
            return False
        try:
            with self._request("HEAD", self._entry_url(key)) as response:
                return response.status == 200
        except (OSError, urllib.error.URLError, http.client.HTTPException):
            self._transport_error()
            return False

    # -- administrative operations (raise on failure) ------------------

    def _admin(self, method: str, path: str, body: bytes | None = None):
        try:
            response = self._request(
                method,
                f"{self.url}{path}",
                body=body,
                headers={"Content-Type": "application/json"}
                if body
                else {},
            )
            with response:
                status = response.status
                payload = response.read(MAX_BODY_BYTES)
        except (OSError, urllib.error.URLError, http.client.HTTPException) as exc:
            raise RemoteCacheError(
                f"cannot reach the cache server at {self.url}: {exc}"
            ) from exc
        if status != 200:
            raise RemoteCacheError(
                f"cache server {self.url}{path} answered {status}: "
                f"{payload[:200].decode('utf-8', 'replace')}"
            )
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RemoteCacheError(
                f"cache server {self.url}{path} sent malformed JSON"
            ) from exc

    def server_stats(self) -> dict[str, Any]:
        """The server's ``/v1/stats`` document."""
        return self._admin("GET", "/v1/stats")

    def prune(self, max_bytes: int | None = None) -> PruneReport:
        """Ask the server to evict down to ``max_bytes`` (server-side
        LRU; ``None`` means the server's own configured budget)."""
        body = json.dumps({"max_bytes": max_bytes}).encode("utf-8")
        doc = self._admin("POST", "/v1/prune", body=body)
        return PruneReport(
            removed_entries=doc.get("removed_entries", 0),
            removed_bytes=doc.get("removed_bytes", 0),
            remaining_entries=doc.get("remaining_entries", 0),
            remaining_bytes=doc.get("remaining_bytes", 0),
        )

    def info(self) -> dict[str, Any]:
        base: dict[str, Any] = {"kind": self.kind, "url": self.url}
        try:
            server = self.server_stats()
        except RemoteCacheError as exc:
            base["reachable"] = False
            base["error"] = str(exc)
            return base
        base["reachable"] = True
        base["entries"] = server.get("entries")
        base["total_bytes"] = server.get("total_bytes")
        base["server_stats"] = server.get("stats")
        return base


# ----------------------------------------------------------------------
# Metrics exposition
# ----------------------------------------------------------------------


def cache_stats_registry(store: ProgramCache) -> Any:
    """A :class:`repro.obs.MetricsRegistry` view of a cache's counters.

    One sample per tier (plain caches count as a single tier named
    after their kind): ``repro_cache_requests_total{tier,result}``,
    ``repro_cache_writes_total{tier,kind}``,
    ``repro_cache_evictions_total{tier}`` and
    ``repro_cache_errors_total{tier}``, plus occupancy gauges where the
    backend can report them.  Backs ``GET /metrics`` on the cache
    server and the cache section of the service daemon's exposition.
    """
    from ..obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    doc = store.stats_doc()
    tiers = doc.get("tiers") or [
        {"name": doc["kind"], "kind": doc["kind"], "stats": doc["stats"]}
    ]
    requests = registry.counter(
        "repro_cache_requests_total",
        "Cache lookups by tier and result.",
        ("tier", "result"),
    )
    writes = registry.counter(
        "repro_cache_writes_total",
        "Cache writes by tier and kind (store/fill/revalidate).",
        ("tier", "kind"),
    )
    evictions = registry.counter(
        "repro_cache_evictions_total",
        "Cache entries evicted, by tier.",
        ("tier",),
    )
    errors = registry.counter(
        "repro_cache_errors_total",
        "Remote-transport failures degraded fail-soft, by tier.",
        ("tier",),
    )
    for tier in tiers:
        name = tier["name"]
        stats = tier["stats"]
        requests.set(stats.get("hits", 0), tier=name, result="hit")
        requests.set(stats.get("misses", 0), tier=name, result="miss")
        writes.set(stats.get("stores", 0), tier=name, kind="store")
        writes.set(stats.get("fills", 0), tier=name, kind="fill")
        writes.set(
            stats.get("revalidations", 0), tier=name, kind="revalidate"
        )
        evictions.set(stats.get("evictions", 0), tier=name)
        errors.set(stats.get("errors", 0), tier=name)
    try:
        info = store.info()
    except Exception:
        info = {}
    if info.get("entries") is not None:
        registry.gauge(
            "repro_cache_entries", "Entries in the backing store."
        ).set(info["entries"])
    if info.get("total_bytes") is not None:
        registry.gauge(
            "repro_cache_size_bytes", "Bytes in the backing store."
        ).set(info["total_bytes"])
    return registry


# ----------------------------------------------------------------------
# Reference server
# ----------------------------------------------------------------------


class _CacheRequestHandler(BaseHTTPRequestHandler):
    """One HTTP exchange against the server's backing store."""

    server_version = f"repro-cache/{REMOTE_PROTOCOL_VERSION}"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer instance carries the backing store and a
    # quiet flag (set by RemoteCacheServer below).
    def _store(self) -> ProgramCache:
        return self.server.cache_store  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(self, status: int, doc: dict[str, Any]) -> None:
        payload = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if self.close_connection:
            # Error paths that answered without draining the request
            # body set close_connection; advertise it so keep-alive
            # clients do not try to reuse the desynchronized socket.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _entry_key(self) -> str | None:
        """The cache key of a ``/v1/cache/<key>`` path, else ``None``."""
        prefix = "/v1/cache/"
        path = urllib.parse.urlparse(self.path).path
        if not path.startswith(prefix):
            return None
        key = path[len(prefix):]
        return key if _KEY_RE.fullmatch(key) else None

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urllib.parse.urlparse(self.path).path
        if path == "/metrics":
            from ..obs.metrics import PROMETHEUS_CONTENT_TYPE

            payload = (
                cache_stats_registry(self._store())
                .render_prometheus()
                .encode("utf-8")
            )
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        if path == "/v1/stats":
            store = self._store()
            info = store.info()
            self._send_json(
                200,
                {
                    "protocol": REMOTE_PROTOCOL_VERSION,
                    "entries": info.get("entries"),
                    "total_bytes": info.get("total_bytes"),
                    "stats": asdict(store.stats),
                },
            )
            return
        key = self._entry_key()
        if key is None:
            self._send_error(400, "expected /v1/cache/<64-hex-key>")
            return
        doc = self._store().get(key)
        if doc is None:
            self._send_error(404, "unknown cache key")
            return
        payload = artifact_payload(doc)
        digest = artifact_digest(payload)
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.send_header(DIGEST_HEADER, digest)
        self.send_header("ETag", f'"{digest}"')
        self.end_headers()
        self.wfile.write(payload)

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        key = self._entry_key()
        if key is None:
            self.send_response(400)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        status = 200 if self._store().contains(key) else 404
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        # Error paths below answer without draining the request body;
        # on a keep-alive (HTTP/1.1) connection the unread bytes would
        # otherwise be parsed as the next request line.
        key = self._entry_key()
        if key is None:
            self.close_connection = True
            self._send_error(400, "expected /v1/cache/<64-hex-key>")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self.close_connection = True
            self._send_error(400, "bad Content-Length")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error(413, "payload missing or over the bound")
            return
        payload = self.rfile.read(length)
        claimed = self.headers.get(DIGEST_HEADER)
        if claimed is not None and claimed != artifact_digest(payload):
            self._send_error(
                400, "payload digest does not match " + DIGEST_HEADER
            )
            return
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._send_error(400, "payload is not valid JSON")
            return
        if not isinstance(doc, dict):
            self._send_error(400, "payload must be a JSON object")
            return
        self._store().put(key, doc)
        self.send_response(204)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urllib.parse.urlparse(self.path).path
        if path != "/v1/prune":
            # Body left unread: drop the connection (see do_PUT).
            self.close_connection = True
            self._send_error(400, "unknown endpoint")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = (
                json.loads(self.rfile.read(length).decode("utf-8"))
                if length
                else {}
            )
        except (ValueError, UnicodeDecodeError):
            self._send_error(400, "bad prune request body")
            return
        max_bytes = body.get("max_bytes") if isinstance(body, dict) else None
        if max_bytes is not None and (
            isinstance(max_bytes, bool) or not isinstance(max_bytes, int)
        ):
            self._send_error(400, "'max_bytes' must be an integer")
            return
        report = self._store().prune(max_bytes)
        self._send_json(
            200,
            {
                "removed_entries": report.removed_entries,
                "removed_bytes": report.removed_bytes,
                "remaining_entries": report.remaining_entries,
                "remaining_bytes": report.remaining_bytes,
            },
        )


class RemoteCacheServer:
    """The reference cache server: HTTP front of a local store.

    Args:
        store: Backing :class:`ProgramCache` (normally a
            :class:`DiskCache`, so entries persist and ``max_bytes``
            LRU eviction applies server-side).
        host: Bind host (loopback by default; the protocol carries no
            auth, treat it like any local build service).
        port: Bind port; ``0`` picks an ephemeral one (read
            :attr:`url` after construction).

    Use :meth:`start` / :meth:`stop` for a background thread (tests,
    embedding) or :meth:`serve_forever` to block (the
    ``repro cache serve`` CLI).
    """

    def __init__(
        self,
        store: ProgramCache,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        self.store = store
        self._httpd = ThreadingHTTPServer(
            (host, port), _CacheRequestHandler
        )
        self._httpd.daemon_threads = True
        self._httpd.cache_store = store  # type: ignore[attr-defined]
        self._httpd.quiet = quiet  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL clients connect to (``http://host:port``)."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RemoteCacheServer":
        """Serve from a daemon thread; returns immediately."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-cache-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`."""
        self._httpd.serve_forever(poll_interval=0.05)

    def stop(self) -> None:
        """Stop serving and close the listening socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ----------------------------------------------------------------------
# Tiered composition
# ----------------------------------------------------------------------


class TieredCache(ProgramCache):
    """Read-through / write-through (or write-back) tier composition.

    Tiers are ordered fastest-first (memory -> disk -> remote).  A
    lookup walks down until a tier hits, then **fills** every tier
    above it with the found artifact (counted as ``fills`` in the
    upper tiers' stats, so fills never masquerade as fresh work).
    :attr:`last_hit_tier` names the serving tier after every hit.

    Write policy:

    * ``"through"`` (default) -- every ``put`` lands in every tier
      synchronously; the remote tier is warm the moment a job
      compiles, which is what a fleet sharing one server wants.
    * ``"back"`` -- puts land in every tier *except the last*; the
      last (slowest, typically remote) tier receives the deferred
      keys in one batch on :meth:`flush`.  ``repro batch`` flushes at
      the end of a run and the service daemon flushes periodically,
      so a flaky uplink is paid once per run, not once per job.

    The composition itself is fail-soft by construction: a down remote
    tier simply misses (see :class:`RemoteCache`), and the walk
    continues to serve from -- and write to -- the healthy tiers.
    """

    kind = "tiered"

    def __init__(
        self,
        tiers: Sequence[ProgramCache],
        write_policy: str = "through",
    ) -> None:
        super().__init__()
        if not tiers:
            raise CacheSpecError("a tiered cache needs at least one tier")
        if any(isinstance(tier, TieredCache) for tier in tiers):
            raise CacheSpecError("tiered caches do not nest")
        if write_policy not in WRITE_POLICIES:
            raise CacheSpecError(
                f"write policy must be one of {WRITE_POLICIES}, "
                f"got {write_policy!r}"
            )
        self.tiers = list(tiers)
        self.write_policy = write_policy
        self.tier_names = _tier_names(self.tiers)
        # Keys written but not yet pushed to the last tier
        # (write-back policy only).
        self._pending: set[str] = set()
        self._pending_lock = threading.Lock()

    # -- lookups -------------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        profile: list[dict[str, Any]] = []
        found: dict[str, Any] | None = None
        hit_position = -1
        for position, tier in enumerate(self.tiers):
            start = time.perf_counter()
            doc = tier.get(key)
            profile.append(
                {
                    "tier": self.tier_names[position],
                    "duration_s": time.perf_counter() - start,
                    "hit": doc is not None,
                }
            )
            if doc is not None:
                found = doc
                hit_position = position
                break
        if found is not None:
            for upper in self.tiers[:hit_position]:
                upper.put(key, found, kind="fill")
            with self._stats_lock:
                self.stats.hits += 1
            self.last_hit_tier = self.tier_names[hit_position]
        else:
            with self._stats_lock:
                self.stats.misses += 1
            self.last_hit_tier = None
        self._tls.lookup_profile = profile
        return found

    def put(
        self, key: str, doc: dict[str, Any], *, kind: str = "store"
    ) -> None:
        targets = self.tiers
        if self.write_policy == "back" and len(self.tiers) > 1:
            targets = self.tiers[:-1]
            with self._pending_lock:
                self._pending.add(key)
        for tier in targets:
            tier.put(key, doc, kind=kind)
        with self._stats_lock:
            if kind == "fill":
                self.stats.fills += 1
            elif kind == "revalidate":
                self.stats.revalidations += 1
            else:
                self.stats.stores += 1

    def contains(self, key: str) -> bool:
        return any(tier.contains(key) for tier in self.tiers)

    # -- write-back flush ----------------------------------------------

    def flush(self) -> int:
        """Push write-back-deferred keys into the last tier.

        Reads each pending key back from the upper tiers (no second
        in-memory copy is kept) and stores it downstream; keys whose
        artifact was evicted from every upper tier in the meantime are
        silently skipped.  Keys the backing tier could not accept -- a
        remote tier down or erroring mid-flush -- stay pending and are
        retried by the next flush, so an uplink outage delays the
        upload instead of silently losing it.  Returns the number of
        entries actually pushed.

        The whole push batch runs under the stats lock shared with
        :meth:`stats_doc`, so a concurrent stats snapshot (the service
        ``ping`` / ``metrics`` path) observes a flush either entirely
        or not at all -- never a torn half-applied batch.
        """
        if self.write_policy != "back" or len(self.tiers) < 2:
            return 0
        with self._pending_lock:
            pending = sorted(self._pending)
            self._pending.clear()
        last = self.tiers[-1]
        flushed = 0
        unflushed: list[str] = []
        with self._stats_lock:
            for position, key in enumerate(pending):
                if isinstance(last, RemoteCache) and last._down():
                    # Inside the failure cooldown every store would be
                    # dropped silently; keep the rest for the next flush.
                    unflushed.extend(pending[position:])
                    break
                doc = None
                for tier in self.tiers[:-1]:
                    doc = tier._load(key)
                    if doc is not None:
                        break
                if doc is None:
                    continue
                errors_before = last.stats.errors
                last.put(key, doc, kind="store")
                if last.stats.errors > errors_before:
                    unflushed.append(key)  # transport failure: retry later
                    continue
                flushed += 1
        if unflushed:
            with self._pending_lock:
                self._pending.update(unflushed)
        return flushed

    # -- administration ------------------------------------------------

    def prune(self, max_bytes: int | None = None) -> PruneReport:
        """Prune every tier (skipping unreachable remote tiers)."""
        removed_entries = 0
        removed_bytes = 0
        remaining_entries = 0
        remaining_bytes = 0
        for tier in self.tiers:
            try:
                report = tier.prune(max_bytes)
            except RemoteCacheError:
                continue
            removed_entries += report.removed_entries
            removed_bytes += report.removed_bytes
            remaining_entries += report.remaining_entries
            remaining_bytes += report.remaining_bytes
        return PruneReport(
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            remaining_entries=remaining_entries,
            remaining_bytes=remaining_bytes,
        )

    def info(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "write_policy": self.write_policy,
            "tiers": [
                {"name": name, **tier.info()}
                for name, tier in zip(self.tier_names, self.tiers)
            ],
        }

    def stats_doc(self) -> dict[str, Any]:
        # Snapshot under the stats lock flush() holds for its whole
        # batch: a reader (service ping / metrics) never sees some
        # tiers before a flush and some after.
        with self._stats_lock:
            return {
                "kind": self.kind,
                "stats": asdict(self.stats),
                "tiers": [
                    {
                        "name": name,
                        "kind": tier.kind,
                        "stats": tier.stats_doc()["stats"],
                    }
                    for name, tier in zip(self.tier_names, self.tiers)
                ],
            }


def _tier_names(tiers: Sequence[ProgramCache]) -> list[str]:
    """Unique display names per tier (``disk``, ``disk2``, ...)."""
    counts: dict[str, int] = {}
    names = []
    for tier in tiers:
        counts[tier.kind] = counts.get(tier.kind, 0) + 1
        count = counts[tier.kind]
        names.append(tier.kind if count == 1 else f"{tier.kind}{count}")
    return names


# ----------------------------------------------------------------------
# Spec factory
# ----------------------------------------------------------------------


def parse_cache_spec(spec: str) -> dict[str, Any]:
    """Parse a cache-spec string into a structured description.

    Grammar (see ``docs/caching.md``)::

        null | none
        memory
        disk:PATH[:MAX_BYTES]
        remote:URL
        tiered[+back]:SPEC,SPEC,...

    Returns a ``{"kind": ...}`` dict (with ``path`` / ``max_bytes`` /
    ``url`` / ``tiers`` / ``write_policy`` as applicable).  Raises
    :class:`CacheSpecError` on anything malformed.
    """
    spec = spec.strip()
    if not spec:
        raise CacheSpecError("empty cache spec")
    head, _, rest = spec.partition(":")
    head = head.lower()
    if head in ("null", "none"):
        if rest:
            raise CacheSpecError(f"{head!r} takes no arguments")
        return {"kind": "null"}
    if head == "memory":
        if rest:
            raise CacheSpecError("'memory' takes no arguments")
        return {"kind": "memory"}
    if head == "disk":
        if not rest:
            raise CacheSpecError("'disk' needs a path: disk:PATH")
        path, max_bytes = rest, None
        prefix, _, tail = rest.rpartition(":")
        if prefix and re.fullmatch(r"\d+", tail):
            path, max_bytes = prefix, int(tail)
            if max_bytes <= 0:
                raise CacheSpecError("disk max_bytes must be positive")
        return {"kind": "disk", "path": path, "max_bytes": max_bytes}
    if head == "remote":
        if not rest:
            raise CacheSpecError("'remote' needs a URL: remote:http://...")
        parsed = urllib.parse.urlparse(rest)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise CacheSpecError(
                f"bad remote cache URL {rest!r}: expected http[s]://host:port"
            )
        return {"kind": "remote", "url": rest}
    if head in ("tiered", "tiered+back"):
        if not rest:
            raise CacheSpecError(
                "'tiered' needs member specs: tiered:disk:PATH,remote:URL"
            )
        members = [part for part in rest.split(",") if part.strip()]
        if not members:
            raise CacheSpecError("'tiered' needs at least one member spec")
        tiers = []
        for member in members:
            parsed_member = parse_cache_spec(member)
            if parsed_member["kind"] == "tiered":
                raise CacheSpecError("tiered caches do not nest")
            tiers.append(parsed_member)
        return {
            "kind": "tiered",
            "tiers": tiers,
            "write_policy": "back" if head.endswith("+back") else "through",
        }
    raise CacheSpecError(
        f"unknown cache spec {spec!r}: expected null, memory, "
        "disk:PATH[:MAX_BYTES], remote:URL or tiered:SPEC,SPEC,..."
    )


def make_cache(spec: str | ProgramCache | None) -> ProgramCache:
    """Resolve a cache spec (or pass a ready cache through).

    ``None`` resolves to :class:`NullCache` -- the engine's historical
    "no cache given" behaviour.
    """
    if spec is None:
        return NullCache()
    if isinstance(spec, ProgramCache):
        return spec
    parsed = parse_cache_spec(spec)
    return _build(parsed)


def _build(parsed: dict[str, Any]) -> ProgramCache:
    kind = parsed["kind"]
    if kind == "null":
        return NullCache()
    if kind == "memory":
        return MemoryCache()
    if kind == "disk":
        return DiskCache(parsed["path"], max_bytes=parsed["max_bytes"])
    if kind == "remote":
        return RemoteCache(parsed["url"])
    if kind == "tiered":
        return TieredCache(
            [_build(member) for member in parsed["tiers"]],
            write_policy=parsed["write_policy"],
        )
    raise CacheSpecError(f"unknown cache kind {kind!r}")  # pragma: no cover


def describe_cache(cache: ProgramCache) -> str:
    """One-line human description of a cache (for logs and CLIs)."""
    if isinstance(cache, TieredCache):
        inner = " -> ".join(
            describe_cache(tier) for tier in cache.tiers
        )
        policy = (
            "" if cache.write_policy == "through"
            else f", write-{cache.write_policy}"
        )
        return f"tiered({inner}{policy})"
    if isinstance(cache, DiskCache):
        budget = (
            "" if cache.max_bytes is None else f", {cache.max_bytes}B"
        )
        return f"disk({cache.directory}{budget})"
    if isinstance(cache, RemoteCache):
        return f"remote({cache.url})"
    return cache.kind


__all__ = [
    "DIGEST_HEADER",
    "MAX_BODY_BYTES",
    "REMOTE_PROTOCOL_VERSION",
    "WRITE_POLICIES",
    "CacheSpecError",
    "RemoteCache",
    "RemoteCacheError",
    "RemoteCacheServer",
    "TieredCache",
    "artifact_digest",
    "artifact_payload",
    "cache_stats_registry",
    "describe_cache",
    "make_cache",
    "parse_cache_spec",
]
