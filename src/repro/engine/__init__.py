"""Parallel batch-compilation engine with content-addressed caching.

The production-facing entry point for compiling many (circuit, config)
pairs: describe the work as :class:`CompileJob` batches, hand them to a
:class:`CompilationEngine` and get deterministic, cacheable,
process-pool-parallel results.  See ``docs/engine.md`` for the
architecture sketch and the cache-key definition.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    DiskCache,
    MemoryCache,
    NullCache,
    ProgramCache,
    PruneReport,
    job_cache_key,
)
from .engine import (
    CompilationEngine,
    EngineError,
    JobResult,
    ProgressEvent,
)
from .jobs import (
    SCENARIO_BACKENDS,
    SCENARIOS,
    CompileJob,
    JobError,
    effective_config,
    execute_job,
    job_compiler,
)
from .manifest import ManifestError, load_manifest, parse_manifest

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "CompilationEngine",
    "CompileJob",
    "DiskCache",
    "EngineError",
    "JobError",
    "JobResult",
    "ManifestError",
    "MemoryCache",
    "NullCache",
    "ProgramCache",
    "ProgressEvent",
    "PruneReport",
    "SCENARIOS",
    "SCENARIO_BACKENDS",
    "effective_config",
    "execute_job",
    "job_cache_key",
    "job_compiler",
    "load_manifest",
    "parse_manifest",
]
