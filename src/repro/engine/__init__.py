"""Parallel batch-compilation engine with content-addressed caching.

The production-facing entry point for compiling many (circuit, config)
pairs: describe the work as :class:`CompileJob` batches, hand them to a
:class:`CompilationEngine` and get deterministic, cacheable,
process-pool-parallel results -- as an ordered list (:meth:`run`) or a
completion-order stream (:meth:`stream`), fail-fast or fail-soft
(``on_error``), whole or in deterministic shards (:class:`ShardPlan`)
merged back with :func:`merge_result_docs`.  See ``docs/engine.md`` for
the architecture sketch and the cache-key definition.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    DiskCache,
    MemoryCache,
    NullCache,
    ProgramCache,
    PruneReport,
    job_cache_key,
)
from .cachestore import (
    REMOTE_PROTOCOL_VERSION,
    CacheSpecError,
    RemoteCache,
    RemoteCacheError,
    RemoteCacheServer,
    TieredCache,
    describe_cache,
    make_cache,
    parse_cache_spec,
)
from .engine import (
    ERROR_POLICIES,
    CompilationEngine,
    EngineError,
    JobFailure,
    JobResult,
    ProgressEvent,
)
from .jobs import (
    AUTO_BACKEND,
    SCENARIO_BACKENDS,
    SCENARIOS,
    CompileJob,
    JobError,
    effective_config,
    execute_job,
    job_compiler,
    job_from_doc,
    job_to_doc,
    resolve_backend,
)
from .passmemo import (
    PASS_MEMO_SCHEMA_VERSION,
    PassMemo,
    pass_chain_keys,
)
from .manifest import (
    ManifestError,
    load_manifest,
    manifest_cache_spec,
    manifest_digest,
    parse_manifest,
    read_manifest,
)
from .shard import (
    BATCH_RESULTS_FORMAT,
    BATCH_RESULTS_VERSION,
    ShardError,
    ShardPlan,
    docs_equal_modulo_timing,
    job_record,
    merge_result_docs,
    results_doc,
    results_doc_from_records,
    strip_timing,
)

__all__ = [
    "AUTO_BACKEND",
    "BATCH_RESULTS_FORMAT",
    "BATCH_RESULTS_VERSION",
    "CACHE_SCHEMA_VERSION",
    "ERROR_POLICIES",
    "REMOTE_PROTOCOL_VERSION",
    "CacheSpecError",
    "CacheStats",
    "CompilationEngine",
    "CompileJob",
    "DiskCache",
    "EngineError",
    "JobError",
    "JobFailure",
    "JobResult",
    "ManifestError",
    "MemoryCache",
    "NullCache",
    "PASS_MEMO_SCHEMA_VERSION",
    "PassMemo",
    "ProgramCache",
    "ProgressEvent",
    "PruneReport",
    "RemoteCache",
    "RemoteCacheError",
    "RemoteCacheServer",
    "SCENARIOS",
    "SCENARIO_BACKENDS",
    "ShardError",
    "ShardPlan",
    "TieredCache",
    "describe_cache",
    "docs_equal_modulo_timing",
    "effective_config",
    "execute_job",
    "job_cache_key",
    "job_compiler",
    "job_from_doc",
    "job_record",
    "job_to_doc",
    "load_manifest",
    "make_cache",
    "manifest_cache_spec",
    "manifest_digest",
    "merge_result_docs",
    "pass_chain_keys",
    "parse_cache_spec",
    "parse_manifest",
    "read_manifest",
    "resolve_backend",
    "results_doc",
    "results_doc_from_records",
    "strip_timing",
]
