"""Deterministic batch sharding and shard-result merging.

A :class:`ShardPlan` splits one job manifest into ``N`` disjoint slices
so independent machines (or CI lanes) each compile ``1/N`` of the batch
and a final :func:`merge_result_docs` step reassembles the per-shard
result files into the canonical batch output -- byte-identical (modulo
wall-clock timing fields) to an unsharded run of the same manifest.

The partition is **round-robin by manifest index**: shard ``i/N`` takes
every job whose zero-based manifest position ``p`` satisfies
``p % N == i - 1``.  This is deterministic (the manifest fully defines
every shard), independent of job content, and interleaves expensive
neighbouring jobs (a manifest is typically sorted by benchmark size)
across shards instead of handing one shard all the big ones.

Every result document -- sharded or not -- carries the manifest's
content digest and total job count, and every record carries its global
manifest ``index``; the merge refuses documents that disagree on the
manifest, overlap, or leave indices uncovered.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Sequence, TypeVar

from .engine import JobResult

#: Schema identity of the batch-results document (shared by the
#: ``repro batch`` / ``repro merge`` CLIs and the test-suite).
BATCH_RESULTS_FORMAT = "repro-batch-results"
#: v2: records gained ``index``/``status``/``error``, documents gained
#: ``manifest_digest``/``total_jobs``/``shard``/``on_error``/
#: ``num_failed``.
BATCH_RESULTS_VERSION = 2

#: Top-level document fields that depend on the run environment (wall
#: clock, cache occupancy, per-tier cache counters) rather than the
#: manifest.
_DOC_VOLATILE_FIELDS = (
    "wall_time_s",
    "cache_hits",
    "cache_misses",
    "cache_stats",
)
#: Per-record fields that depend on the run environment (retry
#: bookkeeping is environmental too: transient failures happen on a
#: machine, not in a manifest).  ``trace`` is the per-job span document
#: the compilation service attaches (queue wait, attempts, per-pass
#: offsets) -- pure wall-clock measurement, never manifest content.
_RECORD_VOLATILE_FIELDS = (
    "compile_time_s",
    "cache_hit",
    "attempts",
    "retry_wait_s",
    "trace",
)

_ItemT = TypeVar("_ItemT")


class ShardError(ValueError):
    """Raised on malformed shard specs or unmergeable result files."""


@dataclass(frozen=True)
class ShardPlan:
    """One slice of an ``N``-way deterministic batch partition.

    Attributes:
        index: 1-based shard number (``1 <= index <= count``).
        count: Total number of shards.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ShardError("shard count must be at least 1")
        if not 1 <= self.index <= self.count:
            raise ShardError(
                f"shard index {self.index} outside 1..{self.count}"
            )

    @classmethod
    def parse(cls, spec: str) -> "ShardPlan":
        """Parse an ``"I/N"`` spec (as given to ``repro batch --shard``)."""
        match = re.fullmatch(r"(\d+)/(\d+)", spec.strip())
        if not match:
            raise ShardError(
                f"bad shard spec {spec!r}: expected I/N, e.g. 2/4"
            )
        return cls(index=int(match.group(1)), count=int(match.group(2)))

    @property
    def spec(self) -> str:
        """The ``"I/N"`` rendering of this plan."""
        return f"{self.index}/{self.count}"

    def select(
        self, items: Sequence[_ItemT]
    ) -> list[tuple[int, _ItemT]]:
        """This shard's ``(global_index, item)`` pairs, in order."""
        return [
            (position, item)
            for position, item in enumerate(items)
            if position % self.count == self.index - 1
        ]


# ----------------------------------------------------------------------
# Result documents
# ----------------------------------------------------------------------


def job_record(result: JobResult, index: int) -> dict[str, Any]:
    """One results-document record (also the ``--stream`` NDJSON line).

    Args:
        result: The engine outcome.
        index: *Global* manifest index of the job (the engine-local
            ``result.index`` differs under sharding).
    """
    record: dict[str, Any] = {
        "index": index,
        "status": "ok" if result.ok else "error",
        **result.job.identity(),
        "cache_key": result.key,
        "cache_hit": result.cache_hit,
        "compile_time_s": result.compile_time,
    }
    if result.stats.get("auto_backend"):
        record["auto_backend"] = result.stats["auto_backend"]
    if result.attempts > 1:
        # Retry bookkeeping (schema v2 compatible: absent on the
        # common single-attempt path, and strip_timing drops it).
        record["attempts"] = result.attempts
        record["retry_wait_s"] = result.retry_wait_s
    if result.ok:
        record.update(
            {
                "fidelity": result.fidelity.total,
                "execution_time_us": result.fidelity.execution_time_us,
                "num_stages": result.program.num_stages,
                "num_coll_moves": result.program.num_coll_moves,
                "num_transfers": result.program.num_transfers,
            }
        )
    else:
        record["error"] = {
            "type": result.error.error_type,
            "message": result.error.message,
        }
    return record


def results_doc(
    results: Iterable[JobResult],
    *,
    manifest_digest: str,
    total_jobs: int,
    wall_time_s: float,
    on_error: str,
    shard: ShardPlan | None = None,
    global_indices: Sequence[int] | None = None,
    cache_stats: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the canonical batch-results document.

    Args:
        results: Engine outcomes, in any order (records are sorted by
            global index).
        manifest_digest: :func:`repro.engine.manifest.manifest_digest`
            of the source manifest.
        total_jobs: Job count of the *full* manifest (equals the number
            of results only for unsharded runs).
        wall_time_s: Wall-clock duration of this run.
        on_error: The failure policy the run used.
        shard: The shard this run covered, or ``None`` for a full run.
        global_indices: Engine-local index -> global manifest index
            (identity when omitted).
        cache_stats: Per-tier cache counters of the run
            (:meth:`repro.engine.cache.ProgramCache.stats_doc`);
            attached as the volatile ``cache_stats`` document field
            (dropped by :func:`strip_timing`).
    """
    records = []
    for result in results:
        index = (
            result.index
            if global_indices is None
            else global_indices[result.index]
        )
        records.append(job_record(result, index))
    return results_doc_from_records(
        records,
        manifest_digest=manifest_digest,
        total_jobs=total_jobs,
        wall_time_s=wall_time_s,
        on_error=on_error,
        shard=shard,
        cache_stats=cache_stats,
    )


def results_doc_from_records(
    records: Iterable[dict[str, Any]],
    *,
    manifest_digest: str,
    total_jobs: int,
    wall_time_s: float,
    on_error: str,
    shard: ShardPlan | None = None,
    cache_stats: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a batch-results document from :func:`job_record` dicts.

    The record-level twin of :func:`results_doc`, for callers that hold
    already-serialized records rather than live :class:`JobResult`
    objects -- the compilation service persists queue outcomes as
    records and reassembles its results documents through here, so the
    service and ``repro batch`` can never drift on schema.
    """
    ordered = sorted(records, key=lambda record: record["index"])
    hits = sum(1 for record in ordered if record["cache_hit"])
    failed = sum(1 for record in ordered if record["status"] == "error")
    doc = {
        "format": BATCH_RESULTS_FORMAT,
        "version": BATCH_RESULTS_VERSION,
        "manifest_digest": manifest_digest,
        "total_jobs": total_jobs,
        "shard": (
            None
            if shard is None
            else {"index": shard.index, "count": shard.count}
        ),
        "on_error": on_error,
        "num_jobs": len(ordered),
        "num_failed": failed,
        "cache_hits": hits,
        "cache_misses": len(ordered) - hits,
        "wall_time_s": wall_time_s,
        "results": ordered,
    }
    if cache_stats is not None:
        doc["cache_stats"] = cache_stats
    return doc


def merge_result_docs(docs: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Reassemble per-shard result documents into the full-batch one.

    The inputs must all describe the same manifest (equal
    ``manifest_digest`` and ``total_jobs``), must not overlap, and must
    together cover every manifest index; any violation raises
    :class:`ShardError`.  ``wall_time_s`` of the merged document is the
    *sum* of the shard durations (total compute, not wall-clock of the
    slowest machine).
    """
    if not docs:
        raise ShardError("nothing to merge: no result documents given")
    for position, doc in enumerate(docs):
        where = f"document {position}"
        if doc.get("format") != BATCH_RESULTS_FORMAT:
            raise ShardError(f"{where}: not a batch-results document")
        if doc.get("version") != BATCH_RESULTS_VERSION:
            raise ShardError(
                f"{where}: results version {doc.get('version')!r} != "
                f"{BATCH_RESULTS_VERSION} (re-run the batch)"
            )
    first = docs[0]
    digest = first.get("manifest_digest")
    total = first.get("total_jobs")
    for position, doc in enumerate(docs[1:], start=1):
        if doc.get("manifest_digest") != digest:
            raise ShardError(
                f"document {position}: manifest digest mismatch "
                f"({doc.get('manifest_digest')!r} != {digest!r}); "
                "shards must come from the same manifest"
            )
        if doc.get("total_jobs") != total:
            raise ShardError(
                f"document {position}: total_jobs mismatch "
                f"({doc.get('total_jobs')} != {total})"
            )
    records: dict[int, dict[str, Any]] = {}
    for position, doc in enumerate(docs):
        for record in doc.get("results", []):
            index = record["index"]
            if index in records:
                raise ShardError(
                    f"document {position}: duplicate job index {index} "
                    "(overlapping shards?)"
                )
            records[index] = record
    missing = sorted(set(range(total)) - set(records))
    if missing:
        preview = ", ".join(str(index) for index in missing[:8])
        raise ShardError(
            f"merge incomplete: {len(missing)} of {total} job indices "
            f"missing (first: {preview}); supply every shard"
        )
    merged_records = [records[index] for index in sorted(records)]
    failed = sum(
        1 for record in merged_records if record["status"] == "error"
    )
    hits = sum(1 for record in merged_records if record["cache_hit"])
    return {
        "format": BATCH_RESULTS_FORMAT,
        "version": BATCH_RESULTS_VERSION,
        "manifest_digest": digest,
        "total_jobs": total,
        "shard": None,
        "on_error": first.get("on_error", "raise"),
        "num_jobs": len(merged_records),
        "num_failed": failed,
        "cache_hits": hits,
        "cache_misses": len(merged_records) - hits,
        "wall_time_s": sum(doc.get("wall_time_s", 0.0) for doc in docs),
        "results": merged_records,
    }


def strip_timing(doc: dict[str, Any]) -> dict[str, Any]:
    """Copy of a results document with run-environment fields removed.

    Drops the wall-clock measurements (``wall_time_s``,
    ``compile_time_s``) *and* the cache-occupancy fields (``cache_hit``
    per record, the hit/miss totals) -- both reflect the machine a run
    happened on (warm shared caches, reruns), not the manifest.  What
    remains is fully deterministic for a given manifest, so two runs of
    the same manifest -- sharded, streamed, parallel, serial, cold or
    warm -- compare equal exactly when they compiled the same programs.
    """
    out = {
        key: value
        for key, value in doc.items()
        if key not in _DOC_VOLATILE_FIELDS
    }
    out["results"] = [
        {
            key: value
            for key, value in record.items()
            if key not in _RECORD_VOLATILE_FIELDS
        }
        for record in doc.get("results", [])
    ]
    return out


def docs_equal_modulo_timing(
    left: dict[str, Any], right: dict[str, Any]
) -> bool:
    """True when two result documents agree on everything but the
    run-environment fields :func:`strip_timing` removes."""
    return strip_timing(left) == strip_timing(right)


__all__ = [
    "BATCH_RESULTS_FORMAT",
    "BATCH_RESULTS_VERSION",
    "ShardError",
    "ShardPlan",
    "docs_equal_modulo_timing",
    "job_record",
    "merge_result_docs",
    "results_doc",
    "results_doc_from_records",
    "strip_timing",
]
