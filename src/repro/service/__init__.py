"""Long-running compilation service: daemon, queue, protocol, client.

The resident counterpart of ``repro batch``: a ``repro serve`` daemon
(:class:`ServiceServer`) keeps the engine, its process state and a
shared program cache warm across many submissions, accepts job
manifests over a local TCP or Unix socket (newline-delimited JSON,
:mod:`repro.service.protocol`), persists them in a crash-safe on-disk
queue (:class:`JobQueue` -- priorities, worker leases, dedup by cache
key, restart recovery) and executes them on leased worker threads
wrapping :class:`repro.engine.CompilationEngine` with per-job
retry-with-backoff.  :class:`ServiceClient` (and the ``repro submit``
/ ``repro status`` / ``repro results --follow`` commands) submit work
and stream back completion-order result records schema-identical to
``repro batch --stream``.

The front end is asyncio (:mod:`repro.service.aio`): one event-loop
thread holds every client connection as a coroutine, so thousands of
idle clients cost file descriptors, not threads.  On top of single
daemons sits the fleet layer: ``repro coordinate`` runs a
:class:`Coordinator` that routes submissions across N daemons by
rendezvous-hashing their cache keys (warm-cache affinity), spills on
load, steals work from stragglers and survives daemon loss;
``repro loadgen`` (:func:`run_loadgen`) measures the p50/p95/p99
submit-to-result latency of either topology.  See ``docs/service.md``.
"""

from .aio import AsyncServerCore
from .client import ServiceClient, ServiceError
from .coordinator import Coordinator, plan_placement, rendezvous_rank
from .loadgen import parse_prometheus_text, run_loadgen
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    format_address,
    parse_address,
)
from .queue import (
    DEFAULT_MAX_REQUEUES,
    JOB_RECORD_FORMAT,
    JOB_STATES,
    QUEUE_SCHEMA_VERSION,
    SUBMISSION_FORMAT,
    JobQueue,
    QueueError,
    queue_wait_s,
)
from .server import ServiceServer

__all__ = [
    "AsyncServerCore",
    "Coordinator",
    "DEFAULT_MAX_REQUEUES",
    "JOB_RECORD_FORMAT",
    "JOB_STATES",
    "JobQueue",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUEUE_SCHEMA_VERSION",
    "QueueError",
    "SUBMISSION_FORMAT",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "format_address",
    "parse_address",
    "parse_prometheus_text",
    "plan_placement",
    "queue_wait_s",
    "rendezvous_rank",
    "run_loadgen",
]
