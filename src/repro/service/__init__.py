"""Long-running compilation service: daemon, queue, protocol, client.

The resident counterpart of ``repro batch``: a ``repro serve`` daemon
(:class:`ServiceServer`) keeps the engine, its process state and a
shared program cache warm across many submissions, accepts job
manifests over a local TCP or Unix socket (newline-delimited JSON,
:mod:`repro.service.protocol`), persists them in a crash-safe on-disk
queue (:class:`JobQueue` -- priorities, worker leases, dedup by cache
key, restart recovery) and executes them on leased worker threads
wrapping :class:`repro.engine.CompilationEngine` with per-job
retry-with-backoff.  :class:`ServiceClient` (and the ``repro submit``
/ ``repro status`` / ``repro results --follow`` commands) submit work
and stream back completion-order result records schema-identical to
``repro batch --stream``.

The front end is asyncio (:mod:`repro.service.aio`): one event-loop
thread holds every client connection as a coroutine, so thousands of
idle clients cost file descriptors, not threads.  On top of single
daemons sits the fleet layer: ``repro coordinate`` runs a
:class:`Coordinator` that routes submissions across N daemons by
rendezvous-hashing their cache keys (warm-cache affinity), spills on
load, steals work from stragglers and survives daemon loss;
``repro loadgen`` (:func:`run_loadgen`) measures the p50/p95/p99
submit-to-result latency of either topology.  See ``docs/service.md``.

Multi-tenancy (:mod:`repro.service.tenancy`) layers token auth,
per-tenant namespaces, quotas and submit rate limits over both
topologies behind the versioned protocol-v2 envelope: a daemon or
coordinator started with ``--tenants FILE`` holds a
:class:`TenantRegistry` and answers v2 requests carrying bearer
tokens; :class:`ServiceClient` raises the typed
:class:`AuthError` / :class:`QuotaExceeded` / :class:`RateLimited`
hierarchy and returns frozen :class:`PingInfo` /
:class:`SubmitReceipt` / :class:`StatusReport` reply objects.
"""

from .aio import AsyncServerCore
from .client import (
    AuthError,
    EndSummary,
    PingInfo,
    QuotaExceeded,
    RateLimited,
    ServiceClient,
    ServiceError,
    StatusReport,
    SubmitReceipt,
)
from .coordinator import Coordinator, plan_placement, rendezvous_rank
from .loadgen import parse_prometheus_text, run_loadgen
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    error_reply,
    format_address,
    parse_address,
)
from .queue import (
    DEFAULT_MAX_REQUEUES,
    JOB_RECORD_FORMAT,
    JOB_STATES,
    QUEUE_SCHEMA_VERSION,
    SUBMISSION_FORMAT,
    JobQueue,
    QueueError,
    queue_wait_s,
)
from .server import ServiceServer
from .tenancy import (
    Tenant,
    TenancyError,
    TenantRegistry,
    TokenBucket,
    hash_token,
    quota_table,
)

__all__ = [
    "AsyncServerCore",
    "AuthError",
    "Coordinator",
    "DEFAULT_MAX_REQUEUES",
    "ERROR_CODES",
    "EndSummary",
    "JOB_RECORD_FORMAT",
    "JOB_STATES",
    "JobQueue",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "PingInfo",
    "ProtocolError",
    "QUEUE_SCHEMA_VERSION",
    "QueueError",
    "QuotaExceeded",
    "RateLimited",
    "SUBMISSION_FORMAT",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "StatusReport",
    "SubmitReceipt",
    "Tenant",
    "TenancyError",
    "TenantRegistry",
    "TokenBucket",
    "error_reply",
    "format_address",
    "hash_token",
    "parse_address",
    "parse_prometheus_text",
    "plan_placement",
    "queue_wait_s",
    "quota_table",
    "rendezvous_rank",
    "run_loadgen",
]
