"""Long-running compilation service: daemon, queue, protocol, client.

The resident counterpart of ``repro batch``: a ``repro serve`` daemon
(:class:`ServiceServer`) keeps the engine, its process state and a
shared program cache warm across many submissions, accepts job
manifests over a local TCP or Unix socket (newline-delimited JSON,
:mod:`repro.service.protocol`), persists them in a crash-safe on-disk
queue (:class:`JobQueue` -- priorities, worker leases, dedup by cache
key, restart recovery) and executes them on leased worker threads
wrapping :class:`repro.engine.CompilationEngine` with per-job
retry-with-backoff.  :class:`ServiceClient` (and the ``repro submit``
/ ``repro status`` / ``repro results --follow`` commands) submit work
and stream back completion-order result records schema-identical to
``repro batch --stream``.  See ``docs/service.md``.
"""

from .client import ServiceClient, ServiceError
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    format_address,
    parse_address,
)
from .queue import (
    DEFAULT_MAX_REQUEUES,
    JOB_RECORD_FORMAT,
    JOB_STATES,
    QUEUE_SCHEMA_VERSION,
    SUBMISSION_FORMAT,
    JobQueue,
    QueueError,
)
from .server import ServiceServer

__all__ = [
    "DEFAULT_MAX_REQUEUES",
    "JOB_RECORD_FORMAT",
    "JOB_STATES",
    "JobQueue",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUEUE_SCHEMA_VERSION",
    "QueueError",
    "SUBMISSION_FORMAT",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "format_address",
    "parse_address",
]
