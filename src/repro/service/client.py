"""In-library client of the compilation service.

:class:`ServiceClient` speaks the NDJSON protocol to a running
``repro serve`` daemon.  Each operation opens its own connection, so
a client object is cheap and safe to share across threads -- with one
caveat: :meth:`ServiceClient.results` parks its stream-framing events
on the client (``last_start`` / ``last_summary``), so concurrent
*record streams* should use one client each.

Example::

    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1:7431")
    submitted = client.submit({"jobs": [{"benchmark": "BV-14"}]})
    for record in client.results(submitted["submission"], follow=True):
        print(record["benchmark"], record["status"])
    doc = client.results_document(submitted["submission"])

The record dicts are schema-identical to ``repro batch --stream``
NDJSON lines, and :meth:`ServiceClient.results_document` reassembles
them into a batch-results document
(:func:`repro.engine.shard.results_doc_from_records`) that
``repro merge`` / the analysis layer accept unchanged.
"""

from __future__ import annotations

import errno
import socket
import time
from typing import Any, Iterator

from ..engine.shard import results_doc_from_records
from .protocol import ProtocolError, parse_address, read_message, write_message


class ServiceError(RuntimeError):
    """The service refused an operation or the connection failed."""


class ServiceClient:
    """Client of one ``repro serve`` daemon.

    Args:
        address: The daemon's listen address (``host:port`` or Unix
            socket path).
        timeout: Socket timeout for connection setup and (non-follow)
            replies.  A followed result stream clears it -- the server
            is silent while a job compiles -- and relies on EOF to
            detect a dead daemon.
        connect_retry_s: Budget for retrying a *refused* connection
            (``ECONNREFUSED`` on TCP, ``ENOENT`` for a not-yet-bound
            Unix socket) with a bounded backoff ladder, so a client
            started alongside a daemon does not race its bind.  Any
            other connection error -- and a refusal outliving the
            budget -- raises immediately.  ``0`` disables retrying.
    """

    #: Connection errors worth retrying: the daemon is not *yet*
    #: listening (starting up) -- as opposed to unreachable.
    _RETRY_ERRNOS = frozenset({errno.ECONNREFUSED, errno.ENOENT})

    def __init__(
        self,
        address: str,
        timeout: float = 10.0,
        connect_retry_s: float = 5.0,
    ) -> None:
        parse_address(address)  # validate eagerly
        self.address = address
        self.timeout = timeout
        self.connect_retry_s = connect_retry_s

    # -- plumbing ------------------------------------------------------

    def _connect_once(self) -> socket.socket:
        kind, value = parse_address(self.address)
        try:
            if kind == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(value)
            else:
                sock = socket.create_connection(
                    value, timeout=self.timeout
                )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach the service at {self.address}: {exc}"
            ) from exc
        return sock

    def _connect(self) -> socket.socket:
        deadline = time.monotonic() + self.connect_retry_s
        delay = 0.05
        while True:
            try:
                return self._connect_once()
            except ServiceError as exc:
                cause = exc.__cause__
                refused = (
                    isinstance(cause, OSError)
                    and cause.errno in self._RETRY_ERRNOS
                )
                remaining = deadline - time.monotonic()
                if not refused or remaining <= 0:
                    raise
                time.sleep(min(delay, remaining))
                delay = min(delay * 2.0, 0.5)

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request, one response."""
        with self._connect() as sock:
            stream = sock.makefile("rwb")
            try:
                write_message(stream, payload)
                reply = read_message(stream)
            except (OSError, ProtocolError) as exc:
                raise ServiceError(
                    f"service request failed: {exc}"
                ) from exc
            finally:
                stream.close()
        if reply is None:
            raise ServiceError(
                "the service closed the connection without replying"
            )
        if not reply.get("ok", False):
            raise ServiceError(
                reply.get("error", "service reported an unknown error")
            )
        return reply

    # -- operations ----------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Liveness + queue occupancy of the daemon."""
        return self._request({"op": "ping"})

    def submit(
        self, manifest_doc: Any, priority: int = 0
    ) -> dict[str, Any]:
        """Submit a manifest document; returns ids and digest."""
        return self._request(
            {"op": "submit", "manifest": manifest_doc, "priority": priority}
        )

    def status(self, submission: str | None = None) -> dict[str, Any]:
        """Queue counts (whole daemon, or one submission)."""
        payload: dict[str, Any] = {"op": "status"}
        if submission is not None:
            payload["submission"] = submission
        return self._request(payload)

    def metrics(self) -> dict[str, Any]:
        """The daemon's (or fleet's) metrics exposition.

        The reply carries both forms: ``"metrics"`` -- the mergeable
        JSON document -- and ``"text"`` -- the Prometheus v0.0.4
        rendering a ``GET /metrics`` scrape would return.
        """
        return self._request({"op": "metrics"})

    def trace(self, job_id: str) -> dict[str, Any]:
        """One finished job's ``trace-v1`` document.

        ``job_id`` is a queue job id (``s000001-00003``) against a
        daemon, or a fleet job id (``c000001-00003``) against a
        coordinator.
        """
        return self._request({"op": "trace", "job": job_id})

    def register(self, daemon_address: str) -> dict[str, Any]:
        """Register a daemon with a coordinator (self-registration)."""
        return self._request(
            {"op": "register", "address": daemon_address}
        )

    def shutdown(
        self, drain: bool = True, fleet: bool = False
    ) -> dict[str, Any]:
        """Ask the daemon to shut down (draining by default).

        ``fleet=True`` asks a coordinator to also shut down every live
        daemon it knows about; plain daemons ignore the flag.
        """
        return self._request(
            {"op": "shutdown", "drain": drain, "fleet": fleet}
        )

    def _stream(
        self, submission: str, follow: bool
    ) -> Iterator[dict[str, Any]]:
        """Yield the raw ``start`` / ``record`` / ``end`` events of one
        results request, on a connection of its own."""
        with self._connect() as sock:
            if follow:
                # A compile emits nothing until it finishes; block
                # rather than tearing a buffered read mid-line.  A dead
                # daemon still surfaces as EOF.
                sock.settimeout(None)
            stream = sock.makefile("rwb")
            try:
                write_message(
                    stream,
                    {
                        "op": "results",
                        "submission": submission,
                        "follow": follow,
                    },
                )
                while True:
                    event = read_message(stream)
                    if event is None:
                        raise ServiceError(
                            "result stream ended without an 'end' event"
                        )
                    if not event.get("ok", False):
                        raise ServiceError(
                            event.get("error", "service error")
                        )
                    kind = event.get("event")
                    if kind not in ("start", "record", "end"):
                        raise ServiceError(
                            f"unexpected stream event {kind!r}"
                        )
                    yield event
                    if kind == "end":
                        return
            except (OSError, ProtocolError) as exc:
                raise ServiceError(
                    f"result stream failed: {exc}"
                ) from exc
            finally:
                stream.close()

    def raw_events(
        self, submission: str, follow: bool = False
    ) -> Iterator[dict[str, Any]]:
        """The raw ``start``/``record``/``end`` events of one results
        request (the coordinator's collector consumes these to see the
        ``end`` summary alongside the records)."""
        return self._stream(submission, follow)

    def results(
        self, submission: str, follow: bool = False
    ) -> Iterator[dict[str, Any]]:
        """Yield a submission's result records in completion order.

        With ``follow`` the iterator blocks until every job finished.
        After exhaustion, :attr:`last_start` / :attr:`last_summary`
        hold the stream's framing events (manifest digest, totals,
        wall time).  Those two attributes are per-client convenience
        state: concurrent ``results`` streams should use one client
        each (every other operation, including
        :meth:`results_document`, keeps no shared state).
        """
        self.last_start: dict[str, Any] | None = None
        self.last_summary: dict[str, Any] | None = None
        for event in self._stream(submission, follow):
            kind = event["event"]
            if kind == "start":
                self.last_start = event
            elif kind == "record":
                yield event["record"]
            else:
                self.last_summary = event

    def results_document(
        self, submission: str, follow: bool = True
    ) -> dict[str, Any]:
        """The submission's batch-results document (schema v2).

        Streams the records (following until completion by default)
        and reassembles them with
        :func:`~repro.engine.shard.results_doc_from_records` -- the
        same document an equivalent ``repro batch --on-error collect``
        run writes, modulo timing/cache fields.
        """
        records: list[dict[str, Any]] = []
        start: dict[str, Any] = {}
        summary: dict[str, Any] = {}
        for event in self._stream(submission, follow):
            kind = event["event"]
            if kind == "start":
                start = event
            elif kind == "record":
                records.append(event["record"])
            else:
                summary = event
        if summary.get("remaining"):
            raise ServiceError(
                f"submission {submission} still has "
                f"{summary['remaining']} unfinished job(s)"
            )
        return results_doc_from_records(
            records,
            manifest_digest=start.get("manifest_digest", ""),
            total_jobs=start.get("total_jobs", len(records)),
            wall_time_s=summary.get("wall_time_s", 0.0),
            on_error="collect",
        )

    def wait_ready(self, timeout: float = 10.0) -> dict[str, Any]:
        """Ping until the daemon answers (it may still be binding).

        Retries with bounded exponential backoff (50 ms doubling up to
        1 s, clamped to the remaining budget) so a slow-starting daemon
        is not hammered with connection attempts; the last
        :class:`ServiceError` is re-raised once ``timeout`` elapses.
        """
        deadline = time.monotonic() + timeout
        delay = 0.05
        while True:
            try:
                return self.ping()
            except ServiceError:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                time.sleep(min(delay, remaining))
                delay = min(delay * 2.0, 1.0)


__all__ = ["ServiceClient", "ServiceError"]
