"""In-library client of the compilation service.

:class:`ServiceClient` speaks the NDJSON protocol (v2 envelope) to a
running ``repro serve`` daemon.  Each operation opens its own
connection, so a client object is cheap and safe to share across
threads -- with one caveat: :meth:`ServiceClient.results` parks its
stream-framing events on the client (``last_start`` /
``last_summary``), so concurrent *record streams* should use one
client each.

Example::

    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1:7431", token="acme-secret")
    receipt = client.submit({"jobs": [{"benchmark": "BV-14"}]})
    for record in client.results(receipt.submission, follow=True):
        print(record["benchmark"], record["status"])
    doc = client.results_document(receipt.submission)

Replies are small frozen reply objects (:class:`PingInfo`,
:class:`SubmitReceipt`, :class:`StatusReport`, :class:`EndSummary`)
with typed accessors over the raw reply dict; they still answer
``reply["key"]`` / ``reply.get("key")`` so code written against the
v1 raw-dict surface keeps working, and ``.raw`` is the whole reply.
:meth:`ServiceClient.raw_events` remains the raw-dict escape hatch
for result streams.

Failures raise a :class:`ServiceError` carrying the server's stable
machine-readable ``code``; the common ones have dedicated subclasses
(:class:`AuthError`, :class:`QuotaExceeded`, :class:`RateLimited`
with ``retry_after_s``) so callers can catch precisely.

The record dicts are schema-identical to ``repro batch --stream``
NDJSON lines, and :meth:`ServiceClient.results_document` reassembles
them into a batch-results document
(:func:`repro.engine.shard.results_doc_from_records`) that
``repro merge`` / the analysis layer accept unchanged.
"""

from __future__ import annotations

import errno
import socket
import time
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from ..engine.shard import results_doc_from_records
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_address,
    read_message,
    write_message,
)


class ServiceError(RuntimeError):
    """The service refused an operation or the connection failed.

    ``code`` is the server's machine-readable error code (see
    :data:`repro.service.protocol.ERROR_CODES`), or ``None`` for
    transport-level failures and pre-v2 servers.
    """

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        self.code = code


class AuthError(ServiceError):
    """Missing, invalid, or insufficient credentials
    (``auth_required`` / ``auth_failed`` / ``forbidden``)."""


class QuotaExceeded(ServiceError):
    """A per-tenant quota rejected the operation (``quota_exceeded``)."""


class RateLimited(ServiceError):
    """The submit rate limiter rejected the operation
    (``rate_limited``); ``retry_after_s`` says when to try again."""

    def __init__(
        self,
        message: str,
        code: str | None = "rate_limited",
        retry_after_s: float = 0.0,
    ) -> None:
        super().__init__(message, code)
        self.retry_after_s = retry_after_s


def error_from_reply(reply: Mapping[str, Any]) -> ServiceError:
    """Map a failure reply onto the exception hierarchy."""
    message = reply.get("error", "service reported an unknown error")
    code = reply.get("code")
    if code in ("auth_required", "auth_failed", "forbidden"):
        return AuthError(message, code)
    if code == "quota_exceeded":
        return QuotaExceeded(message, code)
    if code == "rate_limited":
        retry_after = reply.get("retry_after_s")
        return RateLimited(
            message,
            code,
            retry_after_s=(
                float(retry_after)
                if isinstance(retry_after, (int, float))
                else 0.0
            ),
        )
    return ServiceError(message, code)


@dataclass(frozen=True)
class _Reply:
    """A typed view over one reply dict.

    Implements the read-only mapping surface (``reply["key"]``,
    ``.get``, ``in``) as a documented compatibility shim for code
    written against the v1 raw-dict returns.
    """

    raw: Mapping[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.raw[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.raw.get(key, default)

    def __contains__(self, key: object) -> bool:
        return key in self.raw


@dataclass(frozen=True)
class PingInfo(_Reply):
    """Reply of ``ping``: liveness, occupancy, capabilities."""

    @property
    def protocol(self) -> int:
        return int(self.raw.get("protocol", 1))

    @property
    def role(self) -> str:
        return str(self.raw.get("role", "daemon"))

    @property
    def draining(self) -> bool:
        return bool(self.raw.get("draining", False))

    @property
    def counts(self) -> Mapping[str, int]:
        return self.raw.get("counts", {})

    @property
    def connections(self) -> Mapping[str, int]:
        return self.raw.get("connections", {})

    @property
    def metrics_url(self) -> str | None:
        return self.raw.get("metrics_url")

    @property
    def auth_required(self) -> bool:
        return bool(self.raw.get("auth_required", False))

    @property
    def daemons(self) -> list[dict[str, Any]]:
        """Coordinator only: the per-daemon ledger."""
        return self.raw.get("daemons", [])


@dataclass(frozen=True)
class SubmitReceipt(_Reply):
    """Reply of ``submit``: the accepted submission's identity."""

    @property
    def submission(self) -> str:
        return self.raw["submission"]

    @property
    def manifest_digest(self) -> str:
        return self.raw.get("manifest_digest", "")

    @property
    def total_jobs(self) -> int:
        return int(self.raw.get("total_jobs", 0))

    @property
    def job_ids(self) -> list[str]:
        return list(self.raw.get("job_ids", []))


@dataclass(frozen=True)
class StatusReport(_Reply):
    """Reply of ``status`` (whole queue or one submission)."""

    @property
    def counts(self) -> Mapping[str, int]:
        return self.raw.get("counts", {})

    @property
    def submission(self) -> str | None:
        """The submission id (single-submission form only)."""
        return self.raw.get("submission")

    @property
    def submissions(self) -> list[dict[str, Any]]:
        """Per-submission summaries (whole-queue form only)."""
        return self.raw.get("submissions", [])

    @property
    def jobs(self) -> list[dict[str, Any]]:
        """Per-job detail (single-submission form only)."""
        return self.raw.get("jobs", [])

    @property
    def total_jobs(self) -> int:
        return int(self.raw.get("total_jobs", 0))


@dataclass(frozen=True)
class EndSummary(_Reply):
    """The ``end`` event closing a result stream."""

    @property
    def submission(self) -> str:
        return self.raw.get("submission", "")

    @property
    def num_done(self) -> int:
        return int(self.raw.get("num_done", 0))

    @property
    def num_failed(self) -> int:
        return int(self.raw.get("num_failed", 0))

    @property
    def remaining(self) -> int:
        return int(self.raw.get("remaining", 0))

    @property
    def wall_time_s(self) -> float:
        return float(self.raw.get("wall_time_s", 0.0))


class ServiceClient:
    """Client of one ``repro serve`` daemon.

    Args:
        address: The daemon's listen address (``host:port`` or Unix
            socket path).
        timeout: Socket timeout for connection setup and (non-follow)
            replies.  A followed result stream clears it -- the server
            is silent while a job compiles -- and relies on EOF to
            detect a dead daemon.
        connect_retry_s: Budget for retrying a *refused* connection
            (``ECONNREFUSED`` on TCP, ``ENOENT`` for a not-yet-bound
            Unix socket) with a bounded backoff ladder, so a client
            started alongside a daemon does not race its bind.  Any
            other connection error -- and a refusal outliving the
            budget -- raises immediately.  ``0`` disables retrying.
        token: Bearer token sent as the v2 envelope's ``auth`` field
            on every request.  Required against a daemon running with
            a tenants file; ignored by open daemons.
    """

    #: Connection errors worth retrying: the daemon is not *yet*
    #: listening (starting up) -- as opposed to unreachable.
    _RETRY_ERRNOS = frozenset({errno.ECONNREFUSED, errno.ENOENT})

    def __init__(
        self,
        address: str,
        timeout: float = 10.0,
        connect_retry_s: float = 5.0,
        token: str | None = None,
    ) -> None:
        parse_address(address)  # validate eagerly
        self.address = address
        self.timeout = timeout
        self.connect_retry_s = connect_retry_s
        self.token = token

    # -- plumbing ------------------------------------------------------

    def _envelope(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Wrap an op payload in the v2 envelope (``v`` + ``auth``).

        v1 servers ignore unknown request keys, so always sending the
        envelope costs nothing against older daemons.
        """
        message = {"v": PROTOCOL_VERSION, **payload}
        if self.token is not None:
            message["auth"] = self.token
        return message

    def _connect_once(self) -> socket.socket:
        kind, value = parse_address(self.address)
        try:
            if kind == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(value)
            else:
                sock = socket.create_connection(
                    value, timeout=self.timeout
                )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach the service at {self.address}: {exc}"
            ) from exc
        return sock

    def _connect(self) -> socket.socket:
        deadline = time.monotonic() + self.connect_retry_s
        delay = 0.05
        while True:
            try:
                return self._connect_once()
            except ServiceError as exc:
                cause = exc.__cause__
                refused = (
                    isinstance(cause, OSError)
                    and cause.errno in self._RETRY_ERRNOS
                )
                remaining = deadline - time.monotonic()
                if not refused or remaining <= 0:
                    raise
                time.sleep(min(delay, remaining))
                delay = min(delay * 2.0, 0.5)

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request, one response."""
        with self._connect() as sock:
            stream = sock.makefile("rwb")
            try:
                write_message(stream, self._envelope(payload))
                reply = read_message(stream)
            except (OSError, ProtocolError) as exc:
                raise ServiceError(
                    f"service request failed: {exc}"
                ) from exc
            finally:
                stream.close()
        if reply is None:
            raise ServiceError(
                "the service closed the connection without replying"
            )
        if not reply.get("ok", False):
            raise error_from_reply(reply)
        return reply

    # -- operations ----------------------------------------------------

    def ping(self) -> PingInfo:
        """Liveness + queue occupancy of the daemon."""
        return PingInfo(self._request({"op": "ping"}))

    def submit(
        self,
        manifest_doc: Any,
        priority: int = 0,
        rate_limit_retry_s: float = 0.0,
        tenant: str | None = None,
    ) -> SubmitReceipt:
        """Submit a manifest document; returns a :class:`SubmitReceipt`.

        ``rate_limit_retry_s`` is an optional budget for riding out
        :class:`RateLimited` rejections: the client sleeps the
        server-suggested ``retry_after_s`` (clamped to the remaining
        budget) and retries, raising only once the budget is spent.
        ``0`` (the default) surfaces the first rejection immediately.

        ``tenant`` is fleet-internal: a coordinator dispatching a leg
        with the fleet token names the tenant the work belongs to, so
        the daemon records carry the right tenant attribution.
        Ordinary tenant tokens cannot act for another tenant -- the
        server ignores the field unless the token is the fleet token.
        """
        payload = {
            "op": "submit",
            "manifest": manifest_doc,
            "priority": priority,
        }
        if tenant is not None:
            payload["tenant"] = tenant
        deadline = time.monotonic() + rate_limit_retry_s
        while True:
            try:
                return SubmitReceipt(self._request(payload))
            except RateLimited as exc:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                time.sleep(min(max(exc.retry_after_s, 0.01), remaining))

    def status(self, submission: str | None = None) -> StatusReport:
        """Queue counts (whole daemon, or one submission)."""
        payload: dict[str, Any] = {"op": "status"}
        if submission is not None:
            payload["submission"] = submission
        return StatusReport(self._request(payload))

    def metrics(self) -> dict[str, Any]:
        """The daemon's (or fleet's) metrics exposition.

        The reply carries both forms: ``"metrics"`` -- the mergeable
        JSON document -- and ``"text"`` -- the Prometheus v0.0.4
        rendering a ``GET /metrics`` scrape would return.
        """
        return self._request({"op": "metrics"})

    def trace(self, job_id: str) -> dict[str, Any]:
        """One finished job's ``trace-v1`` document.

        ``job_id`` is a queue job id (``s000001-00003``) against a
        daemon, or a fleet job id (``c000001-00003``) against a
        coordinator.
        """
        return self._request({"op": "trace", "job": job_id})

    def register(self, daemon_address: str) -> dict[str, Any]:
        """Register a daemon with a coordinator (self-registration)."""
        return self._request(
            {"op": "register", "address": daemon_address}
        )

    def shutdown(
        self, drain: bool = True, fleet: bool = False
    ) -> dict[str, Any]:
        """Ask the daemon to shut down (draining by default).

        ``fleet=True`` asks a coordinator to also shut down every live
        daemon it knows about; plain daemons ignore the flag.
        """
        return self._request(
            {"op": "shutdown", "drain": drain, "fleet": fleet}
        )

    def _stream(
        self, submission: str, follow: bool
    ) -> Iterator[dict[str, Any]]:
        """Yield the raw ``start`` / ``record`` / ``end`` events of one
        results request, on a connection of its own."""
        with self._connect() as sock:
            if follow:
                # A compile emits nothing until it finishes; block
                # rather than tearing a buffered read mid-line.  A dead
                # daemon still surfaces as EOF.
                sock.settimeout(None)
            stream = sock.makefile("rwb")
            try:
                write_message(
                    stream,
                    self._envelope(
                        {
                            "op": "results",
                            "submission": submission,
                            "follow": follow,
                        }
                    ),
                )
                while True:
                    event = read_message(stream)
                    if event is None:
                        raise ServiceError(
                            "result stream ended without an 'end' event"
                        )
                    if not event.get("ok", False):
                        raise error_from_reply(event)
                    kind = event.get("event")
                    if kind not in ("start", "record", "end"):
                        raise ServiceError(
                            f"unexpected stream event {kind!r}"
                        )
                    yield event
                    if kind == "end":
                        return
            except (OSError, ProtocolError) as exc:
                raise ServiceError(
                    f"result stream failed: {exc}"
                ) from exc
            finally:
                stream.close()

    def raw_events(
        self, submission: str, follow: bool = False
    ) -> Iterator[dict[str, Any]]:
        """The raw ``start``/``record``/``end`` events of one results
        request (the coordinator's collector consumes these to see the
        ``end`` summary alongside the records).  This is the raw-dict
        escape hatch of the typed surface."""
        return self._stream(submission, follow)

    def results(
        self, submission: str, follow: bool = False
    ) -> Iterator[dict[str, Any]]:
        """Yield a submission's result records in completion order.

        With ``follow`` the iterator blocks until every job finished.
        After exhaustion, :attr:`last_start` / :attr:`last_summary`
        hold the stream's framing events (``last_summary`` is an
        :class:`EndSummary`).  Those two attributes are per-client
        convenience state: concurrent ``results`` streams should use
        one client each (every other operation, including
        :meth:`results_document`, keeps no shared state).
        """
        self.last_start: dict[str, Any] | None = None
        self.last_summary: EndSummary | None = None
        for event in self._stream(submission, follow):
            kind = event["event"]
            if kind == "start":
                self.last_start = event
            elif kind == "record":
                yield event["record"]
            else:
                self.last_summary = EndSummary(event)

    def results_document(
        self, submission: str, follow: bool = True
    ) -> dict[str, Any]:
        """The submission's batch-results document (schema v2).

        Streams the records (following until completion by default)
        and reassembles them with
        :func:`~repro.engine.shard.results_doc_from_records` -- the
        same document an equivalent ``repro batch --on-error collect``
        run writes, modulo timing/cache fields.
        """
        records: list[dict[str, Any]] = []
        start: dict[str, Any] = {}
        summary: dict[str, Any] = {}
        for event in self._stream(submission, follow):
            kind = event["event"]
            if kind == "start":
                start = event
            elif kind == "record":
                records.append(event["record"])
            else:
                summary = event
        if summary.get("remaining"):
            raise ServiceError(
                f"submission {submission} still has "
                f"{summary['remaining']} unfinished job(s)"
            )
        return results_doc_from_records(
            records,
            manifest_digest=start.get("manifest_digest", ""),
            total_jobs=start.get("total_jobs", len(records)),
            wall_time_s=summary.get("wall_time_s", 0.0),
            on_error="collect",
        )

    def wait_ready(self, timeout: float = 10.0) -> PingInfo:
        """Ping until the daemon answers (it may still be binding).

        Retries with bounded exponential backoff (50 ms doubling up to
        1 s, clamped to the remaining budget) so a slow-starting daemon
        is not hammered with connection attempts; the last
        :class:`ServiceError` is re-raised once ``timeout`` elapses.
        Auth failures are *not* retried -- a bad token will not get
        better with time.
        """
        deadline = time.monotonic() + timeout
        delay = 0.05
        while True:
            try:
                return self.ping()
            except AuthError:
                raise
            except ServiceError:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                time.sleep(min(delay, remaining))
                delay = min(delay * 2.0, 1.0)


__all__ = [
    "AuthError",
    "EndSummary",
    "PingInfo",
    "QuotaExceeded",
    "RateLimited",
    "ServiceClient",
    "ServiceError",
    "StatusReport",
    "SubmitReceipt",
    "error_from_reply",
]
