"""Multi-tenant auth, quotas and rate limits for the service layer.

A *tenants file* (JSON, or TOML where the stdlib ``tomllib`` is
available) declares the tenants a daemon or coordinator serves:

.. code-block:: json

    {
      "format": "repro-tenants",
      "version": 1,
      "fleet_token": "fleet-secret",
      "tenants": {
        "acme": {
          "token": "acme-secret",
          "max_queued_jobs": 64,
          "max_running_jobs": 8,
          "max_jobs_per_submission": 32,
          "rate": {"burst": 10, "per_second": 2.0},
          "admin": false
        },
        "ops": {"token_sha256": "<hex digest>", "admin": true}
      }
    }

Tokens may be given in clear (``token``, hashed on load and never kept
in memory) or pre-hashed (``token_sha256``).  Authentication compares
sha256 digests with :func:`hmac.compare_digest`, so lookup time does
not leak which tenant (if any) a presented token belongs to.

``TenantRegistry`` is hot-reloadable: :meth:`TenantRegistry.reload`
re-reads the file (SIGHUP handler in the CLI), and
:meth:`TenantRegistry.maybe_reload` reloads only when the file's mtime
changed (called from the daemon's maintenance sweep).  Reloads keep
each tenant's token-bucket state when its rate config is unchanged, so
rotating a token does not refill anyone's bucket.

The optional top-level ``fleet_token`` authenticates *internal* fleet
peers: a coordinator presents it to its daemons (with an explicit
``tenant`` field naming the tenant it is acting for) and daemons
present it when self-registering via ``--announce``.  A fleet context
is implicitly admin and may read any tenant's submissions (the
coordinator's collector streams need that).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from .protocol import PROTOCOL_VERSION, error_reply

TENANTS_FORMAT = "repro-tenants"
TENANTS_VERSION = 1

#: Tenant names become path components and submission-id prefixes.
_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_.]{0,63}$")

_UNSET = object()


class TenancyError(ValueError):
    """A tenants file failed to parse or validate."""


def hash_token(token: str) -> str:
    """Return the sha256 hex digest under which a token is stored."""
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


class TokenBucket:
    """Classic token bucket: ``burst`` capacity refilled at
    ``per_second`` tokens/s.  Thread-safe.  ``acquire`` never blocks —
    it either spends a token and returns ``0.0`` or returns the time
    until one becomes available (the 429 ``retry_after_s``)."""

    def __init__(self, burst: int, per_second: float) -> None:
        if burst < 1:
            raise TenancyError(f"rate burst must be >= 1, got {burst}")
        if per_second <= 0:
            raise TenancyError(
                f"rate per_second must be > 0, got {per_second}")
        self.burst = int(burst)
        self.per_second = float(per_second)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.per_second)

    def acquire(self, now: Optional[float] = None) -> float:
        """Spend one token if available.  Returns 0.0 on success, else
        the seconds until a token will be available."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.per_second

    def config(self) -> Tuple[int, float]:
        return (self.burst, self.per_second)


@dataclass(frozen=True)
class Tenant:
    """One tenant's declared identity, quotas and rate limit."""

    name: str
    token_sha256: str
    max_queued_jobs: Optional[int] = None
    max_running_jobs: Optional[int] = None
    max_jobs_per_submission: Optional[int] = None
    rate_burst: Optional[int] = None
    rate_per_second: Optional[float] = None
    admin: bool = False

    def quota_doc(self) -> Dict[str, Any]:
        """The quota table row shown by ``repro tenants --check``."""
        return {
            "tenant": self.name,
            "max_queued_jobs": self.max_queued_jobs,
            "max_running_jobs": self.max_running_jobs,
            "max_jobs_per_submission": self.max_jobs_per_submission,
            "rate_burst": self.rate_burst,
            "rate_per_second": self.rate_per_second,
            "admin": self.admin,
        }


@dataclass(frozen=True)
class AuthContext:
    """The result of a successful authentication.

    ``tenant`` is ``None`` for fleet-internal peers acting on their own
    behalf (register, metrics polls); a coordinator dispatching work
    sets the acting tenant explicitly and the daemon trusts it.
    """

    tenant: Optional[Tenant]
    fleet: bool = False

    @property
    def name(self) -> Optional[str]:
        return self.tenant.name if self.tenant is not None else None

    @property
    def admin(self) -> bool:
        if self.fleet:
            return True
        return bool(self.tenant is not None and self.tenant.admin)

    def can_see(self, record_tenant: Optional[str]) -> bool:
        """Namespace check: may this context read a record owned by
        ``record_tenant``?  Fleet peers see everything; tenants see
        exactly their own namespace."""
        if self.fleet:
            return True
        return record_tenant == self.name


def _positive_int(value: Any, label: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TenancyError(f"{label} must be an integer, got {value!r}")
    if value < 1:
        raise TenancyError(f"{label} must be >= 1, got {value}")
    return value


def _parse_tenant(name: str, doc: Mapping[str, Any]) -> Tenant:
    if not _NAME_RE.match(name):
        raise TenancyError(
            f"invalid tenant name {name!r}: must match {_NAME_RE.pattern}")
    if not isinstance(doc, Mapping):
        raise TenancyError(f"tenant {name!r} must be an object")
    unknown = set(doc) - {
        "token", "token_sha256", "max_queued_jobs", "max_running_jobs",
        "max_jobs_per_submission", "rate", "admin",
    }
    if unknown:
        raise TenancyError(
            f"tenant {name!r} has unknown keys: {sorted(unknown)}")
    token = doc.get("token")
    token_sha = doc.get("token_sha256")
    if (token is None) == (token_sha is None):
        raise TenancyError(
            f"tenant {name!r} needs exactly one of token / token_sha256")
    if token is not None:
        if not isinstance(token, str) or not token:
            raise TenancyError(f"tenant {name!r}: token must be a non-empty string")
        token_sha = hash_token(token)
    else:
        if (not isinstance(token_sha, str)
                or not re.match(r"^[0-9a-f]{64}$", token_sha)):
            raise TenancyError(
                f"tenant {name!r}: token_sha256 must be a 64-char hex digest")
    quotas = {}
    for key in ("max_queued_jobs", "max_running_jobs",
                "max_jobs_per_submission"):
        if doc.get(key) is not None:
            quotas[key] = _positive_int(doc[key], f"tenant {name!r}.{key}")
    burst = per_second = None
    rate = doc.get("rate")
    if rate is not None:
        if not isinstance(rate, Mapping) or set(rate) - {"burst", "per_second"}:
            raise TenancyError(
                f"tenant {name!r}: rate must be {{burst, per_second}}")
        burst = _positive_int(rate.get("burst", 1), f"tenant {name!r}.rate.burst")
        per_second = rate.get("per_second")
        if (isinstance(per_second, bool)
                or not isinstance(per_second, (int, float))
                or per_second <= 0):
            raise TenancyError(
                f"tenant {name!r}: rate.per_second must be > 0")
        per_second = float(per_second)
    admin = doc.get("admin", False)
    if not isinstance(admin, bool):
        raise TenancyError(f"tenant {name!r}: admin must be a boolean")
    return Tenant(
        name=name,
        token_sha256=token_sha,
        rate_burst=burst,
        rate_per_second=per_second,
        admin=admin,
        **quotas,
    )


def parse_tenants_doc(doc: Any, *, source: str = "<tenants>") -> Tuple[
        Dict[str, Tenant], Optional[str], Optional[str]]:
    """Validate a parsed tenants document.  Returns
    ``(tenants_by_name, fleet_token_sha256, fleet_token_clear)`` —
    the clear token is kept (when the file gave one) because fleet
    members must *present* it outbound (coordinator → daemon dispatch,
    daemon → coordinator ``--announce``), not just verify it."""
    if not isinstance(doc, Mapping):
        raise TenancyError(f"{source}: top level must be an object")
    fmt = doc.get("format", TENANTS_FORMAT)
    if fmt != TENANTS_FORMAT:
        raise TenancyError(f"{source}: format must be {TENANTS_FORMAT!r}")
    version = doc.get("version", TENANTS_VERSION)
    if version != TENANTS_VERSION:
        raise TenancyError(f"{source}: unsupported version {version!r}")
    unknown = set(doc) - {"format", "version", "fleet_token",
                          "fleet_token_sha256", "tenants"}
    if unknown:
        raise TenancyError(f"{source}: unknown top-level keys {sorted(unknown)}")
    fleet_sha: Optional[str] = None
    fleet_clear: Optional[str] = None
    if doc.get("fleet_token") is not None:
        token = doc["fleet_token"]
        if not isinstance(token, str) or not token:
            raise TenancyError(f"{source}: fleet_token must be a non-empty string")
        fleet_sha = hash_token(token)
        fleet_clear = token
    elif doc.get("fleet_token_sha256") is not None:
        fleet_sha = doc["fleet_token_sha256"]
        if (not isinstance(fleet_sha, str)
                or not re.match(r"^[0-9a-f]{64}$", fleet_sha)):
            raise TenancyError(
                f"{source}: fleet_token_sha256 must be a 64-char hex digest")
    tenants_doc = doc.get("tenants")
    if not isinstance(tenants_doc, Mapping) or not tenants_doc:
        raise TenancyError(f"{source}: tenants must be a non-empty object")
    tenants: Dict[str, Tenant] = {}
    digests: Dict[str, str] = {}
    for name in sorted(tenants_doc):
        tenant = _parse_tenant(str(name), tenants_doc[name])
        if tenant.token_sha256 in digests:
            raise TenancyError(
                f"{source}: tenants {digests[tenant.token_sha256]!r} and "
                f"{tenant.name!r} share a token")
        if fleet_sha is not None and tenant.token_sha256 == fleet_sha:
            raise TenancyError(
                f"{source}: tenant {tenant.name!r} reuses the fleet token")
        digests[tenant.token_sha256] = tenant.name
        tenants[tenant.name] = tenant
    return tenants, fleet_sha, fleet_clear


def load_tenants_file(path: str) -> Tuple[
        Dict[str, Tenant], Optional[str], Optional[str]]:
    """Parse and validate a tenants file (JSON, or TOML by suffix)."""
    with open(path, "rb") as handle:
        raw = handle.read()
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py<3.11
            raise TenancyError(
                f"{path}: TOML tenants files need Python's tomllib; "
                "use JSON instead") from exc
        try:
            doc = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise TenancyError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            doc = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TenancyError(f"{path}: invalid JSON: {exc}") from exc
    return parse_tenants_doc(doc, source=path)


class TenantRegistry:
    """The live tenant table a daemon or coordinator enforces.

    Thread-safe; shared between the asyncio dispatch path, worker
    threads and the maintenance sweep.
    """

    def __init__(self, tenants: Dict[str, Tenant],
                 fleet_token_sha256: Optional[str] = None,
                 fleet_token: Optional[str] = None,
                 *, path: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._tenants = dict(tenants)
        self._fleet_sha = fleet_token_sha256
        self._fleet_clear = fleet_token
        if fleet_token is not None and fleet_token_sha256 is None:
            self._fleet_sha = hash_token(fleet_token)
        self._path = path
        self._mtime = self._stat_mtime() if path else None
        self._buckets: Dict[str, TokenBucket] = {}
        self.reloads = 0
        self.reload_errors = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "TenantRegistry":
        tenants, fleet_sha, fleet_clear = load_tenants_file(path)
        return cls(tenants, fleet_sha, fleet_clear, path=path)

    # -- hot reload -----------------------------------------------------

    def _stat_mtime(self) -> Optional[float]:
        try:
            return os.stat(self._path).st_mtime
        except OSError:
            return None

    def reload(self) -> bool:
        """Re-read the tenants file.  Returns True when the table was
        replaced; a file that fails to parse leaves the previous table
        in force and counts a reload error."""
        if not self._path:
            return False
        try:
            tenants, fleet_sha, fleet_clear = load_tenants_file(self._path)
        except (OSError, TenancyError):
            with self._lock:
                self.reload_errors += 1
            return False
        mtime = self._stat_mtime()
        with self._lock:
            # Keep bucket state across reloads unless the rate changed
            # (or vanished) — token rotation must not refill buckets.
            for name in list(self._buckets):
                fresh = tenants.get(name)
                if (fresh is None or fresh.rate_burst is None
                        or (self._buckets[name].config()
                            != (fresh.rate_burst, fresh.rate_per_second))):
                    del self._buckets[name]
            self._tenants = dict(tenants)
            self._fleet_sha = fleet_sha
            self._fleet_clear = fleet_clear
            self._mtime = mtime
            self.reloads += 1
        return True

    def maybe_reload(self) -> bool:
        """Reload iff the file's mtime changed since the last load."""
        if not self._path:
            return False
        mtime = self._stat_mtime()
        if mtime is None or mtime == self._mtime:
            return False
        return self.reload()

    @property
    def path(self) -> Optional[str]:
        return self._path

    # -- lookups --------------------------------------------------------

    def tenants(self) -> Dict[str, Tenant]:
        with self._lock:
            return dict(self._tenants)

    def get(self, name: str) -> Optional[Tenant]:
        with self._lock:
            return self._tenants.get(name)

    def has_fleet_token(self) -> bool:
        with self._lock:
            return self._fleet_sha is not None

    @property
    def fleet_token(self) -> Optional[str]:
        """The clear fleet token for *outbound* fleet-internal calls
        (None when the file only stored its digest)."""
        with self._lock:
            return self._fleet_clear

    # -- authentication -------------------------------------------------

    def authenticate(self, token: Any) -> Optional[AuthContext]:
        """Map a presented bearer token to an AuthContext, or None.

        Compares against *every* stored digest with a constant-time
        comparison so timing does not reveal which tenant matched.
        """
        if not isinstance(token, str) or not token:
            return None
        digest = hash_token(token)
        with self._lock:
            fleet_sha = self._fleet_sha
            candidates = list(self._tenants.values())
        matched: Optional[AuthContext] = None
        if fleet_sha is not None and hmac.compare_digest(digest, fleet_sha):
            matched = AuthContext(tenant=None, fleet=True)
        for tenant in candidates:
            if hmac.compare_digest(digest, tenant.token_sha256):
                matched = AuthContext(tenant=tenant)
        return matched

    # -- rate limiting --------------------------------------------------

    def acquire_submit(self, tenant: Tenant,
                       now: Optional[float] = None) -> float:
        """Charge one submit against the tenant's token bucket.
        Returns 0.0 when admitted, else the retry_after_s."""
        if tenant.rate_burst is None:
            return 0.0
        with self._lock:
            bucket = self._buckets.get(tenant.name)
            if (bucket is None
                    or bucket.config() != (tenant.rate_burst,
                                           tenant.rate_per_second)):
                bucket = TokenBucket(tenant.rate_burst, tenant.rate_per_second)
                self._buckets[tenant.name] = bucket
        return bucket.acquire(now)


#: The permissive context of a daemon running without a tenants file:
#: v1 semantics — every caller is trusted, sees everything, may admin.
OPEN_CONTEXT = AuthContext(tenant=None, fleet=True)


def authorize_request(
    registry: Optional[TenantRegistry], request: Mapping[str, Any]
) -> Tuple[Optional[AuthContext], Optional[Dict[str, Any]]]:
    """The server-side front-door check shared by daemon and
    coordinator dispatch.  Returns ``(context, None)`` when the
    request may proceed, else ``(None, error_reply)``.

    Implements the protocol compat matrix (see
    :mod:`repro.service.protocol`): a request without a ``v`` key (or
    an explicit ``v: 1``) is a v1 request — accepted wholesale when no
    registry is configured, rejected with ``upgrade_required``
    otherwise.  Fleet-token requests may act for a tenant by naming it
    in a ``tenant`` field.
    """
    v = request.get("v")
    is_v1 = v is None or v == 1
    if not is_v1 and v != PROTOCOL_VERSION:
        return None, error_reply(
            "bad_request",
            f"unsupported protocol version {v!r} "
            f"(this daemon speaks v{PROTOCOL_VERSION})",
        )
    if registry is None:
        return OPEN_CONTEXT, None
    if is_v1:
        return None, error_reply(
            "upgrade_required",
            "this daemon enforces tenancy and requires protocol v2 "
            "requests with an 'auth' token",
        )
    token = request.get("auth")
    if not token:
        return None, error_reply(
            "auth_required",
            "this daemon requires a bearer token in the 'auth' field",
        )
    ctx = registry.authenticate(token)
    if ctx is None:
        return None, error_reply(
            "auth_failed", "the presented token matches no tenant"
        )
    acting = request.get("tenant")
    if acting and ctx.fleet:
        tenant = registry.get(acting)
        if tenant is None:
            return None, error_reply(
                "bad_request", f"unknown tenant {acting!r}"
            )
        ctx = AuthContext(tenant=tenant, fleet=True)
    return ctx, None


def resolve_registry(tenants: Any) -> Optional[TenantRegistry]:
    """Normalize a ``tenants=`` argument: a registry passes through, a
    path string loads, None stays None (open v1-compat mode)."""
    if tenants is None or isinstance(tenants, TenantRegistry):
        return tenants
    if isinstance(tenants, (str, os.PathLike)):
        return TenantRegistry.load(os.fspath(tenants))
    raise TypeError(f"tenants must be a path or TenantRegistry, got {tenants!r}")


def quota_table(tenants: Iterable[Tenant]) -> str:
    """Render the ``repro tenants --check`` quota table."""
    headers = ("tenant", "queued", "running", "per-sub", "rate", "admin")
    rows = []
    for tenant in sorted(tenants, key=lambda t: t.name):
        rate = ("-" if tenant.rate_burst is None
                else f"{tenant.rate_burst}@{tenant.rate_per_second:g}/s")
        rows.append((
            tenant.name,
            "-" if tenant.max_queued_jobs is None else str(tenant.max_queued_jobs),
            "-" if tenant.max_running_jobs is None else str(tenant.max_running_jobs),
            ("-" if tenant.max_jobs_per_submission is None
             else str(tenant.max_jobs_per_submission)),
            rate,
            "yes" if tenant.admin else "no",
        ))
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)
