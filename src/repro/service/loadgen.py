"""Synthetic many-client traffic generator (``repro loadgen``).

Drives a running daemon or coordinator with Poisson-arrival
submissions from N concurrent clients and reports the submit->result
latency distribution -- the perf evidence for the asyncio front end
and the fleet layer.  Each client thread draws exponential
inter-arrival gaps with mean ``clients / rate_hz`` seconds, so the
service sees ``rate_hz`` submissions per second overall; every
submission is a one-job manifest whose seed cycles through
``distinct_seeds`` values, which controls the cache-hit mix (fewer
distinct seeds -> more warm-cache submissions -> the latency tail
shows queueing, not compilation).

The report document (``repro-loadgen-report`` v1) carries
``submitted`` / ``completed`` / ``failed`` counts and the
p50/p95/p99/mean/max of the end-to-end latency, where *end-to-end*
means submit -> followed result stream delivering the final record.
Submissions stop after ``duration_s``; in-flight submissions are
followed to completion, so ``wall_time_s`` can exceed the configured
duration but no job is abandoned.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Sequence

from .client import ServiceClient, ServiceError

LOADGEN_FORMAT = "repro-loadgen-report"
LOADGEN_VERSION = 1


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = fraction * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    weight = rank - low
    return float(
        sorted_values[low] * (1.0 - weight)
        + sorted_values[high] * weight
    )


def run_loadgen(
    address: str,
    *,
    clients: int = 4,
    rate_hz: float = 2.0,
    duration_s: float = 5.0,
    benchmarks: Sequence[str] = ("BV-14",),
    backend: str = "powermove",
    distinct_seeds: int = 4,
    seed: int = 0,
    priority: int = 0,
    progress: Callable[[int, float], None] | None = None,
) -> dict[str, Any]:
    """Run the traffic generator; returns the latency report document.

    Args:
        address: Daemon or coordinator to drive.
        clients: Concurrent client threads.
        rate_hz: Aggregate submission rate (Poisson arrivals).
        duration_s: How long new submissions are generated; in-flight
            work is followed to completion afterwards.
        benchmarks: Benchmark names drawn uniformly per submission.
        backend: Backend every submission compiles with.
        distinct_seeds: Job seeds cycle over ``range(distinct_seeds)``
            -- the knob for the cache-hit mix.
        seed: RNG seed of the generator itself (arrivals + choices).
        priority: Queue priority of every submission.
        progress: Optional ``(completed_count, latency_s)`` callback,
            invoked after each finished submission.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    if not benchmarks:
        raise ValueError("need at least one benchmark")
    results: list[dict[str, Any]] = []
    errors: list[str] = []
    lock = threading.Lock()
    started_at = time.monotonic()
    stop_at = started_at + duration_s

    def client_loop(client_index: int) -> None:
        rng = random.Random(seed * 1000003 + client_index)
        client = ServiceClient(address)
        while True:
            now = time.monotonic()
            if now >= stop_at:
                return
            gap = (
                rng.expovariate(rate_hz / clients)
                if rate_hz > 0
                else 0.0
            )
            time.sleep(max(0.0, min(now + gap, stop_at) - now))
            if time.monotonic() >= stop_at:
                return
            benchmark = rng.choice(list(benchmarks))
            job_seed = rng.randrange(max(1, distinct_seeds))
            manifest = {
                "jobs": [
                    {
                        "benchmark": benchmark,
                        "backend": backend,
                        "seed": job_seed,
                    }
                ]
            }
            submit_started = time.monotonic()
            try:
                submitted = client.submit(manifest, priority=priority)
                doc = client.results_document(
                    submitted["submission"], follow=True
                )
            except ServiceError as exc:
                with lock:
                    errors.append(str(exc))
                continue
            latency = time.monotonic() - submit_started
            with lock:
                results.append(
                    {
                        "latency_s": latency,
                        "ok": doc.get("num_failed", 1) == 0,
                        "benchmark": benchmark,
                        "seed": job_seed,
                    }
                )
                count = len(results)
            if progress is not None:
                progress(count, latency)

    threads = [
        threading.Thread(
            target=client_loop,
            args=(index,),
            name=f"repro-loadgen-{index}",
            daemon=True,
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_time_s = time.monotonic() - started_at
    latencies = sorted(entry["latency_s"] for entry in results)
    completed = sum(1 for entry in results if entry["ok"])
    failed = len(results) - completed
    return {
        "format": LOADGEN_FORMAT,
        "version": LOADGEN_VERSION,
        "address": address,
        "clients": clients,
        "rate_hz": rate_hz,
        "duration_s": duration_s,
        "wall_time_s": wall_time_s,
        "backend": backend,
        "benchmarks": list(benchmarks),
        "distinct_seeds": distinct_seeds,
        "seed": seed,
        "submitted": len(results) + len(errors),
        "completed": completed,
        "failed": failed,
        "num_errors": len(errors),
        "errors": errors[:10],
        "throughput_jobs_per_s": (
            len(results) / wall_time_s if wall_time_s > 0 else 0.0
        ),
        "latency_s": {
            "mean": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }


__all__ = [
    "LOADGEN_FORMAT",
    "LOADGEN_VERSION",
    "percentile",
    "run_loadgen",
]
