"""Synthetic many-client traffic generator (``repro loadgen``).

Drives a running daemon or coordinator with Poisson-arrival
submissions from N concurrent clients and reports the submit->result
latency distribution -- the perf evidence for the asyncio front end
and the fleet layer.  Each client thread draws exponential
inter-arrival gaps with mean ``clients / rate_hz`` seconds, so the
service sees ``rate_hz`` submissions per second overall; every
submission is a one-job manifest whose seed cycles through
``distinct_seeds`` values, which controls the cache-hit mix (fewer
distinct seeds -> more warm-cache submissions -> the latency tail
shows queueing, not compilation).

The report document (``repro-loadgen-report`` v1) carries
``submitted`` / ``completed`` / ``failed`` counts and the
p50/p95/p99/mean/max of the end-to-end latency, where *end-to-end*
means submit -> followed result stream delivering the final record.
Submissions stop after ``duration_s``; in-flight submissions are
followed to completion, so ``wall_time_s`` can exceed the configured
duration but no job is abandoned.
"""

from __future__ import annotations

import random
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Sequence

from .client import ServiceClient, ServiceError

LOADGEN_FORMAT = "repro-loadgen-report"
LOADGEN_VERSION = 1

#: Default cadence of ``--scrape`` sampling.
DEFAULT_SCRAPE_INTERVAL_S = 1.0


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Flatten a Prometheus text exposition into ``{series: value}``.

    Keys keep their label sets verbatim (``repro_queue_depth{state="queued"}``);
    comment lines and malformed lines are skipped.  Good enough for
    embedding scrape samples in a report -- not a full parser.
    """
    series: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            continue
        try:
            series[name] = float(value)
        except ValueError:
            continue
    return series


class _MetricsScraper:
    """Samples a ``/metrics`` URL on a thread while the loadgen runs."""

    def __init__(self, url: str, interval_s: float) -> None:
        self.url = url
        self.interval_s = max(0.05, interval_s)
        self.samples: list[dict[str, Any]] = []
        self.errors: list[str] = []
        self._stop = threading.Event()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._loop, name="repro-loadgen-scrape", daemon=True
        )

    def _sample_once(self) -> None:
        try:
            with urllib.request.urlopen(self.url, timeout=5.0) as reply:
                text = reply.read().decode("utf-8", "replace")
        except (OSError, urllib.error.URLError) as exc:
            if len(self.errors) < 10:
                self.errors.append(str(exc))
            return
        self.samples.append(
            {
                "t_s": round(time.monotonic() - self._started_at, 3),
                "series": parse_prometheus_text(text),
            }
        )

    def _loop(self) -> None:
        while not self._stop.wait(timeout=self.interval_s):
            self._sample_once()

    def start(self) -> "_MetricsScraper":
        self._thread.start()
        return self

    def finish(self) -> dict[str, Any]:
        """Stop sampling, take one final sample, return the report block."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._sample_once()  # final state after the burst settled
        return {
            "url": self.url,
            "interval_s": self.interval_s,
            "num_samples": len(self.samples),
            "samples": self.samples,
            "errors": self.errors,
        }


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = fraction * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    weight = rank - low
    return float(
        sorted_values[low] * (1.0 - weight)
        + sorted_values[high] * weight
    )


def run_loadgen(
    address: str,
    *,
    clients: int = 4,
    rate_hz: float = 2.0,
    duration_s: float = 5.0,
    benchmarks: Sequence[str] = ("BV-14",),
    backend: str = "powermove",
    distinct_seeds: int = 4,
    seed: int = 0,
    priority: int = 0,
    progress: Callable[[int, float], None] | None = None,
    scrape_url: str | None = None,
    scrape_interval_s: float = DEFAULT_SCRAPE_INTERVAL_S,
    token: str | None = None,
) -> dict[str, Any]:
    """Run the traffic generator; returns the latency report document.

    Args:
        address: Daemon or coordinator to drive.
        clients: Concurrent client threads.
        rate_hz: Aggregate submission rate (Poisson arrivals).
        duration_s: How long new submissions are generated; in-flight
            work is followed to completion afterwards.
        benchmarks: Benchmark names drawn uniformly per submission.
        backend: Backend every submission compiles with.
        distinct_seeds: Job seeds cycle over ``range(distinct_seeds)``
            -- the knob for the cache-hit mix.
        seed: RNG seed of the generator itself (arrivals + choices).
        priority: Queue priority of every submission.
        progress: Optional ``(completed_count, latency_s)`` callback,
            invoked after each finished submission.
        scrape_url: Optional ``GET /metrics`` URL (``repro serve
            --metrics``) sampled every ``scrape_interval_s`` while the
            burst runs; the flattened series land in the report's
            ``"scrape"`` block, so a loadgen run doubles as scrape
            evidence without a Prometheus server.
        scrape_interval_s: Sampling cadence of ``scrape_url``.
        token: Bearer token sent with every request (tenanted
            services); rate-limited submissions are counted as errors
            rather than retried, so a loadgen run against a throttled
            tenant measures the throttle.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    if not benchmarks:
        raise ValueError("need at least one benchmark")
    results: list[dict[str, Any]] = []
    errors: list[str] = []
    lock = threading.Lock()
    started_at = time.monotonic()
    stop_at = started_at + duration_s

    def client_loop(client_index: int) -> None:
        rng = random.Random(seed * 1000003 + client_index)
        client = ServiceClient(address, token=token)
        while True:
            now = time.monotonic()
            if now >= stop_at:
                return
            gap = (
                rng.expovariate(rate_hz / clients)
                if rate_hz > 0
                else 0.0
            )
            time.sleep(max(0.0, min(now + gap, stop_at) - now))
            if time.monotonic() >= stop_at:
                return
            benchmark = rng.choice(list(benchmarks))
            job_seed = rng.randrange(max(1, distinct_seeds))
            manifest = {
                "jobs": [
                    {
                        "benchmark": benchmark,
                        "backend": backend,
                        "seed": job_seed,
                    }
                ]
            }
            submit_started = time.monotonic()
            try:
                submitted = client.submit(manifest, priority=priority)
                doc = client.results_document(
                    submitted.submission, follow=True
                )
            except ServiceError as exc:
                with lock:
                    errors.append(str(exc))
                continue
            latency = time.monotonic() - submit_started
            with lock:
                results.append(
                    {
                        "latency_s": latency,
                        "ok": doc.get("num_failed", 1) == 0,
                        "benchmark": benchmark,
                        "seed": job_seed,
                    }
                )
                count = len(results)
            if progress is not None:
                progress(count, latency)

    threads = [
        threading.Thread(
            target=client_loop,
            args=(index,),
            name=f"repro-loadgen-{index}",
            daemon=True,
        )
        for index in range(clients)
    ]
    scraper = (
        None
        if scrape_url is None
        else _MetricsScraper(scrape_url, scrape_interval_s).start()
    )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    scrape_block = None if scraper is None else scraper.finish()
    wall_time_s = time.monotonic() - started_at
    latencies = sorted(entry["latency_s"] for entry in results)
    completed = sum(1 for entry in results if entry["ok"])
    failed = len(results) - completed
    report: dict[str, Any] = {
        "format": LOADGEN_FORMAT,
        "version": LOADGEN_VERSION,
        "address": address,
        "clients": clients,
        "rate_hz": rate_hz,
        "duration_s": duration_s,
        "wall_time_s": wall_time_s,
        "backend": backend,
        "benchmarks": list(benchmarks),
        "distinct_seeds": distinct_seeds,
        "seed": seed,
        "submitted": len(results) + len(errors),
        "completed": completed,
        "failed": failed,
        "num_errors": len(errors),
        "errors": errors[:10],
        "throughput_jobs_per_s": (
            len(results) / wall_time_s if wall_time_s > 0 else 0.0
        ),
        "latency_s": {
            "mean": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }
    if scrape_block is not None:
        report["scrape"] = scrape_block
    return report


__all__ = [
    "DEFAULT_SCRAPE_INTERVAL_S",
    "LOADGEN_FORMAT",
    "LOADGEN_VERSION",
    "parse_prometheus_text",
    "percentile",
    "run_loadgen",
]
