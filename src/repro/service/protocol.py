"""Wire protocol of the compilation service: newline-delimited JSON.

Every message -- request or response -- is one JSON object on one
line, UTF-8, terminated by ``\\n``.  A client connection carries a
sequence of requests; the server answers each with one response
object, except ``results``, which streams several *event* objects and
ends the exchange with an ``{"event": "end", ...}`` line.

Requests (``op`` selects the operation; the v2 envelope adds ``v``
and, against a tenanted daemon, ``auth``)::

    {"v": 2, "op": "ping"}
    {"v": 2, "op": "submit", "auth": TOKEN,
     "manifest": <manifest doc>, "priority": 0}
    {"v": 2, "op": "status", "auth": TOKEN}            # whole queue
    {"v": 2, "op": "status", "auth": TOKEN, "submission": ID}
    {"v": 2, "op": "results", "auth": TOKEN, "submission": ID,
     "follow": true}
    {"v": 2, "op": "metrics"}             # repro-metrics doc + text
    {"v": 2, "op": "trace", "auth": TOKEN, "job": JOB_ID}
    {"v": 2, "op": "register", "auth": TOKEN,
     "address": "host:port"}                     # coordinator only
    {"v": 2, "op": "shutdown", "auth": TOKEN, "drain": true}
                                                 # +"fleet" on a
                                                 #  coordinator

Version compatibility matrix (``v`` is the envelope version; a
request with no ``v`` key is a v1 request):

    ==========  =====================  ============================
    request     daemon w/o --tenants   daemon with --tenants
    ==========  =====================  ============================
    v1 (no v)   accepted (as today)    rejected, code
                                       ``upgrade_required``
                                       (``ping`` always answered)
    v: 2        accepted               accepted; ``auth`` required
                                       for every op except ``ping``
    v: other    rejected,              rejected, code
                ``bad_request``        ``bad_request``
    ==========  =====================  ============================

A v2 server therefore serves legacy v1 clients byte-compatibly so
long as it runs without a tenants file; turning tenancy on is the
moment the fleet must speak v2.  ``ping`` is always answered
unauthenticated (liveness probes and ``wait_ready`` must work before
a client knows its token is valid); a tenanted daemon's ping reply
additionally carries ``"auth_required": true``.

Coordinators authenticate to their daemons with the tenants file's
``fleet_token`` and name the acting tenant in a ``tenant`` field;
daemons trust that field only on fleet-token requests (see
:mod:`repro.service.tenancy`).

``metrics`` answers with the daemon's ``repro-metrics`` JSON document
(``"metrics"``, fleet-summed on a coordinator) plus its Prometheus
v0.0.4 text rendering (``"text"``); ``trace`` answers with the job's
``repro-trace`` document (recorded queue wait, attempts, per-pass
spans -- see :mod:`repro.obs.trace`).

Responses always carry ``"ok"``.  Failures are
``{"ok": false, "error": "<human string>", "code": "<machine code>"}``
— the ``code`` vocabulary is stable API (:data:`ERROR_CODES`):

* ``auth_required`` — tenanted daemon, no/empty ``auth`` given
* ``auth_failed`` — token matched no tenant
* ``forbidden`` — authenticated but lacking the ``admin`` capability
* ``quota_exceeded`` — a per-tenant quota would be exceeded
* ``rate_limited`` — submit token bucket empty; the reply carries
  ``retry_after_s``
* ``upgrade_required`` — v1 request against a tenanted daemon
* ``bad_request`` — malformed request (unknown ``v``, bad manifest…)
* ``unknown_op`` — unrecognized ``op``
* ``not_found`` — unknown submission/job (or one outside the
  caller's tenant namespace — indistinguishable by design)
* ``draining`` — daemon is shutting down, not accepting submits
* ``unavailable`` — fleet has no live daemon for the work
* ``internal`` — unexpected server-side failure

``results`` events look like::

    {"ok": true, "event": "start", "submission": ID,
     "manifest_digest": ..., "total_jobs": N}
    {"ok": true, "event": "record", "record": {<job_record>}}
    ...
    {"ok": true, "event": "end", "num_done": N, "num_failed": F,
     "remaining": R, "wall_time_s": T}

The ``record`` payloads are byte-identical in schema to the NDJSON
lines of ``repro batch --stream``
(:func:`repro.engine.shard.job_record`), so everything downstream of
either -- ``repro merge``, :func:`repro.engine.shard.results_doc_from_records`,
the analysis layer -- consumes service output unchanged.

Addresses: the service listens on either TCP (``"host:port"``, e.g.
``127.0.0.1:7431``; port ``0`` binds an ephemeral port) or a Unix
domain socket (any spec containing a path separator, e.g.
``/tmp/repro.sock`` or ``./queue/service.sock``).
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any, BinaryIO, Iterator

#: Bump on incompatible wire changes; ping responses carry it.
#: v2 (this version) added the request envelope (``v``/``auth``) and
#: machine-readable error codes; see the compat matrix above.
PROTOCOL_VERSION = 2

#: The stable machine-readable error-code vocabulary (`code` field of
#: failure replies).  Grows compatibly; codes are never repurposed.
ERROR_CODES = frozenset({
    "auth_required",
    "auth_failed",
    "forbidden",
    "quota_exceeded",
    "rate_limited",
    "upgrade_required",
    "bad_request",
    "unknown_op",
    "not_found",
    "draining",
    "unavailable",
    "internal",
})

#: Upper bound on one protocol line (a manifest embedding the full
#: benchmark suite is ~10 kB; 32 MiB leaves orders of magnitude slack
#: while still bounding a malformed peer).
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """Raised on malformed protocol traffic (bad JSON, oversize line)."""


def error_reply(code: str, message: str, **extra: Any) -> dict[str, Any]:
    """Build a failure reply with its stable machine-readable code.

    ``extra`` lands on the reply verbatim (e.g. ``retry_after_s`` for
    ``rate_limited``).
    """
    assert code in ERROR_CODES, f"unknown error code {code!r}"
    reply = {"ok": False, "error": message, "code": code}
    reply.update(extra)
    return reply


def parse_address(spec: str) -> tuple[str, Any]:
    """Parse an address spec into ``("tcp", (host, port))`` or
    ``("unix", path)``.

    TCP specs are ``host:port``; anything containing a path separator
    (or starting with ``.``) is a Unix socket path.
    """
    spec = spec.strip()
    if not spec:
        raise ProtocolError("empty service address")
    if os.sep in spec or "/" in spec or spec.startswith("."):
        return ("unix", spec)
    host, colon, port_text = spec.rpartition(":")
    if not colon or not host:
        raise ProtocolError(
            f"bad service address {spec!r}: expected host:port or a "
            "socket path"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ProtocolError(
            f"bad service address {spec!r}: port {port_text!r} is not "
            "an integer"
        ) from exc
    if not 0 <= port <= 65535:
        raise ProtocolError(
            f"bad service address {spec!r}: port outside 0..65535"
        )
    return ("tcp", (host, port))


def format_address(kind: str, value: Any) -> str:
    """Render a parsed address back into its spec string."""
    if kind == "unix":
        return str(value)
    host, port = value
    return f"{host}:{port}"


def write_message(stream: BinaryIO, payload: dict[str, Any]) -> None:
    """Write one protocol message and flush it.

    Flushing per message is load-bearing: ``results --follow``
    consumers must see every record the moment it exists, not when a
    buffer happens to fill.
    """
    line = json.dumps(payload, separators=(",", ":")) + "\n"
    stream.write(line.encode("utf-8"))
    stream.flush()


def _parse_line(
    line: bytes, max_line_bytes: int
) -> dict[str, Any] | None:
    """Decode one raw protocol line; ``None`` for a blank line."""
    if len(line) > max_line_bytes:
        raise ProtocolError(
            f"protocol line exceeds the {max_line_bytes}-byte size bound"
        )
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad protocol line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return payload


def read_message(
    stream: BinaryIO, max_line_bytes: int = MAX_LINE_BYTES
) -> dict[str, Any] | None:
    """Read one protocol message; ``None`` on clean EOF.

    A line longer than ``max_line_bytes`` raises
    :class:`ProtocolError` instead of buffering without bound.
    """
    line = stream.readline(max_line_bytes + 1)
    if not line:
        return None
    return _parse_line(line, max_line_bytes)


async def read_message_async(
    reader: asyncio.StreamReader,
    max_line_bytes: int = MAX_LINE_BYTES,
) -> dict[str, Any] | None:
    """Async twin of :func:`read_message` for the daemon front end.

    The stream's own ``limit`` (set at ``asyncio.start_server`` time)
    bounds buffering; the ``ValueError``/``LimitOverrunError`` it
    raises for an over-long line is mapped to :class:`ProtocolError`
    so the connection handler can answer with a clean error object.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(
            f"protocol line exceeds the {max_line_bytes}-byte size bound"
        ) from exc
    if not line:
        return None
    return _parse_line(line, max_line_bytes)


async def write_message_async(
    writer: asyncio.StreamWriter, payload: dict[str, Any]
) -> None:
    """Async twin of :func:`write_message` (drain per message)."""
    line = json.dumps(payload, separators=(",", ":")) + "\n"
    writer.write(line.encode("utf-8"))
    await writer.drain()


def read_messages(stream: BinaryIO) -> Iterator[dict[str, Any]]:
    """Iterate protocol messages until EOF."""
    while True:
        payload = read_message(stream)
        if payload is None:
            return
        yield payload


__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "error_reply",
    "format_address",
    "parse_address",
    "read_message",
    "read_message_async",
    "read_messages",
    "write_message",
    "write_message_async",
]
