"""Fleet coordinator: one front door over N compilation daemons.

``repro coordinate`` runs a :class:`Coordinator` -- an asyncio NDJSON
front end (:class:`~repro.service.aio.AsyncServerCore`) speaking the
*same* wire protocol as ``repro serve`` (``submit`` / ``status`` /
``results`` / ``ping`` / ``metrics`` / ``trace`` / ``shutdown``), so
every existing client --
``repro submit``, ``repro results --follow``, :class:`ServiceClient`,
the load generator -- talks to a fleet exactly as it talks to one
daemon.  Daemons are listed statically (``--daemon``) or register
themselves (``repro serve --announce``, the ``register`` op).

**Cache-affinity placement.**  Every expanded job routes to a daemon
by rendezvous (highest-random-weight) hashing of its content-addressed
cache key: the daemon with the highest ``sha256(daemon|key)`` score
wins (:func:`rendezvous_rank`).  Resubmissions of identical work
therefore land on the daemon whose program cache / tiered store is
already warm, and adding or removing a daemon only remaps the keys
that daemon owned -- no global reshuffle.  Placement is load-aware:
when the winner's queue depth is at or past ``spill_depth``, the job
spills to the next-ranked daemon (:func:`plan_placement`).

**Work stealing.**  A monitor thread polls the fleet; when a daemon
sits idle while another still has queued work, the tail of the
straggler's outstanding jobs is duplicate-dispatched to the idle
daemon.  Jobs are deterministic and the coordinator keeps the *first*
completion per job, so duplicate dispatch is safe and costs at most
one redundant compile per stolen job; the straggler's own copy is
deduplicated by the daemons' cache-key work dedup whenever both land
on the same queue.

**Daemon loss.**  Each dispatched leg is followed by a collector
thread streaming its records back.  When a leg's stream dies and the
daemon stops answering pings, every job it still owed is re-dispatched
to the survivors (records it delivered before dying are kept); if no
survivor exists yet, the jobs park until a daemon registers.  The
coordinator itself is a stateless front door over the daemons'
persistent queues: restarting it forgets coordinator submission ids
but loses no daemon-side work.

**Tenancy.**  Started with ``--tenants FILE`` the coordinator is the
fleet's policy front door: it authenticates every request
(:func:`~repro.service.tenancy.authorize_request`), enforces the
per-tenant submit rate limit, per-submission size quota and
outstanding-jobs quota *globally* (the per-daemon slices of a
tenant's work cannot see each other, so daemons skip admission for
fleet-token legs), and namespaces fleet submission ids per tenant.
Outbound legs carry the shared fleet token plus a ``tenant`` field,
so daemon-side records, queues and metrics keep per-tenant
attribution end to end.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from typing import Any, Callable, Iterable

from ..engine.cache import job_cache_key
from ..engine.jobs import job_to_doc
from ..engine.manifest import (
    ManifestError,
    manifest_digest,
    parse_manifest,
)
from ..obs.metrics import MetricsRegistry, render_prometheus_doc
from .aio import AsyncServerCore
from .client import ServiceClient, ServiceError
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    error_reply,
    parse_address,
    write_message_async,
)
from .server import RESULTS_POLL_MIN_S, _next_idle_timeout
from .tenancy import (
    OPEN_CONTEXT,
    AuthContext,
    TenantRegistry,
    authorize_request,
    resolve_registry,
)

#: Queue depth (queued + running) at which affinity placement spills
#: to the next rendezvous choice.
DEFAULT_SPILL_DEPTH = 16

#: Fleet poll cadence of the monitor thread (liveness + steal scan).
DEFAULT_POLL_INTERVAL_S = 0.5

#: Jobs moved per steal; small so a recovering straggler is not
#: stripped bare in one tick.
DEFAULT_STEAL_BATCH = 2


def rendezvous_rank(
    daemons: Iterable[str], cache_key: str
) -> list[str]:
    """Daemon addresses ranked by highest-random-weight score.

    Stable: a daemon leaving only re-ranks the keys it owned; every
    other key keeps its winner.
    """

    def score(address: str) -> bytes:
        return hashlib.sha256(
            f"{address}|{cache_key}".encode("utf-8")
        ).digest()

    return sorted(daemons, key=score, reverse=True)


def plan_placement(
    cache_keys: list[str],
    depths: dict[str, int],
    spill_depth: int,
    stats: dict[str, int] | None = None,
) -> list[str]:
    """Assign each cache key a daemon: affinity first, spill on load.

    Args:
        cache_keys: Job cache keys, in manifest order.
        depths: Mutable ``{address: queued+running}`` map; planned
            assignments are counted into it as they are made, so one
            submission cannot pile onto a single daemon.
        spill_depth: A daemon at or past this depth spills to the next
            rendezvous choice; when every choice is past it, the
            least-loaded ranked daemon takes the job.
        stats: Optional tally dict; every placement that landed off its
            first rendezvous choice adds one to ``stats["spills"]``.

    Returns one address per key.
    """
    daemons = sorted(depths)
    if not daemons:
        raise ServiceError("placement needs at least one daemon")
    assignment = []
    for key in cache_keys:
        ranked = rendezvous_rank(daemons, key)
        chosen = next(
            (
                address
                for address in ranked
                if depths[address] < spill_depth
            ),
            None,
        )
        if chosen is None:
            chosen = min(ranked, key=lambda address: depths[address])
        if stats is not None and chosen != ranked[0]:
            stats["spills"] = stats.get("spills", 0) + 1
        depths[chosen] += 1
        assignment.append(chosen)
    return assignment


def _trace_queue_wait(trace_doc: dict[str, Any]) -> float | None:
    """The ``queue.wait`` span's duration from a trace document."""
    for span in trace_doc.get("spans", ()):
        if span.get("name") == "queue.wait":
            return span["end_s"] - span["start_s"]
    return None


class _Daemon:
    """Coordinator-side view of one registered daemon."""

    __slots__ = (
        "address",
        "alive",
        "counts",
        "placements",
        "steals",
        "last_error",
    )

    def __init__(self, address: str) -> None:
        self.address = address
        self.alive = True
        self.counts: dict[str, int] = {}
        self.placements = 0  # jobs placed here by affinity/spill
        self.steals = 0  # jobs stolen *onto* this daemon
        self.last_error: str | None = None


class _Leg:
    """One sub-submission dispatched to one daemon.

    ``global_indices[i]`` is the coordinator-side index of the leg's
    ``i``-th job -- the mapping that rewrites daemon-local record
    indices back into the client's manifest order.
    """

    __slots__ = ("daemon", "sub_id", "global_indices", "stolen")

    def __init__(
        self,
        daemon: str,
        sub_id: str,
        global_indices: list[int],
        stolen: bool = False,
    ) -> None:
        self.daemon = daemon
        self.sub_id = sub_id
        self.global_indices = list(global_indices)
        self.stolen = stolen


class _FleetSubmission:
    """Coordinator-side state of one client submission."""

    def __init__(
        self,
        sub_id: str,
        digest: str,
        job_docs: list[dict[str, Any]],
        cache_keys: list[str],
        priority: int,
        tenant: str | None = None,
    ) -> None:
        self.id = sub_id
        self.manifest_digest = digest
        self.jobs = job_docs
        self.cache_keys = cache_keys
        self.priority = priority
        self.tenant = tenant
        self.submitted_at = time.time()
        self.total_jobs = len(job_docs)
        #: global index -> first-wins record (index already rewritten).
        self.records: dict[int, dict[str, Any]] = {}
        #: Global indices in completion order (stream order).
        self.completion: list[int] = []
        self.legs: list[_Leg] = []
        #: Indices already duplicate-dispatched by the stealer.
        self.stolen: set[int] = set()
        #: Indices whose re-dispatch is parked until a daemon lives.
        self.pending: set[int] = set()

    def done(self) -> bool:
        return len(self.records) >= self.total_jobs


class Coordinator(AsyncServerCore):
    """The fleet front door (see module docstring).

    Args:
        address: Listen spec (``host:port`` or Unix socket path).
        daemons: Static daemon addresses; more can join at runtime via
            the ``register`` op / ``repro serve --announce``.
        spill_depth: Queue depth at which affinity placement spills.
        poll_interval: Monitor cadence (liveness + steal scan).
        steal_batch: Jobs moved per steal (``0`` disables stealing).
        max_line_bytes: Protocol line bound.
        tenants: Tenants file path or a
            :class:`~repro.service.tenancy.TenantRegistry`; enables
            token auth and global per-tenant quota / rate-limit
            enforcement at the fleet front door.  ``None`` keeps the
            open v1-compatible behaviour.
    """

    def __init__(
        self,
        address: str = "127.0.0.1:0",
        *,
        daemons: Iterable[str] = (),
        spill_depth: int = DEFAULT_SPILL_DEPTH,
        poll_interval: float = DEFAULT_POLL_INTERVAL_S,
        steal_batch: int = DEFAULT_STEAL_BATCH,
        max_line_bytes: int = MAX_LINE_BYTES,
        tenants: TenantRegistry | str | None = None,
    ) -> None:
        super().__init__(
            address,
            max_line_bytes=max_line_bytes,
            name="repro-coordinator",
        )
        self.spill_depth = spill_depth
        self.poll_interval = poll_interval
        self.steal_batch = steal_batch
        self.tenants = resolve_registry(tenants)
        self._lock = threading.RLock()
        #: Notified on every record arrival / fleet change; followed
        #: result streams bridge it into their event loop.
        self.changed = threading.Condition(self._lock)
        self._listeners: list[Callable[[], None]] = []
        self._daemons: dict[str, _Daemon] = {}
        for daemon_address in daemons:
            parse_address(daemon_address)  # validate eagerly
            self._daemons[daemon_address] = _Daemon(daemon_address)
        self._submissions: dict[str, _FleetSubmission] = {}
        # Coordinator-level registry: placement decisions only (the
        # per-daemon compile/queue/cache series come from the daemons'
        # own registries; the ``metrics`` op merges everything).
        self.metrics = MetricsRegistry()
        self._m_placements = self.metrics.counter(
            "repro_placements_total",
            "Jobs placed on each daemon by affinity placement.",
            ("daemon",),
        )
        self._m_steals = self.metrics.counter(
            "repro_steals_total",
            "Jobs duplicate-dispatched onto an idle daemon.",
            ("daemon",),
        )
        self._m_spills = self.metrics.counter(
            "repro_placement_spills_total",
            "Placements that landed off their first rendezvous choice.",
        )
        self._m_redispatches = self.metrics.counter(
            "repro_redispatches_total",
            "Jobs re-placed after a daemon loss.",
        )
        # Per-tenant families (all zero unless a tenants file is in
        # force).  Submissions and throttles are counted here -- the
        # fleet front door -- and NOT again by the daemons for fleet
        # legs, so the merged fleet view stays double-count-free.
        self._m_tenant_submissions = self.metrics.counter(
            "repro_tenant_submissions_total",
            "Client submissions accepted, per tenant.",
            ("tenant",),
        )
        self._m_tenant_throttles = self.metrics.counter(
            "repro_tenant_throttles_total",
            "Submissions rejected by tenancy admission control.",
            ("tenant", "reason"),
        )
        self._m_tenant_placements = self.metrics.counter(
            "repro_tenant_placements_total",
            "Jobs placed on daemons, per owning tenant.",
            ("tenant",),
        )
        self._seq = 0
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self.started_at = time.time()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Coordinator":
        """Bind the front door and spawn the fleet monitor."""
        self.start_listener()
        monitor = threading.Thread(
            target=self._monitor_loop,
            name="repro-coordinator-monitor",
            daemon=True,
        )
        self._threads.append(monitor)
        monitor.start()
        return self

    def stop(
        self,
        drain: bool = True,
        timeout: float | None = None,
        fleet: bool = False,
    ) -> None:
        """Shut the coordinator down.

        Args:
            drain: Wait until every known submission has all its
                records before stopping.
            timeout: Bound on the drain wait.
            fleet: Also shut down (draining per ``drain``) every live
                daemon -- the whole-fleet teardown behind
                ``repro shutdown --fleet``.
        """
        self._draining.set()
        if drain:
            self.wait(
                lambda: all(
                    submission.done()
                    for submission in self._submissions.values()
                ),
                timeout=timeout,
            )
        self._stopping.set()
        self._poke()
        if fleet:
            for daemon in self._alive_daemons():
                try:
                    self._client(daemon.address).shutdown(drain=drain)
                except ServiceError as exc:
                    self._log(
                        f"fleet shutdown of {daemon.address} failed: "
                        f"{exc}"
                    )
        self.stop_listener()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        self._stopped.set()

    def wait_stopped(self, timeout: float | None = None) -> bool:
        """Block until the coordinator has fully stopped."""
        return self._stopped.wait(timeout)

    @property
    def draining(self) -> bool:
        """Whether the coordinator still accepts submissions."""
        return self._draining.is_set()

    def wait(
        self,
        predicate: Callable[[], bool],
        timeout: float | None = None,
    ) -> bool:
        """Block until ``predicate()`` holds or ``timeout`` elapses."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self.changed:
            while not predicate():
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self.changed.wait(remaining)
            return True

    def _log(self, message: str) -> None:
        print(f"repro-coordinator: {message}", flush=True)

    # -- change notification (mirrors JobQueue's bridge) ---------------

    def add_listener(self, callback: Callable[[], None]) -> None:
        with self._lock:
            self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[], None]) -> None:
        with self._lock:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

    def _notify_all(self) -> None:
        # Caller holds the lock.
        self.changed.notify_all()
        for callback in list(self._listeners):
            try:
                callback()
            except Exception:
                pass

    def _poke(self) -> None:
        with self.changed:
            self._notify_all()

    # -- fleet bookkeeping ---------------------------------------------

    def _client(self, address: str) -> ServiceClient:
        return ServiceClient(
            address,
            timeout=10.0,
            connect_retry_s=1.0,
            token=self._fleet_token(),
        )

    def _fleet_token(self) -> str | None:
        """The clear fleet token every daemon-bound request presents."""
        return None if self.tenants is None else self.tenants.fleet_token

    def _alive_daemons(self) -> list[_Daemon]:
        with self._lock:
            return [
                daemon
                for daemon in self._daemons.values()
                if daemon.alive
            ]

    def _mark_dead(self, address: str, exc: Exception) -> None:
        with self.changed:
            daemon = self._daemons.get(address)
            if daemon is None or not daemon.alive:
                return
            daemon.alive = False
            daemon.last_error = str(exc)
            self._notify_all()
        self._log(f"daemon {address} is down: {exc}")

    # -- submission + placement ----------------------------------------

    def _check_tenant_submit(
        self, ctx: AuthContext, num_jobs: int
    ) -> dict[str, Any] | None:
        """Global tenancy admission control: rate limit, then
        per-submission size quota, then fleet-wide outstanding-jobs
        quota (the coordinator is the only place that can see a
        tenant's work across every daemon).  Returns an error reply,
        or ``None`` to admit."""
        tenant = ctx.tenant
        if tenant is None or self.tenants is None:
            return None
        retry_after = self.tenants.acquire_submit(tenant)
        if retry_after > 0.0:
            self._m_tenant_throttles.inc(
                tenant=tenant.name, reason="rate_limit"
            )
            return error_reply(
                "rate_limited",
                f"tenant {tenant.name!r} exceeded its submit rate; "
                f"retry in {retry_after:.3f}s",
                retry_after_s=round(retry_after, 3),
            )
        cap = tenant.max_jobs_per_submission
        if cap is not None and num_jobs > cap:
            self._m_tenant_throttles.inc(
                tenant=tenant.name, reason="submission_quota"
            )
            return error_reply(
                "quota_exceeded",
                f"submission has {num_jobs} jobs; tenant "
                f"{tenant.name!r} is limited to {cap} per submission",
            )
        cap = tenant.max_queued_jobs
        if cap is not None:
            outstanding = self._tenant_outstanding(tenant.name)
            if outstanding + num_jobs > cap:
                self._m_tenant_throttles.inc(
                    tenant=tenant.name, reason="queued_quota"
                )
                return error_reply(
                    "quota_exceeded",
                    f"tenant {tenant.name!r} has {outstanding} "
                    f"outstanding job(s) across the fleet; {num_jobs} "
                    f"more would exceed its quota of {cap}",
                )
        return None

    def _tenant_outstanding(self, tenant_name: str) -> int:
        """Jobs submitted by ``tenant_name`` still without a record."""
        with self._lock:
            return sum(
                entry.total_jobs - len(entry.records)
                for entry in self._submissions.values()
                if entry.tenant == tenant_name
            )

    def _submit(
        self, request: dict[str, Any], ctx: AuthContext = OPEN_CONTEXT
    ) -> dict[str, Any]:
        if self.draining:
            return error_reply(
                "draining",
                "coordinator is draining; not accepting submissions",
            )
        manifest_doc = request.get("manifest")
        if manifest_doc is None:
            return error_reply("bad_request", "submit needs a 'manifest'")
        priority = request.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            return error_reply(
                "bad_request", "'priority' must be an integer"
            )
        try:
            jobs = parse_manifest(manifest_doc)
            cache_keys = [job_cache_key(job) for job in jobs]
            job_docs = [job_to_doc(job) for job in jobs]
        except ManifestError as exc:
            return error_reply("bad_request", f"bad manifest: {exc}")
        rejection = self._check_tenant_submit(ctx, len(jobs))
        if rejection is not None:
            return rejection
        digest = manifest_digest(manifest_doc)
        tenant_name = ctx.name
        with self.changed:
            self._seq += 1
            sub_id = (
                f"{tenant_name}-c{self._seq:06d}"
                if tenant_name
                else f"c{self._seq:06d}"
            )
            submission = _FleetSubmission(
                sub_id,
                digest,
                job_docs,
                cache_keys,
                priority,
                tenant=tenant_name,
            )
            self._submissions[sub_id] = submission
        try:
            self._dispatch_jobs(
                submission, list(range(submission.total_jobs))
            )
        except ServiceError as exc:
            # Nothing accepted the work: refuse honestly rather than
            # park a submission no daemon has ever seen.
            with self.changed:
                del self._submissions[sub_id]
                self._notify_all()
            return error_reply(
                "unavailable", f"fleet dispatch failed: {exc}"
            )
        if tenant_name is not None:
            self._m_tenant_submissions.inc(tenant=tenant_name)
        return {
            "ok": True,
            "op": "submit",
            "submission": sub_id,
            "tenant": tenant_name,
            "manifest_digest": digest,
            "total_jobs": submission.total_jobs,
            "job_ids": [
                f"{sub_id}-{index:05d}"
                for index in range(submission.total_jobs)
            ],
        }

    def _dispatch_jobs(
        self,
        submission: _FleetSubmission,
        indices: list[int],
        *,
        stolen: bool = False,
    ) -> None:
        """Place ``indices`` on live daemons and start collectors.

        Raises :class:`ServiceError` when no live daemon accepted any
        of the work.
        """
        depths: dict[str, int] = {}
        for daemon in self._alive_daemons():
            try:
                ping = self._client(daemon.address).ping()
            except ServiceError as exc:
                self._mark_dead(daemon.address, exc)
                continue
            counts = ping.get("counts", {})
            with self._lock:
                daemon.counts = counts
            depths[daemon.address] = counts.get(
                "queued", 0
            ) + counts.get("running", 0)
        if not depths:
            raise ServiceError(
                "no live daemon is registered with the coordinator"
            )
        cache_keys = [submission.cache_keys[i] for i in indices]
        placement_stats: dict[str, int] = {}
        assignment = plan_placement(
            cache_keys, depths, self.spill_depth, stats=placement_stats
        )
        if placement_stats.get("spills"):
            self._m_spills.inc(placement_stats["spills"])
        groups: dict[str, list[int]] = {}
        for index, address in zip(indices, assignment):
            groups.setdefault(address, []).append(index)
        failed: list[int] = []
        dispatched = 0
        for address, group in groups.items():
            if self._dispatch_leg(submission, address, group, stolen):
                dispatched += len(group)
            else:
                failed.extend(group)
        if failed:
            if dispatched == 0 and not self._alive_daemons():
                raise ServiceError(
                    "every registered daemon died during dispatch"
                )
            # Daemons died between the depth probe and the submit:
            # replan the leftovers over the survivors.
            self._dispatch_jobs(submission, failed, stolen=stolen)

    def _dispatch_leg(
        self,
        submission: _FleetSubmission,
        address: str,
        indices: list[int],
        stolen: bool,
    ) -> bool:
        """Submit one sub-manifest to one daemon; False if it died."""
        manifest = {"jobs": [submission.jobs[i] for i in indices]}
        try:
            reply = self._client(address).submit(
                manifest,
                priority=submission.priority,
                tenant=submission.tenant,
            )
        except ServiceError as exc:
            self._mark_dead(address, exc)
            return False
        leg = _Leg(address, reply["submission"], indices, stolen)
        with self.changed:
            submission.legs.append(leg)
            daemon = self._daemons.get(address)
            if daemon is not None:
                if stolen:
                    daemon.steals += len(indices)
                else:
                    daemon.placements += len(indices)
            self._notify_all()
        if stolen:
            self._m_steals.inc(len(indices), daemon=address)
        else:
            self._m_placements.inc(len(indices), daemon=address)
        if submission.tenant is not None:
            self._m_tenant_placements.inc(
                len(indices), tenant=submission.tenant
            )
        collector = threading.Thread(
            target=self._collect,
            args=(submission, leg),
            name=(
                f"repro-coordinator-collect-{submission.id}-{address}"
            ),
            daemon=True,
        )
        collector.start()
        return True

    def _redispatch(
        self, submission: _FleetSubmission, indices: list[int]
    ) -> None:
        """Re-place lost jobs; park them if no daemon is alive."""
        still_missing = [
            index
            for index in indices
            if index not in submission.records
        ]
        if not still_missing:
            return
        self._m_redispatches.inc(len(still_missing))
        try:
            self._dispatch_jobs(submission, still_missing)
        except ServiceError as exc:
            self._log(
                f"{submission.id}: re-dispatch of "
                f"{len(still_missing)} job(s) stalled ({exc}); "
                "waiting for a daemon to register"
            )
            with self.changed:
                submission.pending.update(still_missing)
                self._notify_all()

    # -- collectors ----------------------------------------------------

    def _collect(
        self, submission: _FleetSubmission, leg: _Leg
    ) -> None:
        """Stream one leg's records back; survive the daemon dying.

        Runs until the leg has delivered everything it owes (directly
        or via records that arrived from a duplicate dispatch), the
        daemon is declared dead and the leftovers re-dispatched, or
        the coordinator stops.
        """
        client = ServiceClient(
            leg.daemon,
            timeout=10.0,
            connect_retry_s=1.0,
            token=self._fleet_token(),
        )
        while not self._stopping.is_set():
            try:
                summary: dict[str, Any] | None = None
                for event in client.raw_events(leg.sub_id, follow=True):
                    if event["event"] == "record":
                        self._store_record(
                            submission, leg, event["record"]
                        )
                    elif event["event"] == "end":
                        summary = event
                if summary is not None and not summary.get("remaining"):
                    return  # leg fully delivered
            except ServiceError:
                pass  # stream died mid-flight; probe the daemon below
            with self._lock:
                missing = [
                    index
                    for index in leg.global_indices
                    if index not in submission.records
                ]
            if not missing:
                return  # duplicates elsewhere covered the leftovers
            try:
                client.ping()
            except ServiceError as exc:
                self._mark_dead(leg.daemon, exc)
                self._log(
                    f"{submission.id}: re-dispatching {len(missing)} "
                    f"job(s) from lost daemon {leg.daemon}"
                )
                self._redispatch(submission, missing)
                return
            # Daemon alive but the stream ended early (drain-stop with
            # work left, restart): its queue is persistent and the
            # daemon-local submission id survives, so just re-follow.
            if self._stopping.wait(timeout=0.2):
                return

    def _store_record(
        self,
        submission: _FleetSubmission,
        leg: _Leg,
        record: dict[str, Any],
    ) -> None:
        local_index = record.get("index")
        if (
            not isinstance(local_index, int)
            or not 0 <= local_index < len(leg.global_indices)
        ):
            self._log(
                f"{leg.daemon}: record with unknown index "
                f"{local_index!r} ignored"
            )
            return
        global_index = leg.global_indices[local_index]
        rewritten = dict(record, index=global_index)
        with self.changed:
            if global_index in submission.records:
                return  # first completion wins (duplicate dispatch)
            submission.records[global_index] = rewritten
            submission.completion.append(global_index)
            submission.pending.discard(global_index)
            self._notify_all()

    # -- monitor: liveness, parked re-dispatch, stealing ---------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(timeout=self.poll_interval):
            self._refresh_daemons()
            self._retry_pending()
            if self.steal_batch > 0:
                self._steal_round()
            if self.tenants is not None and self.tenants.maybe_reload():
                self._log(
                    f"tenants file reloaded: "
                    f"{len(self.tenants.tenants())} tenant(s)"
                )

    def _refresh_daemons(self) -> None:
        for daemon in list(self._daemons.values()):
            try:
                ping = ServiceClient(
                    daemon.address, timeout=5.0, connect_retry_s=0.0
                ).ping()
            except ServiceError as exc:
                self._mark_dead(daemon.address, exc)
                continue
            with self.changed:
                revived = not daemon.alive
                daemon.alive = True
                daemon.counts = ping.get("counts", {})
                daemon.last_error = None
                if revived:
                    self._notify_all()
            if revived:
                self._log(f"daemon {daemon.address} is back")

    def _retry_pending(self) -> None:
        if not self._alive_daemons():
            return
        with self._lock:
            parked = [
                (submission, sorted(submission.pending))
                for submission in self._submissions.values()
                if submission.pending
            ]
            for submission, _ in parked:
                submission.pending.clear()
        for submission, indices in parked:
            self._redispatch(submission, indices)

    def _steal_round(self) -> None:
        """Duplicate-dispatch a straggler's tail onto an idle daemon."""
        with self._lock:
            idle = [
                daemon.address
                for daemon in self._daemons.values()
                if daemon.alive
                and daemon.counts.get("queued", 0)
                + daemon.counts.get("running", 0)
                == 0
            ]
        if not idle:
            return
        for thief in idle:
            plan = self._plan_steal(thief)
            if plan is None:
                return
            submission, victim, indices = plan
            self._log(
                f"{submission.id}: stealing {len(indices)} job(s) "
                f"{victim} -> {thief}"
            )
            if not self._dispatch_leg(
                submission, thief, indices, stolen=True
            ):
                with self.changed:
                    submission.stolen.difference_update(indices)

    def _plan_steal(
        self, thief: str
    ) -> tuple[_FleetSubmission, str, list[int]] | None:
        """Pick the jobs to move onto ``thief`` (marks them stolen)."""
        with self.changed:
            for submission in self._submissions.values():
                for leg in submission.legs:
                    if leg.daemon == thief:
                        continue
                    victim = self._daemons.get(leg.daemon)
                    if victim is None or not victim.alive:
                        continue
                    if victim.counts.get("queued", 0) <= 0:
                        continue  # nothing waiting: not a straggler
                    outstanding = [
                        index
                        for index in leg.global_indices
                        if index not in submission.records
                        and index not in submission.stolen
                    ]
                    # Leave the head alone -- it is (about to be)
                    # running on the victim; steal from the tail,
                    # which a FIFO queue would reach last.
                    if len(outstanding) <= 1:
                        continue
                    take = outstanding[-self.steal_batch:]
                    submission.stolen.update(take)
                    return (submission, leg.daemon, take)
        return None

    # -- protocol dispatch ---------------------------------------------

    async def dispatch_async(
        self, request: dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one request; ``False`` ends the connection."""
        op = request.get("op")
        if op == "ping":
            # Liveness stays unauthenticated: wait_ready and the fleet
            # monitor must work before anyone holds a token.
            await write_message_async(writer, self._ping())
            return True
        ctx, rejection = authorize_request(self.tenants, request)
        if rejection is not None:
            await write_message_async(writer, rejection)
            return True
        if op == "register":
            await write_message_async(
                writer, self._register(request, ctx)
            )
            return True
        if op == "metrics":
            # Polls every live daemon: keep it off the event loop.
            reply = await asyncio.to_thread(self._metrics)
            await write_message_async(writer, reply)
            return True
        if op == "trace":
            await write_message_async(writer, self._trace(request, ctx))
            return True
        if op == "submit":
            # Manifest expansion, cache-key hashing and the daemon
            # round-trips all block: keep them off the event loop.
            reply = await asyncio.to_thread(self._submit, request, ctx)
            await write_message_async(writer, reply)
            return True
        if op == "status":
            await write_message_async(
                writer, self._status(request, ctx)
            )
            return True
        if op == "results":
            await self._results(request, writer, ctx)
            return True
        if op == "shutdown":
            if not ctx.admin:
                await write_message_async(
                    writer,
                    error_reply(
                        "forbidden",
                        "shutdown requires the admin capability",
                    ),
                )
                return True
            drain = bool(request.get("drain", True))
            fleet = bool(request.get("fleet", False))
            await write_message_async(
                writer,
                {
                    "ok": True,
                    "op": "shutdown",
                    "drain": drain,
                    "fleet": fleet,
                },
            )
            threading.Thread(
                target=self.stop,
                kwargs={"drain": drain, "fleet": fleet},
                name="repro-coordinator-shutdown",
                daemon=True,
            ).start()
            return False
        await write_message_async(
            writer,
            error_reply("unknown_op", f"unknown op {op!r}"),
        )
        return True

    def _register(
        self,
        request: dict[str, Any],
        ctx: AuthContext = OPEN_CONTEXT,
    ) -> dict[str, Any]:
        if not ctx.admin:
            # Fleet members register with the fleet token; a plain
            # tenant must not be able to splice a daemon into the
            # fleet and receive other tenants' jobs.
            return error_reply(
                "forbidden",
                "register requires the fleet token or the admin "
                "capability",
            )
        address = request.get("address")
        if not isinstance(address, str) or not address.strip():
            return error_reply(
                "bad_request", "register needs an 'address'"
            )
        try:
            parse_address(address)
        except ProtocolError as exc:
            return error_reply("bad_request", str(exc))
        with self.changed:
            daemon = self._daemons.get(address)
            if daemon is None:
                self._daemons[address] = daemon = _Daemon(address)
                known = len(self._daemons)
                self._notify_all()
            else:
                # Re-registration revives a daemon marked dead (e.g.
                # it was restarted on the same address).
                daemon.alive = True
                daemon.last_error = None
                known = len(self._daemons)
                self._notify_all()
        return {
            "ok": True,
            "op": "register",
            "address": address,
            "daemons": known,
        }

    def _metrics(self) -> dict[str, Any]:
        """The fleet-wide metrics document.

        The coordinator's own placement counters merged with every
        live daemon's ``metrics`` payload
        (:meth:`MetricsRegistry.from_docs` sums counters, gauges and
        histogram buckets element-wise), so the fleet view is the
        arithmetic total of the fleet.
        """
        docs = [self.metrics.to_doc()]
        polled: list[str] = []
        for daemon in self._alive_daemons():
            try:
                reply = self._client(daemon.address).metrics()
            except ServiceError as exc:
                self._mark_dead(daemon.address, exc)
                continue
            doc = reply.get("metrics")
            if doc:
                docs.append(doc)
                polled.append(daemon.address)
        merged = MetricsRegistry.from_docs(docs).to_doc()
        return {
            "ok": True,
            "op": "metrics",
            "role": "coordinator",
            "address": self.address,
            "daemons": polled,
            "metrics": merged,
            "text": render_prometheus_doc(merged),
        }

    def _trace(
        self,
        request: dict[str, Any],
        ctx: AuthContext = OPEN_CONTEXT,
    ) -> dict[str, Any]:
        """Look one job's trace up by its coordinator job id.

        Fleet job ids are ``SUBMISSION-INDEX`` (``c000001-00007``,
        tenant-prefixed under tenancy); the trace document arrived
        with the job's record from whichever daemon compiled it.
        """
        job_id = request.get("job")
        if not isinstance(job_id, str) or "-" not in job_id:
            return error_reply(
                "bad_request",
                "trace needs a 'job' id (SUBMISSION-INDEX)",
            )
        sub_id, _, index_str = job_id.rpartition("-")
        try:
            index = int(index_str)
        except ValueError:
            return error_reply(
                "bad_request",
                f"bad job id {job_id!r}: index is not a number",
            )
        with self._lock:
            submission = self._submissions.get(sub_id)
            record = (
                None
                if submission is None
                else submission.records.get(index)
            )
        if submission is None or not ctx.can_see(submission.tenant):
            # Foreign tenants' submissions answer exactly like
            # nonexistent ones: ids must not leak across namespaces.
            return error_reply(
                "not_found", f"unknown submission {sub_id!r}"
            )
        trace_doc = None if record is None else record.get("trace")
        if trace_doc is None:
            return error_reply(
                "not_found", f"job {job_id} has no trace yet"
            )
        return {
            "ok": True,
            "op": "trace",
            "job": job_id,
            "status": record.get("status"),
            "trace": trace_doc,
        }

    def _counts(
        self,
        submission: _FleetSubmission | None = None,
        ctx: AuthContext = OPEN_CONTEXT,
    ) -> dict[str, int]:
        """Queue-style counts; outstanding fleet work reads as queued.

        Whole-fleet counts only aggregate the submissions ``ctx`` may
        see, so a tenant's status never reflects other tenants' load.
        """
        with self._lock:
            submissions = (
                [submission]
                if submission is not None
                else [
                    entry
                    for entry in self._submissions.values()
                    if ctx.can_see(entry.tenant)
                ]
            )
            done = 0
            error = 0
            total = 0
            for entry in submissions:
                total += entry.total_jobs
                for record in entry.records.values():
                    if record.get("status") == "error":
                        error += 1
                    else:
                        done += 1
        return {
            "queued": total - done - error,
            "running": 0,
            "done": done,
            "error": error,
        }

    def _ping(self) -> dict[str, Any]:
        with self._lock:
            daemons = [
                {
                    "address": daemon.address,
                    "alive": daemon.alive,
                    "counts": dict(daemon.counts),
                    "placements": daemon.placements,
                    "steals": daemon.steals,
                    "error": daemon.last_error,
                }
                for daemon in self._daemons.values()
            ]
            num_submissions = len(self._submissions)
        return {
            "ok": True,
            "op": "ping",
            "protocol": PROTOCOL_VERSION,
            "role": "coordinator",
            "address": self.address,
            "auth_required": self.tenants is not None,
            "draining": self.draining,
            "uptime_s": time.time() - self.started_at,
            "counts": self._counts(),
            "connections": self.connection_stats(),
            "daemons": daemons,
            "submissions": num_submissions,
            "spill_depth": self.spill_depth,
            "steal_batch": self.steal_batch,
        }

    def _status(
        self,
        request: dict[str, Any],
        ctx: AuthContext = OPEN_CONTEXT,
    ) -> dict[str, Any]:
        sub_id = request.get("submission")
        if sub_id is None:
            with self._lock:
                submissions = [
                    entry
                    for entry in self._submissions.values()
                    if ctx.can_see(entry.tenant)
                ]
            return {
                "ok": True,
                "op": "status",
                "draining": self.draining,
                "counts": self._counts(ctx=ctx),
                "submissions": [
                    {
                        "id": entry.id,
                        "tenant": entry.tenant,
                        "total_jobs": entry.total_jobs,
                        "counts": self._counts(entry),
                    }
                    for entry in submissions
                ],
            }
        with self._lock:
            submission = self._submissions.get(sub_id)
        if submission is None or not ctx.can_see(submission.tenant):
            # Invisible reads as nonexistent: no cross-tenant id probe.
            return error_reply(
                "not_found", f"unknown submission {sub_id!r}"
            )
        with self._lock:
            jobs = []
            for index in sorted(submission.records):
                record = submission.records[index]
                trace_doc = record.get("trace") or {}
                jobs.append(
                    {
                        "id": f"{sub_id}-{index:05d}",
                        "index": index,
                        "status": record.get("status"),
                        "attempts": record.get("attempts", 1),
                        "queue_wait_s": _trace_queue_wait(trace_doc),
                        "span_time_s": trace_doc.get("duration_s"),
                    }
                )
        return {
            "ok": True,
            "op": "status",
            "submission": sub_id,
            "tenant": submission.tenant,
            "manifest_digest": submission.manifest_digest,
            "total_jobs": submission.total_jobs,
            "counts": self._counts(submission),
            "jobs": jobs,
        }

    async def _results(
        self,
        request: dict[str, Any],
        writer: asyncio.StreamWriter,
        ctx: AuthContext = OPEN_CONTEXT,
    ) -> None:
        """Stream a fleet submission's records in completion order.

        Event-for-event identical to the daemon's results stream, so
        :class:`ServiceClient` consumes a fleet unchanged.
        """
        sub_id = request.get("submission")
        with self._lock:
            submission = (
                None
                if sub_id is None
                else self._submissions.get(sub_id)
            )
        if submission is None or not ctx.can_see(submission.tenant):
            await write_message_async(
                writer,
                error_reply(
                    "not_found", f"unknown submission {sub_id!r}"
                ),
            )
            return
        follow = bool(request.get("follow", False))
        total = submission.total_jobs
        await write_message_async(
            writer,
            {
                "ok": True,
                "event": "start",
                "submission": sub_id,
                "manifest_digest": submission.manifest_digest,
                "total_jobs": total,
            },
        )
        sent = 0
        failed = 0
        idle_timeout = RESULTS_POLL_MIN_S
        loop = asyncio.get_running_loop()
        changed = asyncio.Event()

        def wake() -> None:
            loop.call_soon_threadsafe(changed.set)

        self.add_listener(wake)
        try:
            while True:
                with self._lock:
                    order = list(submission.completion)
                    batch = [
                        submission.records[index]
                        for index in order[sent:]
                    ]
                if batch:
                    idle_timeout = RESULTS_POLL_MIN_S  # progress
                for record in batch:
                    if record.get("status") == "error":
                        failed += 1
                    await write_message_async(
                        writer,
                        {
                            "ok": True,
                            "event": "record",
                            "job_id": (
                                f"{submission.id}-"
                                f"{record['index']:05d}"
                            ),
                            "record": record,
                        },
                    )
                sent = len(order)
                if sent >= total or not follow:
                    break
                if self._stopping.is_set():
                    break  # going down with work left: end honestly
                changed.clear()
                with self._lock:
                    progressed = len(submission.completion) > sent
                if progressed or self._stopping.is_set():
                    continue
                try:
                    await asyncio.wait_for(
                        changed.wait(), timeout=idle_timeout
                    )
                except asyncio.TimeoutError:
                    idle_timeout = _next_idle_timeout(idle_timeout)
        finally:
            self.remove_listener(wake)
        await write_message_async(
            writer,
            {
                "ok": True,
                "event": "end",
                "submission": sub_id,
                "num_done": sent,
                "num_failed": failed,
                "remaining": total - sent,
                "wall_time_s": time.time() - submission.submitted_at,
            },
        )


__all__ = [
    "Coordinator",
    "DEFAULT_POLL_INTERVAL_S",
    "DEFAULT_SPILL_DEPTH",
    "DEFAULT_STEAL_BATCH",
    "plan_placement",
    "rendezvous_rank",
]
