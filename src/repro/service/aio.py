"""Shared asyncio front end of the service daemons.

:class:`AsyncServerCore` is the accept/readline/dispatch loop behind
both the compilation daemon (:class:`~repro.service.server.ServiceServer`)
and the fleet front door
(:class:`~repro.service.coordinator.Coordinator`).  One event-loop
thread owns the socket; every client connection is a coroutine on that
loop, so a daemon holds thousands of *idle* connections at the cost of
a file descriptor each -- not a thread each, which is what the
previous ``socketserver.ThreadingMixIn`` listener paid.

The split of responsibilities:

* this core accepts connections, frames NDJSON messages (with the
  line-length bound of :mod:`repro.service.protocol`), counts open
  connections, and tears everything down on shutdown;
* subclasses implement :meth:`AsyncServerCore.dispatch_async`.
  Cheap ops (``ping``/``status``) answer inline on the loop; blocking
  ops (``submit`` -- manifest expansion and cache-key hashing) hop to
  a thread via :func:`asyncio.to_thread`; result streams are
  coroutines woken through ``loop.call_soon_threadsafe`` bridges, so
  the loop never blocks on compilation.

Compilation itself still runs on plain worker threads
(:class:`~repro.engine.CompilationEngine` is synchronous); asyncio is
confined to the I/O front end.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Any

from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    format_address,
    parse_address,
    read_message_async,
    write_message_async,
)

#: How long shutdown waits for in-flight dispatches (e.g. a result
#: stream writing its final ``end`` event) after the listener closes.
SHUTDOWN_GRACE_S = 10.0


class AsyncServerCore:
    """Asyncio accept loop + NDJSON framing, lifecycle-managed from
    synchronous code (see module docstring).

    Args:
        address: Listen spec (``host:port`` or a Unix socket path;
            TCP port ``0`` binds an ephemeral port -- :attr:`address`
            carries the resolved spec once the listener is up).
        max_line_bytes: Per-line protocol bound; an oversized frame is
            answered with a clean error object and the connection is
            closed, instead of buffering without limit.
        name: Thread-name prefix for logs and debuggers.
    """

    def __init__(
        self,
        address: str,
        *,
        max_line_bytes: int = MAX_LINE_BYTES,
        name: str = "repro-service",
    ) -> None:
        parse_address(address)  # validate eagerly
        self._address_spec = address
        self.max_line_bytes = max_line_bytes
        self._core_name = name
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._bound = threading.Event()
        self._bind_error: BaseException | None = None
        self._resolved_address: str | None = None
        self._shutdown_async: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        # Connection gauges, mutated only on the loop thread; reads
        # from other threads (ping) see a consistent-enough snapshot.
        self._open_connections = 0
        self._peak_connections = 0
        self._total_connections = 0
        self._busy_dispatches = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> str:
        """The resolved listen address (once the listener is up)."""
        if self._resolved_address is not None:
            return self._resolved_address
        return self._address_spec

    def start_listener(self) -> None:
        """Spawn the event-loop thread and block until bound."""
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop,
            name=f"{self._core_name}-listener",
            daemon=True,
        )
        self._loop_thread.start()
        if not self._bound.wait(timeout=30.0):
            raise ProtocolError(
                f"listener failed to bind {self._address_spec} in time"
            )
        if self._bind_error is not None:
            self._loop_thread.join(timeout=5.0)
            raise self._bind_error

    def stop_listener(self) -> None:
        """Close the listener and join the loop thread.

        In-flight dispatches get :data:`SHUTDOWN_GRACE_S` to write
        their final events before remaining connections are dropped.
        """
        loop = self._loop
        if loop is None:
            return
        if self._shutdown_async is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(self._shutdown_async.set)
            except RuntimeError:
                pass  # loop already closed
        if (
            self._loop_thread is not None
            and self._loop_thread is not threading.current_thread()
        ):
            self._loop_thread.join(timeout=SHUTDOWN_GRACE_S + 10.0)
        kind, value = parse_address(self._address_spec)
        if kind == "unix" and os.path.exists(value):
            try:
                os.unlink(value)
            except OSError:
                pass

    def connection_stats(self) -> dict[str, int]:
        """Open/peak/total connection counts (for ``ping``)."""
        return {
            "open": self._open_connections,
            "peak": self._peak_connections,
            "total": self._total_connections,
        }

    # -- event loop ----------------------------------------------------

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._loop.close()

    async def _serve(self) -> None:
        assert self._loop is not None
        self._shutdown_async = asyncio.Event()
        kind, value = parse_address(self._address_spec)
        # Headroom over the protocol bound so the reader surfaces the
        # oversize condition as LimitOverrunError instead of stalling.
        limit = self.max_line_bytes + 1024
        try:
            if kind == "unix":
                if os.path.exists(value):
                    os.unlink(value)  # stale socket from a dead daemon
                server = await asyncio.start_unix_server(
                    self._handle_connection, path=value, limit=limit
                )
                self._resolved_address = value
            else:
                host, port = value
                server = await asyncio.start_server(
                    self._handle_connection,
                    host=host,
                    port=port,
                    limit=limit,
                    backlog=1024,
                )
                bound = server.sockets[0].getsockname()
                self._resolved_address = format_address(
                    "tcp", (bound[0], bound[1])
                )
        except OSError as exc:
            self._bind_error = exc
            self._bound.set()
            return
        self._bound.set()
        async with server:
            await self._shutdown_async.wait()
            server.close()
            await server.wait_closed()
        # Grace period: let dispatches already past the accept gate
        # (a result stream flushing its "end" line, a shutdown reply)
        # finish before their connections are torn down.
        deadline = self._loop.time() + SHUTDOWN_GRACE_S
        while self._busy_dispatches and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        pending = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        self._open_connections += 1
        self._total_connections += 1
        self._peak_connections = max(
            self._peak_connections, self._open_connections
        )
        try:
            while True:
                try:
                    request = await read_message_async(
                        reader, self.max_line_bytes
                    )
                except ProtocolError as exc:
                    await write_message_async(
                        writer, {"ok": False, "error": str(exc)}
                    )
                    return
                if request is None:
                    return  # clean EOF
                self._busy_dispatches += 1
                try:
                    keep_open = await self.dispatch_async(
                        request, writer
                    )
                finally:
                    self._busy_dispatches -= 1
                if not keep_open:
                    return
        except (
            BrokenPipeError,
            ConnectionResetError,
            asyncio.CancelledError,
        ):
            return  # peer went away, or the server is shutting down
        finally:
            self._writers.discard(writer)
            self._open_connections -= 1
            try:
                writer.close()
            except Exception:
                pass

    async def dispatch_async(
        self, request: dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one request; ``False`` ends the connection."""
        raise NotImplementedError


__all__ = ["AsyncServerCore", "SHUTDOWN_GRACE_S"]
