"""The resident compilation daemon (``repro serve``).

A :class:`ServiceServer` ties together the three service halves:

* a listener -- a threaded socket server (TCP or Unix domain,
  :func:`repro.service.protocol.parse_address`) speaking the NDJSON
  protocol, one handler thread per client connection;
* a persistent :class:`~repro.service.queue.JobQueue` -- submissions
  survive restarts, crash recovery runs on startup;
* a pool of **leased workers** -- threads that lease jobs from the
  queue and execute them through the existing
  :class:`~repro.engine.CompilationEngine` (one engine per worker,
  sharing one program cache) with per-job retry-with-backoff and
  ``on_error="collect"``, so a failing job becomes an error record
  instead of a dead daemon.

A maintenance thread requeues expired leases, so a job whose worker
thread died (or whose previous daemon was SIGKILLed mid-compile)
re-runs instead of hanging its submission forever.

Lifecycle: :meth:`start` binds the socket and spawns the threads;
:meth:`stop` (``drain=True``) stops accepting submissions, lets the
workers finish every queued job, then shuts the daemon down.  The
``shutdown`` protocol op triggers the same path remotely.
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
import time
from typing import Any, BinaryIO

from ..engine.cache import DiskCache, MemoryCache, ProgramCache
from ..engine.cachestore import make_cache
from ..engine.engine import CompilationEngine
from ..engine.shard import job_record
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    format_address,
    parse_address,
    read_message,
    write_message,
)
from .queue import JobQueue, ManifestError

#: Idle-poll bounds for a followed result stream: the fallback timeout
#: starts snappy, doubles while nothing completes, and is capped so a
#: missed notification never stalls the stream for long.
RESULTS_POLL_MIN_S = 0.05
RESULTS_POLL_MAX_S = 2.0


class _Listener(socketserver.ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "UnixStreamServer"):  # POSIX

    class _UnixListener(
        socketserver.ThreadingMixIn, socketserver.UnixStreamServer
    ):
        daemon_threads = True

else:  # pragma: no cover - non-POSIX
    _UnixListener = None  # type: ignore[assignment,misc]


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: read requests, dispatch, answer."""

    server: "_Listener"

    def handle(self) -> None:
        service: ServiceServer = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                request = read_message(self.rfile)
            except ProtocolError as exc:
                write_message(
                    self.wfile, {"ok": False, "error": str(exc)}
                )
                return
            if request is None:
                return
            try:
                if not service.dispatch(request, self.wfile):
                    return
            except (BrokenPipeError, ConnectionResetError):
                return


class ServiceServer:
    """The resident compilation service (see module docstring).

    Args:
        queue_dir: Job-queue root; reusing a previous daemon's
            directory resumes its unfinished work.
        address: Listen address spec (``host:port`` or a Unix socket
            path).  TCP port ``0`` binds an ephemeral port --
            :attr:`address` carries the resolved spec after
            :meth:`start`.
        cache: Program cache shared by every worker -- a ready
            :class:`ProgramCache`, or a cache-spec string
            (``"disk:PATH"``, ``"remote:URL"``,
            ``"tiered:disk:PATH,remote:URL"``, ...) resolved through
            :func:`repro.engine.cachestore.make_cache`.  Defaults to
            ``DiskCache(cache_dir)`` when ``cache_dir`` is given, else
            an in-process :class:`MemoryCache`.
        cache_dir: Convenience for ``cache=DiskCache(cache_dir)``.
        workers: Leased-worker thread count.
        retries: Per-job extra compilation attempts
            (:class:`CompilationEngine` retry-with-backoff).
        backoff: Base backoff seconds between attempts.
        lease_seconds: Worker lease duration; an expired lease returns
            the job to the queue.
    """

    def __init__(
        self,
        queue_dir: str,
        address: str = "127.0.0.1:0",
        *,
        cache: ProgramCache | str | None = None,
        cache_dir: str | None = None,
        workers: int = 2,
        retries: int = 1,
        backoff: float = 0.1,
        lease_seconds: float = 300.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if cache is None:
            cache = (
                DiskCache(cache_dir)
                if cache_dir is not None
                else MemoryCache()
            )
        elif isinstance(cache, str):
            cache = make_cache(cache)
        self.queue = JobQueue(queue_dir)
        self.cache = cache
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.lease_seconds = lease_seconds
        self._address_spec = address
        self._listener: socketserver.BaseServer | None = None
        self._threads: list[threading.Thread] = []
        # Jobs currently executing on this daemon's worker threads
        # (worker id -> job id); the maintenance thread heartbeats
        # their leases so healthy long compiles never expire.
        self._active_lock = threading.Lock()
        self._active_jobs: dict[str, str] = {}
        self._started = threading.Event()
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self.started_at = time.time()

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> str:
        """The resolved listen address (after :meth:`start`)."""
        if self._listener is None:
            return self._address_spec
        kind, value = parse_address(self._address_spec)
        if kind == "tcp":
            host, port = self._listener.server_address[:2]
            return format_address("tcp", (host, port))
        return self._address_spec

    def start(self) -> "ServiceServer":
        """Recover the queue, bind the socket, spawn the threads."""
        recovered = self.queue.recover()
        if recovered:
            self._log(
                f"recovered {len(recovered)} job(s) from a previous run"
            )
        kind, value = parse_address(self._address_spec)
        if kind == "unix":
            if not hasattr(socket, "AF_UNIX"):
                raise ProtocolError(
                    "unix socket addresses need AF_UNIX; use host:port"
                )
            if os.path.exists(value):
                os.unlink(value)  # stale socket from a dead daemon
            assert _UnixListener is not None
            self._listener = _UnixListener(value, _Handler)
        else:
            self._listener = _Listener(value, _Handler)
        self._listener.service = self  # type: ignore[attr-defined]
        self._threads = [
            threading.Thread(
                target=self._listener.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-service-listener",
                daemon=True,
            ),
            threading.Thread(
                target=self._maintenance_loop,
                name="repro-service-maintenance",
                daemon=True,
            ),
        ]
        self._threads += [
            threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{number}",),
                name=f"repro-service-worker-{number}",
                daemon=True,
            )
            for number in range(1, self.workers + 1)
        ]
        for thread in self._threads:
            thread.start()
        self._started.set()
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut the daemon down.

        Args:
            drain: Refuse new submissions, finish every queued job,
                then stop.  ``False`` stops after at most the
                in-flight jobs (leased work completes; queued work
                stays queued on disk for the next daemon).
            timeout: Bound on the drain wait.
        """
        self._draining.set()
        if drain:
            self.queue.wait(
                lambda: self.queue.unfinished() == 0, timeout=timeout
            )
        self._stopping.set()
        with self.queue.changed:
            self.queue.changed.notify_all()  # wake idle workers
        if self._listener is not None:
            self._listener.shutdown()
            self._listener.server_close()
            kind, value = parse_address(self._address_spec)
            if kind == "unix" and os.path.exists(value):
                try:
                    os.unlink(value)
                except OSError:
                    pass
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        try:
            # Deferred write-back cache entries must survive the
            # daemon.  Workers flush on their own way out too (a slow
            # compile can outlive the bounded join above), so this is
            # the last flush, not the only one.
            self.cache.flush()
        finally:
            self._stopped.set()

    def wait_stopped(self, timeout: float | None = None) -> bool:
        """Block until the daemon has fully stopped."""
        return self._stopped.wait(timeout)

    @property
    def draining(self) -> bool:
        """Whether the daemon has stopped accepting submissions."""
        return self._draining.is_set()

    def _log(self, message: str) -> None:
        # Single seam for daemon logging; the CLI wires it to stderr.
        print(f"repro-service: {message}", flush=True)

    # -- workers -------------------------------------------------------

    def _worker_loop(self, worker_id: str) -> None:
        engine = CompilationEngine(
            cache=self.cache,
            workers=1,
            on_error="collect",
            retries=self.retries,
            backoff=self.backoff,
        )
        try:
            while not self._stopping.is_set():
                record = self.queue.lease(
                    worker_id, lease_seconds=self.lease_seconds
                )
                if record is None:
                    with self.queue.changed:
                        if self._stopping.is_set():
                            return
                        self.queue.changed.wait(timeout=0.2)
                    continue
                with self._active_lock:
                    self._active_jobs[worker_id] = record["id"]
                try:
                    self._execute(engine, record)
                finally:
                    with self._active_lock:
                        self._active_jobs.pop(worker_id, None)
        finally:
            # A compile outliving stop()'s bounded join would finish
            # *after* the shutdown flush; pushing this worker's own
            # deferred write-backs on the way out closes that window.
            try:
                self.cache.flush()
            except Exception as exc:  # never kill the thread teardown
                self._log(f"{worker_id}: exit cache flush failed: {exc}")

    def _execute(
        self, engine: CompilationEngine, record: dict[str, Any]
    ) -> None:
        try:
            job = self.queue.compile_job(record)
            [result] = engine.run([job])
            result_record = job_record(result, record["index"])
        except Exception as exc:  # defensive: keep the worker alive
            result_record = {
                "index": record["index"],
                "status": "error",
                "benchmark": record["job"].get("benchmark"),
                "scenario": record["job"].get(
                    "scenario", record["job"].get("backend")
                ),
                "seed": record["job"].get("seed", 0),
                "num_aods": record["job"].get("num_aods", 1),
                "cache_key": record["cache_key"],
                "cache_hit": False,
                "compile_time_s": 0.0,
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                },
            }
        self.queue.complete(record["id"], result_record)

    def _maintenance_loop(self) -> None:
        interval = min(max(self.lease_seconds / 4.0, 0.05), 15.0)
        while not self._stopping.wait(timeout=interval):
            # Heartbeat first: a job still executing on a live worker
            # thread must never lose its lease, no matter how long the
            # compile runs relative to --lease.
            with self._active_lock:
                active = list(self._active_jobs.values())
            for job_id in active:
                self.queue.renew(job_id, self.lease_seconds)
            expired = self.queue.requeue_expired()
            if expired:
                self._log(
                    f"requeued {len(expired)} expired lease(s): "
                    + ", ".join(expired)
                )
            # Push write-back-deferred cache entries downstream (no-op
            # for every non-write-back cache).
            self.cache.flush()

    # -- protocol dispatch ---------------------------------------------

    def dispatch(
        self, request: dict[str, Any], stream: BinaryIO
    ) -> bool:
        """Answer one request; False ends the connection."""
        op = request.get("op")
        if op == "ping":
            write_message(stream, self._ping())
            return True
        if op == "submit":
            write_message(stream, self._submit(request))
            return True
        if op == "status":
            write_message(stream, self._status(request))
            return True
        if op == "results":
            self._results(request, stream)
            return True
        if op == "shutdown":
            drain = bool(request.get("drain", True))
            write_message(
                stream, {"ok": True, "op": "shutdown", "drain": drain}
            )
            # Stop from a fresh thread: stop() joins the handler pool
            # this very handler runs on.
            threading.Thread(
                target=self.stop,
                kwargs={"drain": drain},
                name="repro-service-shutdown",
                daemon=True,
            ).start()
            return False
        write_message(
            stream,
            {"ok": False, "error": f"unknown op {op!r}"},
        )
        return True

    def _ping(self) -> dict[str, Any]:
        return {
            "ok": True,
            "op": "ping",
            "protocol": PROTOCOL_VERSION,
            "workers": self.workers,
            "draining": self.draining,
            "uptime_s": time.time() - self.started_at,
            "counts": self.queue.counts(),
            "cache": self.cache.stats_doc(),
        }

    def _submit(self, request: dict[str, Any]) -> dict[str, Any]:
        if self.draining:
            return {
                "ok": False,
                "error": "service is draining; not accepting submissions",
            }
        manifest_doc = request.get("manifest")
        if manifest_doc is None:
            return {"ok": False, "error": "submit needs a 'manifest'"}
        priority = request.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            return {"ok": False, "error": "'priority' must be an integer"}
        try:
            submission = self.queue.submit(
                manifest_doc, priority=priority
            )
        except ManifestError as exc:
            return {"ok": False, "error": f"bad manifest: {exc}"}
        return {
            "ok": True,
            "op": "submit",
            "submission": submission["id"],
            "manifest_digest": submission["manifest_digest"],
            "total_jobs": submission["total_jobs"],
            "job_ids": submission["job_ids"],
        }

    def _status(self, request: dict[str, Any]) -> dict[str, Any]:
        sub_id = request.get("submission")
        if sub_id is None:
            submissions = [
                {
                    "id": sid,
                    "total_jobs": self.queue.submission(sid)["total_jobs"],
                    "counts": self.queue.counts(sid),
                }
                for sid in self.queue.submission_ids()
            ]
            return {
                "ok": True,
                "op": "status",
                "draining": self.draining,
                "counts": self.queue.counts(),
                "submissions": submissions,
            }
        submission = self.queue.submission(sub_id)
        if submission is None:
            return {
                "ok": False,
                "error": f"unknown submission {sub_id!r}",
            }
        return {
            "ok": True,
            "op": "status",
            "submission": sub_id,
            "manifest_digest": submission["manifest_digest"],
            "total_jobs": submission["total_jobs"],
            "counts": self.queue.counts(sub_id),
        }

    def _results(
        self, request: dict[str, Any], stream: BinaryIO
    ) -> None:
        """Stream a submission's records in completion order.

        With ``follow`` the stream stays open until every job has
        finished; without, it ends after the records finished so far.
        """
        sub_id = request.get("submission")
        submission = (
            None if sub_id is None else self.queue.submission(sub_id)
        )
        if submission is None:
            write_message(
                stream,
                {"ok": False, "error": f"unknown submission {sub_id!r}"},
            )
            return
        follow = bool(request.get("follow", False))
        total = submission["total_jobs"]
        write_message(
            stream,
            {
                "ok": True,
                "event": "start",
                "submission": sub_id,
                "manifest_digest": submission["manifest_digest"],
                "total_jobs": total,
            },
        )
        sent = 0
        failed = 0
        idle_timeout = RESULTS_POLL_MIN_S
        while True:
            # Flush everything completed so far *before* any exit
            # check, so records finishing during the wait below are
            # never dropped by a shutdown.
            completed = self.queue.completed_records(sub_id)
            if len(completed) > sent:
                idle_timeout = RESULTS_POLL_MIN_S  # progress: reset
            for record in completed[sent:]:
                if record["record"].get("status") == "error":
                    failed += 1
                write_message(
                    stream,
                    {
                        "ok": True,
                        "event": "record",
                        "job_id": record["id"],
                        "record": record["record"],
                    },
                )
            sent = len(completed)
            if sent >= total or not follow:
                break
            if self._stopping.is_set() and self.queue.unfinished(sub_id):
                break  # daemon going down with work left: end honestly
            # Wait for the next completion (or daemon stop; a draining
            # daemon still finishes the queue, so keep streaming).  The
            # condition variable wakes this immediately on every queue
            # change; the timeout only bounds *missed* notifications,
            # so it backs off while the stream sits idle instead of
            # rescanning the records twice a second forever.
            self.queue.wait(
                lambda: self.queue.completed_count(sub_id) > sent
                or self._stopping.is_set(),
                timeout=idle_timeout,
            )
            idle_timeout = min(idle_timeout * 2.0, RESULTS_POLL_MAX_S)
        write_message(
            stream,
            {
                "ok": True,
                "event": "end",
                "submission": sub_id,
                "num_done": sent,
                "num_failed": failed,
                "remaining": total - sent,
                "wall_time_s": time.time() - submission["submitted_at"],
            },
        )


__all__ = ["ServiceServer"]
